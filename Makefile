# Developer convenience targets.

.PHONY: install test bench bench-quick bench-smoke examples clean

install:
	pip install -e '.[test]'

test:
	pytest tests/

# Full fidelity: 100 random sub-sampling partitions (the paper's protocol).
bench:
	pytest benchmarks/ --benchmark-only

# Quick pass: same shapes, ~10x faster.
bench-quick:
	REPRO_REPETITIONS=10 pytest benchmarks/ --benchmark-only

# Throughput smoke: reduced sweeps, single rounds.  Surfaces solve/
# cache-speedup, serving micro-batch, registry round-trip, and
# scheduler placement regressions in routine checks without the full
# bench cost.
bench-smoke:
	REPRO_SMOKE=1 PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} pytest benchmarks/bench_engine_throughput.py benchmarks/bench_serve_throughput.py benchmarks/bench_validation_throughput.py benchmarks/bench_registry_roundtrip.py benchmarks/bench_sched_service.py benchmarks/bench_trace_streaming.py benchmarks/bench_suite_incremental.py -q --benchmark-disable

examples:
	python examples/quickstart.py
	python examples/phase_analysis.py
	python examples/interference_scheduler.py
	python examples/energy_modeling.py
	python examples/portability.py
	python examples/uncertainty_and_governor.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
