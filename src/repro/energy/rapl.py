"""RAPL-style energy counter interface.

The paper's next step is "to include monitoring of application power use
into the testing environment" (Section VI).  On Intel hardware that means
RAPL: model-specific registers that accumulate package energy in fixed
units and — famously — wrap around every few minutes at high power because
the hardware register is 32 bits wide.  Naive `after - before` differencing
silently produces garbage across a wrap, a classic measurement bug this
module reproduces and handles.

:class:`RaplPackageCounter` models the register (energy-unit granularity,
32-bit wraparound) on top of a :class:`~repro.energy.power.PowerModel`;
:func:`measure_energy` is the hpcrun-style one-shot measurement the
extended testing environment would perform, with wrap correction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.pstates import PState
from ..sim.engine import ColocationRun, SimulationEngine
from ..workloads.app import ApplicationSpec
from .power import PowerModel

__all__ = ["RaplPackageCounter", "EnergyMeasurement", "measure_energy"]

#: RAPL energy status registers are 32-bit unsigned accumulators.
_COUNTER_BITS = 32
_COUNTER_WRAP = 1 << _COUNTER_BITS

#: Default energy unit: 1/2^16 J, the common ESU on server parts.
DEFAULT_ENERGY_UNIT_J = 1.0 / (1 << 16)


class RaplPackageCounter:
    """A simulated MSR_PKG_ENERGY_STATUS register.

    The counter advances by ``power x elapsed / unit`` and wraps modulo
    2^32 — at 100 W and the default 15.3 µJ unit, roughly every 11
    minutes, i.e. *within* a single run of the paper's longer workloads.
    """

    def __init__(self, energy_unit_j: float = DEFAULT_ENERGY_UNIT_J) -> None:
        if energy_unit_j <= 0.0:
            raise ValueError("energy unit must be positive")
        self.energy_unit_j = energy_unit_j
        self._raw = 0

    @property
    def raw(self) -> int:
        """Current register value (energy units, wrapped)."""
        return self._raw

    def advance(self, power_w: float, duration_s: float) -> None:
        """Accumulate ``power x duration`` of energy into the register."""
        if power_w < 0.0:
            raise ValueError("power must be non-negative")
        if duration_s < 0.0:
            raise ValueError("duration must be non-negative")
        ticks = int(round(power_w * duration_s / self.energy_unit_j))
        self._raw = (self._raw + ticks) % _COUNTER_WRAP

    def seconds_per_wrap(self, power_w: float) -> float:
        """How long the register lasts before wrapping at a given power."""
        if power_w <= 0.0:
            raise ValueError("power must be positive")
        return _COUNTER_WRAP * self.energy_unit_j / power_w

    @staticmethod
    def delta_units(before: int, after: int) -> int:
        """Wrap-corrected difference between two register reads.

        Valid when at most one wrap occurred between the reads — the
        measurement code must sample at least once per
        :meth:`seconds_per_wrap`.
        """
        if not (0 <= before < _COUNTER_WRAP and 0 <= after < _COUNTER_WRAP):
            raise ValueError("register values must be 32-bit")
        return (after - before) % _COUNTER_WRAP

    def delta_joules(self, before: int, after: int) -> float:
        """Wrap-corrected energy between two reads, in joules."""
        return self.delta_units(before, after) * self.energy_unit_j


@dataclass(frozen=True)
class EnergyMeasurement:
    """One measured run with its energy accounting."""

    run: ColocationRun
    energy_j: float
    samples: int

    @property
    def average_power_w(self) -> float:
        """Mean package power over the run."""
        return self.energy_j / self.run.target.execution_time_s


def measure_energy(
    engine: SimulationEngine,
    power_model: PowerModel,
    app: ApplicationSpec,
    co_runners: list[ApplicationSpec] | tuple[ApplicationSpec, ...] = (),
    *,
    pstate: PState | None = None,
    counter: RaplPackageCounter | None = None,
    sample_interval_s: float = 60.0,
) -> EnergyMeasurement:
    """Run an application and meter its package energy RAPL-style.

    The run executes on the engine as usual; package power is the chip
    power at the active core count, and the counter is sampled every
    ``sample_interval_s`` with wrap-corrected differencing — sampling
    slower than the wrap period raises, mirroring the real-world pitfall.
    """
    if sample_interval_s <= 0.0:
        raise ValueError("sample interval must be positive")
    if pstate is None:
        pstate = engine.processor.pstates.fastest
    if counter is None:
        counter = RaplPackageCounter()
    run = engine.run(app, co_runners, pstate=pstate)
    power_w = power_model.chip_power_w(pstate, 1 + len(co_runners))
    if sample_interval_s >= counter.seconds_per_wrap(power_w):
        raise ValueError(
            f"sampling every {sample_interval_s:.0f} s would miss register "
            f"wraps (wrap period {counter.seconds_per_wrap(power_w):.0f} s "
            f"at {power_w:.0f} W); sample faster"
        )

    total_s = run.target.execution_time_s
    energy_j = 0.0
    samples = 0
    elapsed = 0.0
    last_read = counter.raw
    while elapsed < total_s:
        dt = min(sample_interval_s, total_s - elapsed)
        counter.advance(power_w, dt)
        now_read = counter.raw
        energy_j += counter.delta_joules(last_read, now_read)
        last_read = now_read
        elapsed += dt
        samples += 1
    return EnergyMeasurement(run=run, energy_j=energy_j, samples=samples)
