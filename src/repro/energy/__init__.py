"""Energy modeling extension (the paper's Section VI next step)."""

from .power import EnergyEstimate, PowerModel, interference_energy_cost
from .rapl import EnergyMeasurement, RaplPackageCounter, measure_energy

__all__ = [
    "EnergyEstimate",
    "EnergyMeasurement",
    "PowerModel",
    "RaplPackageCounter",
    "interference_energy_cost",
    "measure_energy",
]
