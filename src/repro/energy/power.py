"""Energy modeling extension (paper, Section VI).

The paper's stated next step: "include monitoring of application power use
into the testing environment … the energy use of a system is heavily
dependent on the time that the system spends executing applications", so a
model that predicts co-located execution time extends naturally to energy.

This module implements that extension over the reproduction:

* a first-order CMOS power model per core — static leakage plus dynamic
  ``C_eff * V^2 * f`` switching power, with the P-state supplying (V, f);
* chip power for a co-location = uncore power + per-active-core power;
* predicted energy = predicted chip power x predicted execution time, and
* the *energy cost of interference*: the extra energy spent because
  co-location stretched the target's runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.pstates import PState
from ..machine.processor import MulticoreProcessor

__all__ = ["PowerModel", "EnergyEstimate", "interference_energy_cost"]


@dataclass(frozen=True)
class PowerModel:
    """First-order chip power model for one multicore processor.

    Attributes
    ----------
    processor:
        The machine being modeled.
    static_w_per_core:
        Leakage power per powered-on core, independent of frequency.
    ceff_w_per_ghz_v2:
        Effective switching capacitance: dynamic watts per GHz per volt^2
        per core at full activity.
    uncore_w:
        Shared uncore power (LLC, memory controllers, interconnect).
    """

    processor: MulticoreProcessor
    static_w_per_core: float = 2.5
    ceff_w_per_ghz_v2: float = 6.0
    uncore_w: float = 12.0

    def __post_init__(self) -> None:
        if self.static_w_per_core < 0.0 or self.ceff_w_per_ghz_v2 < 0.0:
            raise ValueError("power coefficients must be non-negative")
        if self.uncore_w < 0.0:
            raise ValueError("uncore power must be non-negative")

    def core_power_w(self, pstate: PState, *, activity: float = 1.0) -> float:
        """Power of one active core at a P-state.

        ``activity`` in [0, 1] scales the dynamic component only (a core
        stalled on memory still leaks).
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be within [0, 1]")
        dynamic = (
            self.ceff_w_per_ghz_v2
            * pstate.voltage_v**2
            * pstate.frequency_ghz
            * activity
        )
        return self.static_w_per_core + dynamic

    def chip_power_w(self, pstate: PState, active_cores: int) -> float:
        """Chip power with ``active_cores`` busy cores at one P-state."""
        if not 0 <= active_cores <= self.processor.num_cores:
            raise ValueError(
                f"active cores must be in [0, {self.processor.num_cores}]"
            )
        return self.uncore_w + active_cores * self.core_power_w(pstate)


@dataclass(frozen=True)
class EnergyEstimate:
    """Predicted energy for one placement."""

    execution_time_s: float
    chip_power_w: float

    @property
    def energy_j(self) -> float:
        """Total predicted energy in joules."""
        return self.execution_time_s * self.chip_power_w

    @property
    def energy_wh(self) -> float:
        """Total predicted energy in watt-hours."""
        return self.energy_j / 3600.0


def interference_energy_cost(
    power_model: PowerModel,
    pstate: PState,
    baseline_time_s: float,
    co_located_time_s: float,
    active_cores: int,
) -> float:
    """Extra energy (J) attributable to co-location interference.

    The target would have finished in ``baseline_time_s`` alone; contention
    stretched it to ``co_located_time_s``, and the whole chip stays powered
    for the difference.  Negative inputs and a co-located time shorter than
    baseline are rejected — interference never speeds the target up.
    """
    if baseline_time_s <= 0.0:
        raise ValueError("baseline time must be positive")
    if co_located_time_s < baseline_time_s:
        raise ValueError("co-located time cannot be below the baseline")
    extra = co_located_time_s - baseline_time_s
    return extra * power_model.chip_power_w(pstate, active_cores)
