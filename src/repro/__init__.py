"""repro — co-location aware application performance modeling.

A full reproduction of Dauwe et al., "A Methodology for Co-Location Aware
Application Performance Modeling in Multicore Computing" (2015), including
the simulated testbed (multicore machines, synthetic PARSEC/NAS workloads,
shared-cache and DRAM contention, PAPI-style counters) and the modeling
methodology itself (feature sets A–F, linear and SCG-trained neural models,
MPE/NRMSE evaluation under repeated random sub-sampling).

Quick start::

    from repro.machine import XEON_E5649
    from repro.sim import SimulationEngine
    from repro.harness import collect_training_data
    from repro.core import PerformancePredictor, ModelKind, FeatureSet

    engine = SimulationEngine(XEON_E5649)
    data = collect_training_data(engine)
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F)
    predictor.fit(list(data))

See ``examples/quickstart.py`` for the full tour.
"""

from . import (
    cache,
    core,
    counters,
    energy,
    harness,
    machine,
    memsys,
    obs,
    reporting,
    sched,
    serve,
    sim,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "cache",
    "core",
    "counters",
    "energy",
    "harness",
    "machine",
    "memsys",
    "obs",
    "reporting",
    "sched",
    "serve",
    "sim",
    "workloads",
]
