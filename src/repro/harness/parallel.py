"""Deterministic process-pool scaffolding for bulk collection.

The Table V loop nest is thousands of *independent* scenarios, so the
collection functions fan them out across worker processes.  Two rules keep
parallel collection bit-identical to serial collection:

* **Per-scenario RNGs.**  :func:`spawn_streams` derives one child
  generator per scenario from the caller's root generator via
  ``np.random.SeedSequence`` spawning, keyed by scenario index.  Noise
  draws therefore depend only on *which* scenario is run, never on how
  many scenarios ran before it or on which process runs it.
* **Order-preserving results.**  :func:`map_scenarios` returns results in
  payload order regardless of completion order, and merges every worker's
  :class:`~repro.sim.solve_cache.EngineStats` back into the calling
  engine's stats so observability survives the fan-out.

Worker processes receive a pickled copy of the engine (including any
warm :class:`~repro.sim.solve_cache.SolveCache`); caches populated inside
workers are process-local and are not copied back — only their hit/miss
accounting is.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..obs.trace import Tracer, get_tracer, set_tracer
from ..sim.engine import SimulationEngine
from ..sim.solve_cache import GLOBAL_ENGINE_STATS, EngineStats

__all__ = ["map_scenario_batches", "map_scenarios", "spawn_streams"]


def spawn_streams(
    rng: np.random.Generator, n: int
) -> list[np.random.Generator]:
    """``n`` independent child generators derived from ``rng``.

    Children come from the generator's underlying ``SeedSequence`` (its
    spawn counter, not its draw position), so the i-th child is the same
    whether or not any values were drawn from ``rng`` in between — the
    property that makes noise draws independent of loop order.  Falls back
    to seeding a fresh ``SeedSequence`` from one draw for generators whose
    bit generator was built without a seed sequence.
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of streams")
    if n == 0:
        return []
    try:
        return list(rng.spawn(n))
    except TypeError:
        root = np.random.SeedSequence(int(rng.integers(2**63)))
        return [np.random.default_rng(child) for child in root.spawn(n)]


_WORKER_ENGINE: SimulationEngine | None = None
_WORKER_STREAMING = False


def _trace_spec(tracer) -> dict | None:
    """How workers should trace, derived from the caller's tracer.

    ``None`` (tracing off) keeps workers on the free :class:`NullTracer`
    path.  A recording tracer makes workers record too; when the caller
    is *streaming* to a collector, workers open their own senders to the
    same endpoint, otherwise their spans ride back with each chunk's
    results and are ingested into the caller's ring buffer — either way,
    parallel sweeps no longer drop worker spans.
    """
    if not tracer.enabled:
        return None
    spec: dict = {"service": f"{tracer.service}-worker"}
    sender = getattr(tracer, "sender", None)
    if sender is not None:
        spec["stream"] = sender.endpoint
    return spec


def _init_worker(engine: SimulationEngine, trace_spec: dict | None = None) -> None:
    global _WORKER_ENGINE, _WORKER_STREAMING
    _WORKER_ENGINE = engine
    _WORKER_STREAMING = False
    if trace_spec:
        service = str(trace_spec.get("service", "repro-worker"))
        endpoint = trace_spec.get("stream")
        if endpoint:
            from ..obs.stream import SpanSender, StreamingTracer

            set_tracer(
                StreamingTracer(
                    SpanSender(
                        endpoint,
                        resource={"service": service, "pid": os.getpid()},
                    )
                )
            )
            _WORKER_STREAMING = True
        else:
            set_tracer(Tracer(service=service))


def _drain_worker_spans() -> list[dict] | None:
    """Serialize and clear this worker's recorded spans for the parent.

    Streaming workers return ``None`` — their spans already went to the
    collector, and shipping them twice would duplicate every span.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    if _WORKER_STREAMING:
        # Push the chunk's spans through now: the pool may tear this
        # process down right after the result returns, and the sender's
        # daemon thread would die holding the tail batch.
        tracer.flush()
        return None
    resource = {"service": tracer.service, "pid": os.getpid()}
    records = []
    for span in tracer.spans():
        record = tracer.serialize(span)
        record.setdefault("resource", resource)
        records.append(record)
    tracer.reset()
    return records


def _run_chunk(task):
    func, chunk, parent_ctx = task
    engine = _WORKER_ENGINE
    assert engine is not None, "worker pool used before initialization"
    stats = EngineStats()
    previous, engine.stats = engine.stats, stats
    tracer = get_tracer()
    try:
        with tracer.child_span(
            "harness.worker_chunk",
            trace_id=parent_ctx[0],
            parent_id=parent_ctx[1],
            scenarios=len(chunk),
            pid=os.getpid(),
        ):
            results = [
                (index, func(engine, payload)) for index, payload in chunk
            ]
    finally:
        engine.stats = previous
        previous.merge(stats)
    return results, stats, _drain_worker_spans()


def _run_batch_chunk(task):
    batch_func, chunk, parent_ctx = task
    engine = _WORKER_ENGINE
    assert engine is not None, "worker pool used before initialization"
    stats = EngineStats()
    previous, engine.stats = engine.stats, stats
    tracer = get_tracer()
    try:
        with tracer.child_span(
            "harness.worker_chunk",
            trace_id=parent_ctx[0],
            parent_id=parent_ctx[1],
            scenarios=len(chunk),
            pid=os.getpid(),
        ):
            indices = [index for index, _ in chunk]
            values = batch_func(engine, [payload for _, payload in chunk])
            results = list(zip(indices, values))
    finally:
        engine.stats = previous
        previous.merge(stats)
    return results, stats, _drain_worker_spans()


def map_scenarios(
    engine: SimulationEngine,
    func: Callable,
    payloads: Sequence,
    *,
    workers: int = 1,
    chunks_per_worker: int = 4,
):
    """Evaluate ``func(engine, payload)`` for every payload, in order.

    ``workers=1`` (the default) runs serially on the calling engine.  With
    ``workers > 1`` the payloads are chunked across a process pool; each
    worker gets a pickled copy of ``engine`` once, and worker stats are
    merged back into ``engine.stats``.  ``func`` must be a module-level
    (picklable) function and must not depend on evaluation order — results
    are returned in payload order either way, which is what makes serial
    and parallel collection bit-identical.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    payloads = list(payloads)
    tracer = get_tracer()
    if workers == 1 or len(payloads) <= 1:
        with tracer.span(
            "harness.map_scenarios", payloads=len(payloads), workers=1
        ):
            return [func(engine, payload) for payload in payloads]
    indexed = list(enumerate(payloads))
    n_chunks = min(len(indexed), workers * chunks_per_worker)
    chunk_size = -(-len(indexed) // n_chunks)
    chunks = [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]
    results: list = [None] * len(payloads)
    with tracer.span(
        "harness.map_scenarios",
        payloads=len(payloads),
        workers=workers,
        chunks=len(chunks),
    ) as map_span:
        parent_ctx = (map_span.trace_id, map_span.span_id)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(engine, _trace_spec(tracer)),
        ) as pool:
            for chunk_results, stats, spans in pool.map(
                _run_chunk, [(func, chunk, parent_ctx) for chunk in chunks]
            ):
                engine.stats.merge(stats)
                # Worker processes fed their *own* global aggregate, which
                # dies with the worker — fold the chunk's counters into the
                # caller's process-wide record here instead.
                GLOBAL_ENGINE_STATS.merge(stats)
                # Same for spans: each chunk brings its worker-side spans
                # home (unless the workers streamed them to a collector).
                if spans:
                    tracer.ingest(spans)
                for index, value in chunk_results:
                    results[index] = value
    return results


def map_scenario_batches(
    engine: SimulationEngine,
    batch_func: Callable,
    payloads: Sequence,
    *,
    workers: int = 1,
    chunks_per_worker: int = 4,
):
    """Evaluate ``batch_func(engine, payload_list)`` over whole sub-batches.

    The batched counterpart of :func:`map_scenarios` for functions that
    advance many scenarios per call (the stacked steady-state solver):
    ``workers=1`` hands *all* payloads to one ``batch_func`` call on the
    calling engine; ``workers > 1`` chunks the payloads exactly like
    :func:`map_scenarios` and each worker solves its chunk as one batch.
    ``batch_func`` must return one result per payload, in payload order,
    and must not depend on how payloads are grouped — which the batched
    solver guarantees (each scenario's trajectory is independent and noise
    comes from per-scenario RNGs), so serial, batched, and parallel
    collection all produce bit-identical results.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    payloads = list(payloads)
    tracer = get_tracer()
    if workers == 1 or len(payloads) <= 1:
        with tracer.span(
            "harness.map_scenario_batches", payloads=len(payloads), workers=1
        ):
            return list(batch_func(engine, payloads)) if payloads else []
    indexed = list(enumerate(payloads))
    n_chunks = min(len(indexed), workers * chunks_per_worker)
    chunk_size = -(-len(indexed) // n_chunks)
    chunks = [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]
    results: list = [None] * len(payloads)
    with tracer.span(
        "harness.map_scenario_batches",
        payloads=len(payloads),
        workers=workers,
        chunks=len(chunks),
    ) as map_span:
        parent_ctx = (map_span.trace_id, map_span.span_id)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(engine, _trace_spec(tracer)),
        ) as pool:
            for chunk_results, stats, spans in pool.map(
                _run_batch_chunk,
                [(batch_func, chunk, parent_ctx) for chunk in chunks],
            ):
                engine.stats.merge(stats)
                GLOBAL_ENGINE_STATS.merge(stats)
                if spans:
                    tracer.ingest(spans)
                for index, value in chunk_results:
                    results[index] = value
    return results
