"""Per-table and per-figure experiment drivers (paper, Sections IV–V).

Each ``table*``/``figure*`` function regenerates the data behind one table
or figure of the paper from the simulated testbed.  Heavy artifacts — the
per-machine baseline tables, Table V training datasets, and 12-model
evaluations — are cached on an :class:`ExperimentContext` so the benchmark
suite shares one collection pass, mirroring how the paper collects data
once and evaluates many models on it.
"""

from __future__ import annotations

import numpy as np

from ..core.feature_sets import FEATURE_SETS, FeatureSet
from ..core.features import FEATURE_DESCRIPTIONS, Feature
from ..core.fitstats import FitStats
from ..core.methodology import (
    ModelEvaluation,
    ModelKind,
    PerformancePredictor,
    evaluate_models,
)
from ..core.metrics import percent_errors
from ..machine.processor import PROCESSOR_CATALOG, MulticoreProcessor
from ..sim.engine import SimulationEngine
from ..workloads.suite import all_applications, get_application, intended_class
from .baselines import BaselineTable, collect_baselines
from .collection import TRAINING_SETUPS, collect_training_data
from .datasets import ObservationDataset

__all__ = [
    "ExperimentContext",
    "default_context",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "figure_series",
    "figure5a_distributions",
    "figure5b_errors",
]

#: Reference machine for Table III intensities ("baseline measurements for
#: one specific system").
REFERENCE_MACHINE = "e5649"


class ExperimentContext:
    """Caches engines, baselines, datasets, and model evaluations.

    Parameters
    ----------
    seed:
        Root seed for all measurement noise and model randomness.
    repetitions:
        Random sub-sampling repetitions for the model evaluations; the
        paper uses 100.  Lower values trade headline fidelity for runtime.
    workers:
        Process-pool width for the validation sweeps inside
        :func:`~repro.core.methodology.evaluate_models`; results are
        bit-identical for any count.
    batched_restarts:
        Fit neural models on the stacked multi-restart SCG fast path
        (bit-identical to the serial restart loop).
    """

    def __init__(
        self,
        *,
        seed: int = 2015,
        repetitions: int = 100,
        workers: int = 1,
        batched_restarts: bool = False,
    ) -> None:
        self.seed = seed
        self.repetitions = repetitions
        self.workers = workers
        self.batched_restarts = batched_restarts
        self.fit_stats = FitStats()
        self._engines: dict[str, SimulationEngine] = {}
        self._baselines: dict[str, BaselineTable] = {}
        self._datasets: dict[str, ObservationDataset] = {}
        self._evaluations: dict[str, list[ModelEvaluation]] = {}

    @staticmethod
    def processor(key: str) -> MulticoreProcessor:
        """Catalog machine for a short key (``"e5649"``/``"e5-2697v2"``)."""
        try:
            return PROCESSOR_CATALOG[key]
        except KeyError:
            known = ", ".join(sorted(PROCESSOR_CATALOG))
            raise KeyError(f"unknown machine {key!r}; catalog: {known}") from None

    def engine(self, key: str) -> SimulationEngine:
        """Cached simulation engine for one machine."""
        if key not in self._engines:
            self._engines[key] = SimulationEngine(self.processor(key))
        return self._engines[key]

    def baselines(self, key: str) -> BaselineTable:
        """Cached baseline table (all 11 apps x all 6 P-states, solo)."""
        if key not in self._baselines:
            self._baselines[key] = collect_baselines(
                self.engine(key), all_applications()
            )
        return self._baselines[key]

    def dataset(self, key: str) -> ObservationDataset:
        """Cached Table V training dataset for one machine."""
        if key not in self._datasets:
            self._datasets[key] = collect_training_data(
                self.engine(key),
                baselines=self.baselines(key),
                rng=np.random.default_rng([self.seed, len(key)]),
            )
        return self._datasets[key]

    def evaluations(self, key: str) -> list[ModelEvaluation]:
        """Cached 12-model evaluation (Figures 1–4 data) for one machine."""
        if key not in self._evaluations:
            self._evaluations[key] = evaluate_models(
                list(self.dataset(key)),
                repetitions=self.repetitions,
                seed=self.seed,
                workers=self.workers,
                batched_restarts=self.batched_restarts,
                stats=self.fit_stats,
            )
        return self._evaluations[key]


_DEFAULT_CONTEXT: ExperimentContext | None = None


def default_context() -> ExperimentContext:
    """Process-wide shared context (used by the benchmark suite)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT


# --------------------------------------------------------------- Tables


def table1_rows() -> list[list[str]]:
    """Table I: feature name and the aspect of execution it measures."""
    return [[f.value, FEATURE_DESCRIPTIONS[f]] for f in Feature]


def table2_rows() -> list[list[str]]:
    """Table II: feature set name and its feature groups."""
    return [
        [fs.value, ", ".join(f.value for f in FEATURE_SETS[fs])] for fs in FeatureSet
    ]


def table3_rows(ctx: ExperimentContext | None = None) -> list[list[object]]:
    """Table III: application, suite, baseline memory intensity, class.

    Intensities are measured from the baseline profiles on the reference
    machine at the fastest P-state, exactly as a real harness would.
    """
    ctx = ctx or default_context()
    baselines = ctx.baselines(REFERENCE_MACHINE)
    fmax = ctx.processor(REFERENCE_MACHINE).pstates.fastest.frequency_ghz
    rows = []
    for app in all_applications():
        profile = baselines.get(app.name, fmax)
        rows.append(
            [
                f"{app.name} ({app.suite[0]})",
                profile.memory_intensity,
                intended_class(app.name).roman,
            ]
        )
    return rows


def table4_rows() -> list[list[object]]:
    """Table IV: processor, cores, L3 size, frequency range."""
    rows = []
    for proc in PROCESSOR_CATALOG.values():
        ladder = proc.pstates
        rows.append(
            [
                proc.name,
                proc.num_cores,
                f"{proc.llc.size_mb:.0f}MB",
                f"{ladder.slowest.frequency_ghz:.2f}-{ladder.fastest.frequency_ghz:.2f} GHz",
            ]
        )
    return rows


def table5_rows() -> list[list[object]]:
    """Table V: per-machine P-state frequencies and co-location counts."""
    rows = []
    for key, setup in TRAINING_SETUPS.items():
        proc = PROCESSOR_CATALOG[key]
        rows.append(
            [
                proc.name,
                ", ".join(f"{f:.2f}" for f in proc.pstates.frequencies_ghz),
                ", ".join(str(c) for c in setup.co_location_counts),
            ]
        )
    return rows


def table6_rows(ctx: ExperimentContext | None = None) -> list[list[object]]:
    """Table VI: canneal vs increasing cg co-runners on the 12-core Xeon.

    Columns: co-located cg count, measured execution time, normalized
    execution time, and the feature-set-F linear and neural models'
    percent error on each point (models trained on the machine's Table V
    dataset).
    """
    ctx = ctx or default_context()
    key = "e5-2697v2"
    engine = ctx.engine(key)
    baselines = ctx.baselines(key)
    dataset = ctx.dataset(key)
    fmax = engine.processor.pstates.fastest
    canneal, cg = get_application("canneal"), get_application("cg")
    canneal_base = baselines.get("canneal", fmax.frequency_ghz)
    cg_base = baselines.get("cg", fmax.frequency_ghz)

    linear = PerformancePredictor(ModelKind.LINEAR, FeatureSet.F, seed=ctx.seed)
    linear.fit(list(dataset))
    neural = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=ctx.seed)
    neural.fit(list(dataset))

    rng = np.random.default_rng([ctx.seed, 6])
    rows: list[list[object]] = []
    for n in range(1, engine.processor.max_co_located + 1):
        run = engine.run(canneal, [cg] * n, pstate=fmax, rng=rng)
        actual = run.target.execution_time_s
        co_bases = [cg_base] * n
        pred_lin = linear.predict_time(canneal_base, co_bases)
        pred_nn = neural.predict_time(canneal_base, co_bases)
        rows.append(
            [
                n,
                actual,
                actual / canneal_base.wall_time_s,
                abs(pred_lin - actual) / actual * 100.0,
                abs(pred_nn - actual) / actual * 100.0,
            ]
        )
    return rows


# --------------------------------------------------------------- Figures


def figure_series(
    ctx: ExperimentContext | None,
    machine_key: str,
    metric: str,
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Figures 1–4 data: error versus feature set for one machine.

    Parameters
    ----------
    machine_key:
        ``"e5649"`` (Figures 1/3) or ``"e5-2697v2"`` (Figures 2/4).
    metric:
        ``"mpe"`` (Figures 1/2) or ``"nrmse"`` (Figures 3/4).

    Returns ``(x_labels, series)`` with one series per
    (technique, train/test) pair, each an array over feature sets A–F.
    """
    if metric not in ("mpe", "nrmse"):
        raise ValueError(f"metric must be 'mpe' or 'nrmse', got {metric!r}")
    ctx = ctx or default_context()
    evaluations = ctx.evaluations(machine_key)
    x_labels = [fs.value for fs in FeatureSet]
    series: dict[str, np.ndarray] = {}
    for kind in (ModelKind.LINEAR, ModelKind.NEURAL):
        for split in ("train", "test"):
            values = []
            for fs in FeatureSet:
                ev = next(
                    e
                    for e in evaluations
                    if e.kind is kind and e.feature_set is fs
                )
                values.append(getattr(ev.result, f"mean_{split}_{metric}"))
            series[f"{kind.value} {split}"] = np.array(values)
    return x_labels, series


def figure5a_distributions(
    ctx: ExperimentContext | None = None,
) -> dict[str, np.ndarray]:
    """Figure 5(a): per-application execution time samples on the 6-core.

    Every co-location test of the machine's dataset contributes its
    measured target execution time to its target application's
    distribution.
    """
    ctx = ctx or default_context()
    dataset = ctx.dataset(REFERENCE_MACHINE)
    return {
        name: np.array(
            [o.actual_time_s for o in dataset if o.target_name == name]
        )
        for name in dataset.target_names()
    }


def figure5b_errors(
    ctx: ExperimentContext | None = None,
    *,
    repetitions: int = 10,
    test_fraction: float = 0.3,
) -> dict[str, np.ndarray]:
    """Figure 5(b): per-application percent error of the neural/F model.

    Pools *held-out* percent errors across ``repetitions`` random 70/30
    splits so every distribution reflects predictions on unseen data, as
    in the paper's testing protocol.
    """
    ctx = ctx or default_context()
    dataset = ctx.dataset(REFERENCE_MACHINE)
    observations = list(dataset)
    n = len(observations)
    n_test = max(int(round(n * test_fraction)), 1)
    rng = np.random.default_rng([ctx.seed, 55])
    pooled: dict[str, list[float]] = {name: [] for name in dataset.target_names()}
    for _ in range(repetitions):
        perm = rng.permutation(n)
        test_idx, train_idx = perm[:n_test], perm[n_test:]
        predictor = PerformancePredictor(
            ModelKind.NEURAL, FeatureSet.F, seed=int(rng.integers(2**31))
        )
        predictor.fit([observations[i] for i in train_idx])
        test_obs = [observations[i] for i in test_idx]
        preds = predictor.predict_observations(test_obs)
        actuals = np.array([o.actual_time_s for o in test_obs])
        errors = percent_errors(preds, actuals)
        for obs, err in zip(test_obs, errors):
            pooled[obs.target_name].append(float(err))
    return {name: np.array(vals) for name, vals in pooled.items() if vals}
