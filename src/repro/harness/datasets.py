"""Observation datasets with CSV persistence and slicing.

A :class:`ObservationDataset` is what the data-collection harness produces
and what the methodology consumes: a list of
:class:`~repro.core.features.CoLocationObservation` records tagged with the
machine they came from.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.features import CoLocationObservation

__all__ = ["ObservationDataset"]

_CSV_COLUMNS = [
    "processor_name",
    "frequency_ghz",
    "target_name",
    "co_app_name",
    "base_ex_time_s",
    "num_co_app",
    "co_app_mem",
    "target_mem",
    "co_app_cm_ca",
    "co_app_ca_ins",
    "target_cm_ca",
    "target_ca_ins",
    "actual_time_s",
]


@dataclass
class ObservationDataset:
    """A collection of co-location observations from one machine."""

    processor_name: str
    observations: list[CoLocationObservation] = field(default_factory=list)

    def __post_init__(self) -> None:
        for obs in self.observations:
            if obs.processor_name != self.processor_name:
                raise ValueError(
                    f"observation from {obs.processor_name!r} in a "
                    f"{self.processor_name!r} dataset"
                )

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    def add(self, observation: CoLocationObservation) -> None:
        """Append one observation (machine tag must match)."""
        if observation.processor_name != self.processor_name:
            raise ValueError(
                f"observation from {observation.processor_name!r} in a "
                f"{self.processor_name!r} dataset"
            )
        self.observations.append(observation)

    def extend(self, observations: list[CoLocationObservation]) -> None:
        """Append many observations."""
        for obs in observations:
            self.add(obs)

    # ------------------------------------------------------------- slicing

    def filter(
        self,
        *,
        target_name: str | None = None,
        co_app_name: str | None = None,
        frequency_ghz: float | None = None,
        num_co_app: int | None = None,
    ) -> "ObservationDataset":
        """Subset by any combination of metadata fields."""
        kept = [
            obs
            for obs in self.observations
            if (target_name is None or obs.target_name == target_name)
            and (co_app_name is None or obs.co_app_name == co_app_name)
            and (
                frequency_ghz is None
                or abs(obs.frequency_ghz - frequency_ghz) < 1e-9
            )
            and (num_co_app is None or obs.num_co_app == num_co_app)
        ]
        return ObservationDataset(self.processor_name, kept)

    def target_names(self) -> list[str]:
        """Distinct target applications, in first-seen order."""
        seen: dict[str, None] = {}
        for obs in self.observations:
            seen.setdefault(obs.target_name, None)
        return list(seen)

    def actual_times(self) -> np.ndarray:
        """All measured co-located execution times."""
        return np.array([obs.actual_time_s for obs in self.observations])

    # --------------------------------------------------------- persistence

    def to_csv(self, path: str | Path) -> None:
        """Write the dataset as CSV (one row per observation)."""
        with open(path, "w", newline="") as fh:
            self._write_csv(fh)

    def to_csv_string(self) -> str:
        """CSV content as a string (for tests and piping)."""
        buf = io.StringIO()
        self._write_csv(buf)
        return buf.getvalue()

    def _write_csv(self, fh) -> None:
        writer = csv.writer(fh)
        writer.writerow(_CSV_COLUMNS)
        for obs in self.observations:
            # repr(float(x)) is the shortest string that round-trips the
            # exact double (and normalizes numpy scalars to plain floats).
            writer.writerow(
                [
                    obs.processor_name,
                    repr(float(obs.frequency_ghz)),
                    obs.target_name,
                    obs.co_app_name or "",
                    repr(float(obs.base_ex_time_s)),
                    int(obs.num_co_app),
                    repr(float(obs.co_app_mem)),
                    repr(float(obs.target_mem)),
                    repr(float(obs.co_app_cm_ca)),
                    repr(float(obs.co_app_ca_ins)),
                    repr(float(obs.target_cm_ca)),
                    repr(float(obs.target_ca_ins)),
                    repr(float(obs.actual_time_s)),
                ]
            )

    @classmethod
    def from_csv(cls, path: str | Path) -> "ObservationDataset":
        """Read a dataset previously written by :meth:`to_csv`."""
        with open(path, newline="") as fh:
            return cls._read_csv(fh)

    @classmethod
    def from_csv_string(cls, content: str) -> "ObservationDataset":
        """Parse CSV content produced by :meth:`to_csv_string`."""
        return cls._read_csv(io.StringIO(content))

    @classmethod
    def _read_csv(cls, fh) -> "ObservationDataset":
        reader = csv.DictReader(fh)
        observations = []
        processor = None
        try:
            if reader.fieldnames != _CSV_COLUMNS:
                raise ValueError(
                    f"unexpected CSV columns {reader.fieldnames}; "
                    f"expected {_CSV_COLUMNS}"
                )
            for row in reader:
                if any(row.get(col) is None for col in _CSV_COLUMNS):
                    raise ValueError(f"short CSV row: {row}")
                obs = CoLocationObservation(
                    processor_name=row["processor_name"],
                    frequency_ghz=float(row["frequency_ghz"]),
                    target_name=row["target_name"],
                    co_app_name=row["co_app_name"] or None,
                    base_ex_time_s=float(row["base_ex_time_s"]),
                    num_co_app=int(row["num_co_app"]),
                    co_app_mem=float(row["co_app_mem"]),
                    target_mem=float(row["target_mem"]),
                    co_app_cm_ca=float(row["co_app_cm_ca"]),
                    co_app_ca_ins=float(row["co_app_ca_ins"]),
                    target_cm_ca=float(row["target_cm_ca"]),
                    target_ca_ins=float(row["target_ca_ins"]),
                    actual_time_s=float(row["actual_time_s"]),
                )
                processor = processor or obs.processor_name
                observations.append(obs)
        except csv.Error as exc:
            # Normalize the csv module's own failures (e.g. stray carriage
            # returns in unquoted fields) into the documented error type.
            raise ValueError(f"malformed CSV: {exc}") from None
        if processor is None:
            raise ValueError("CSV contains no observations")
        return cls(processor_name=processor, observations=observations)
