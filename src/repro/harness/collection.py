"""Training data collection (paper, Section IV-B3 and Table V).

Implements the paper's loop nest::

    for each multicore processor:
        for each frequency:
            for each target application:
                for each co-located application:
                    for each num. of co-locations:
                        get_exec_time_of_target()

Eleven targets are each co-located with multiple copies of the four
training co-location applications (cg, sp, fluidanimate, ep — one per
memory intensity class), at every P-state, for each machine's co-location
counts.  The counts sample the co-location space *uniformly* — the paper
contrasts this with the mostly-random selection of [DwF12]; a random
sampler with the same budget is provided for that ablation.

Every scenario in the nest is independent, so collection accepts a
``workers=N`` fan-out (see :mod:`repro.harness.parallel`).  Measurement
noise for each scenario comes from its own child RNG spawned from the
caller's root generator and keyed by scenario index, which makes the
collected dataset bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.features import observation_from_profiles
from ..machine.processor import PROCESSOR_CATALOG, MulticoreProcessor
from ..machine.pstates import PState
from ..obs.trace import get_tracer
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec
from ..workloads.suite import TRAINING_CO_APP_NAMES, all_applications, get_application
from .baselines import BaselineTable, collect_baselines
from .datasets import ObservationDataset
from .parallel import map_scenario_batches, map_scenarios, spawn_streams

__all__ = [
    "TrainingSetup",
    "setup_for",
    "collect_training_data",
    "collect_random_training_data",
    "TRAINING_SETUPS",
]


@dataclass(frozen=True)
class TrainingSetup:
    """One machine's row of Table V."""

    processor_key: str
    co_location_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.co_location_counts:
            raise ValueError("need at least one co-location count")
        if any(c < 1 for c in self.co_location_counts):
            raise ValueError("co-location counts must be >= 1")
        if list(self.co_location_counts) != sorted(set(self.co_location_counts)):
            raise ValueError("co-location counts must be strictly increasing")


#: Table V: per-machine co-location counts.  The 6-core machine exercises
#: every count up to its 5 free cores; the 12-core machine samples its 11
#: free cores sparsely (evenly spread, per Section IV-B3) to keep the test
#: count tractable.
TRAINING_SETUPS: dict[str, TrainingSetup] = {
    "e5649": TrainingSetup("e5649", (1, 2, 3, 4, 5)),
    "e5-2697v2": TrainingSetup("e5-2697v2", (1, 3, 5, 7, 9, 11)),
}


def setup_for(processor: MulticoreProcessor) -> TrainingSetup:
    """The Table V setup matching a catalog machine.

    Machines outside the catalog get the 6-core-style treatment: all
    counts from 1 to their free-core maximum, capped at 8 counts by even
    subsampling.
    """
    for key, setup in TRAINING_SETUPS.items():
        catalog_entry = PROCESSOR_CATALOG.get(key)
        if catalog_entry is not None and (
            catalog_entry is processor or catalog_entry.name == processor.name
        ):
            return setup
    max_count = processor.max_co_located
    counts = list(range(1, max_count + 1))
    if len(counts) > 8:
        idx = np.linspace(0, len(counts) - 1, 8).round().astype(int)
        counts = [counts[i] for i in idx]
    return TrainingSetup(processor.name.lower(), tuple(counts))


def _run_scenario(engine: SimulationEngine, payload) -> float:
    """One Table V cell: the target's noisy co-located execution time."""
    target, co_app, count, pstate, rng = payload
    tracer = get_tracer()
    if not tracer.enabled:
        run = engine.run(target, [co_app] * count, pstate=pstate, rng=rng)
        return run.target.execution_time_s
    with tracer.span(
        "collect.scenario",
        target=target.name,
        co_app=co_app.name,
        count=count,
        frequency_ghz=pstate.frequency_ghz,
    ):
        run = engine.run(target, [co_app] * count, pstate=pstate, rng=rng)
        return run.target.execution_time_s


def _run_scenario_batch(engine: SimulationEngine, payloads) -> list[float]:
    """Many Table V cells at once through the stacked steady-state solver.

    Produces exactly the same times as mapping :func:`_run_scenario` over
    the payloads: each scenario's noise comes from its own child RNG, and
    the batched solve is bit-identical to the serial one.
    """
    items = [
        (target, [co_app] * count, pstate, rng)
        for target, co_app, count, pstate, rng in payloads
    ]
    tracer = get_tracer()
    if not tracer.enabled:
        runs = engine.run_batch(items)
        return [run.target.execution_time_s for run in runs]
    with tracer.span("collect.scenario_batch", scenarios=len(items)):
        runs = engine.run_batch(items)
        return [run.target.execution_time_s for run in runs]


def _scenario_payloads(
    scenarios: list[tuple[ApplicationSpec, ApplicationSpec, int, PState]],
    rng: np.random.Generator,
) -> list:
    """Attach one SeedSequence-spawned child RNG per scenario.

    The child is keyed by the scenario's index, so noise draws depend only
    on which scenario is run — never on loop order or worker placement.
    """
    streams = spawn_streams(rng, len(scenarios))
    return [
        scenario + (stream,) for scenario, stream in zip(scenarios, streams)
    ]


def collect_training_data(
    engine: SimulationEngine,
    *,
    baselines: BaselineTable | None = None,
    targets: list[ApplicationSpec] | None = None,
    co_apps: list[ApplicationSpec] | None = None,
    counts: tuple[int, ...] | None = None,
    frequencies_ghz: tuple[float, ...] | None = None,
    rng: np.random.Generator | None = None,
    workers: int = 1,
    batch_solve: bool = True,
) -> ObservationDataset:
    """Collect one machine's full Table V training dataset.

    Parameters
    ----------
    engine:
        Simulator for the machine under test.
    baselines:
        Pre-collected baseline table (collected fresh when omitted).
    targets:
        Target applications; default all eleven of Table III.
    co_apps:
        Co-location applications; default the four training co-apps.
    counts:
        Homogeneous co-location counts; default the machine's Table V row.
    frequencies_ghz:
        Restrict the sweep to these P-states (default: the machine's full
        ladder).  Each frequency must match a catalog P-state exactly;
        experiment suites use this to declare per-case P-state subsets.
    rng:
        Root of the measurement-noise streams (seeded default).  Each
        scenario gets its own child generator spawned from this root, so
        the dataset is identical for any ``workers`` setting.
    workers:
        Worker processes for the sweep; 1 (the default) runs serially.
    batch_solve:
        Advance the scenario sweep through the stacked (batched)
        steady-state solver (the default).  ``False`` falls back to the
        serial per-scenario reference path; both produce bit-identical
        datasets for any ``workers`` setting.
    """
    targets = list(targets) if targets is not None else list(all_applications())
    co_apps = (
        list(co_apps)
        if co_apps is not None
        else [get_application(n) for n in TRAINING_CO_APP_NAMES]
    )
    if counts is None:
        counts = setup_for(engine.processor).co_location_counts
    for count in counts:
        engine.processor.validate_co_location_count(count)
    if frequencies_ghz is None:
        pstates = list(engine.processor.pstates)
    else:
        try:
            pstates = [
                engine.processor.pstates.at_frequency(f)
                for f in frequencies_ghz
            ]
        except Exception as exc:
            raise ValueError(str(exc)) from None
        if not pstates:
            raise ValueError("need at least one P-state frequency")
    if rng is None:
        rng = np.random.default_rng(2015)
    if baselines is None:
        baselines = collect_baselines(
            engine,
            sorted(set(targets + co_apps), key=lambda a: a.name),
            workers=workers,
            batch_solve=batch_solve,
        )

    scenarios = [
        (target, co_app, count, pstate)
        for pstate in pstates
        for target in targets
        for co_app in co_apps
        for count in counts
    ]
    with get_tracer().span(
        "collect.dataset",
        processor=engine.processor.name,
        scenarios=len(scenarios),
        workers=workers,
        batched=batch_solve,
    ):
        payloads = _scenario_payloads(scenarios, rng)
        if batch_solve:
            times = map_scenario_batches(
                engine, _run_scenario_batch, payloads, workers=workers
            )
        else:
            times = map_scenarios(
                engine, _run_scenario, payloads, workers=workers
            )
    dataset = ObservationDataset(processor_name=engine.processor.name)
    for (target, co_app, count, pstate), time_s in zip(scenarios, times):
        dataset.add(
            observation_from_profiles(
                baselines.get(target.name, pstate.frequency_ghz),
                [baselines.get(co_app.name, pstate.frequency_ghz)] * count,
                time_s,
            )
        )
    return dataset


def collect_random_training_data(
    engine: SimulationEngine,
    budget: int,
    *,
    baselines: BaselineTable | None = None,
    targets: list[ApplicationSpec] | None = None,
    co_apps: list[ApplicationSpec] | None = None,
    rng: np.random.Generator | None = None,
    workers: int = 1,
    batch_solve: bool = True,
) -> ObservationDataset:
    """[DwF12]-style randomly sampled training data with a fixed budget.

    Each of the ``budget`` observations picks a random P-state, target,
    co-app, and co-location count (uniform over 1..max free cores).  Used
    by the sampling ablation bench to compare against the paper's uniform
    coverage with the *same* number of runs.

    Scenario *selection* draws come sequentially from ``rng``; each
    selected scenario's measurement noise then comes from its own spawned
    child stream, so ``workers > 1`` reproduces the serial dataset
    exactly.
    """
    if budget < 1:
        raise ValueError("budget must be positive")
    targets = list(targets) if targets is not None else list(all_applications())
    co_apps = (
        list(co_apps)
        if co_apps is not None
        else [get_application(n) for n in TRAINING_CO_APP_NAMES]
    )
    if rng is None:
        rng = np.random.default_rng(2015)
    if baselines is None:
        baselines = collect_baselines(
            engine,
            sorted(set(targets + co_apps), key=lambda a: a.name),
            workers=workers,
            batch_solve=batch_solve,
        )

    pstates = list(engine.processor.pstates)
    max_count = engine.processor.max_co_located
    scenarios = []
    for _ in range(budget):
        pstate = pstates[rng.integers(len(pstates))]
        target = targets[rng.integers(len(targets))]
        co_app = co_apps[rng.integers(len(co_apps))]
        count = int(rng.integers(1, max_count + 1))
        scenarios.append((target, co_app, count, pstate))
    with get_tracer().span(
        "collect.dataset",
        processor=engine.processor.name,
        scenarios=len(scenarios),
        workers=workers,
        sampling="random",
        batched=batch_solve,
    ):
        payloads = _scenario_payloads(scenarios, rng)
        if batch_solve:
            times = map_scenario_batches(
                engine, _run_scenario_batch, payloads, workers=workers
            )
        else:
            times = map_scenarios(
                engine, _run_scenario, payloads, workers=workers
            )
    dataset = ObservationDataset(processor_name=engine.processor.name)
    for (target, co_app, count, pstate), time_s in zip(scenarios, times):
        dataset.add(
            observation_from_profiles(
                baselines.get(target.name, pstate.frequency_ghz),
                [baselines.get(co_app.name, pstate.frequency_ghz)] * count,
                time_s,
            )
        )
    return dataset
