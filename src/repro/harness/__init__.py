"""Experiment harness: baselines, training data collection, experiments."""

from .baselines import BaselineTable, collect_baselines
from .collection import (
    TRAINING_SETUPS,
    TrainingSetup,
    collect_random_training_data,
    collect_training_data,
    setup_for,
)
from .datasets import ObservationDataset
from .manifest import (
    DatasetManifest,
    manifest_path_for,
    read_manifest,
    write_manifest,
)
from .parallel import map_scenarios, spawn_streams
from .experiments import (
    ExperimentContext,
    default_context,
    figure5a_distributions,
    figure5b_errors,
    figure_series,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
)

__all__ = [
    "BaselineTable",
    "DatasetManifest",
    "ExperimentContext",
    "ObservationDataset",
    "TRAINING_SETUPS",
    "TrainingSetup",
    "collect_baselines",
    "collect_random_training_data",
    "collect_training_data",
    "default_context",
    "figure5a_distributions",
    "figure5b_errors",
    "figure_series",
    "manifest_path_for",
    "map_scenarios",
    "read_manifest",
    "setup_for",
    "spawn_streams",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "write_manifest",
]
