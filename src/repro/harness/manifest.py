"""Dataset provenance manifests.

A trained model is only as trustworthy as the record of how its training
data was produced.  A :class:`DatasetManifest` captures everything needed
to regenerate a dataset bit-for-bit — machine, targets, co-apps, counts,
P-states, seed, library version — plus a content digest to detect drift
between a CSV on disk and the manifest that claims to describe it.

Manifests are written as JSON sidecars next to the dataset CSV
(``data.csv`` → ``data.manifest.json``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from .datasets import ObservationDataset

__all__ = [
    "DatasetManifest",
    "check_dataset_manifest",
    "manifest_path_for",
    "read_manifest",
    "write_manifest",
]


def _digest(dataset: ObservationDataset) -> str:
    """SHA-256 of the canonical CSV serialization."""
    return hashlib.sha256(dataset.to_csv_string().encode()).hexdigest()


@dataclass(frozen=True)
class DatasetManifest:
    """Provenance record for one observation dataset."""

    processor_name: str
    num_observations: int
    content_sha256: str
    seed: int | None = None
    targets: tuple[str, ...] = ()
    co_apps: tuple[str, ...] = ()
    co_location_counts: tuple[int, ...] = ()
    frequencies_ghz: tuple[float, ...] = ()
    library_version: str = ""
    notes: str = ""

    @classmethod
    def describe(
        cls,
        dataset: ObservationDataset,
        *,
        seed: int | None = None,
        notes: str = "",
    ) -> "DatasetManifest":
        """Build a manifest from a dataset's actual contents.

        Targets, co-apps, counts, and frequencies are read off the
        observations, so the manifest always matches what is really in
        the dataset regardless of how it was collected.
        """
        from .. import __version__

        targets = tuple(dataset.target_names())
        co_apps = tuple(
            sorted({o.co_app_name for o in dataset if o.co_app_name})
        )
        counts = tuple(sorted({o.num_co_app for o in dataset}))
        freqs = tuple(sorted({round(o.frequency_ghz, 6) for o in dataset}, reverse=True))
        return cls(
            processor_name=dataset.processor_name,
            num_observations=len(dataset),
            content_sha256=_digest(dataset),
            seed=seed,
            targets=targets,
            co_apps=co_apps,
            co_location_counts=counts,
            frequencies_ghz=freqs,
            library_version=__version__,
            notes=notes,
        )

    def matches(self, dataset: ObservationDataset) -> bool:
        """Whether the dataset's content digest matches this manifest."""
        return _digest(dataset) == self.content_sha256

    def to_json(self) -> str:
        """Serialize to pretty JSON."""
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DatasetManifest":
        """Parse a manifest previously produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"manifest is not valid JSON: {exc}") from None
        try:
            return cls(
                processor_name=str(data["processor_name"]),
                num_observations=int(data["num_observations"]),
                content_sha256=str(data["content_sha256"]),
                seed=None if data.get("seed") is None else int(data["seed"]),
                targets=tuple(data.get("targets", ())),
                co_apps=tuple(data.get("co_apps", ())),
                co_location_counts=tuple(
                    int(c) for c in data.get("co_location_counts", ())
                ),
                frequencies_ghz=tuple(
                    float(f) for f in data.get("frequencies_ghz", ())
                ),
                library_version=str(data.get("library_version", "")),
                notes=str(data.get("notes", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed manifest: {exc}") from None


def manifest_path_for(csv_path: str | Path) -> Path:
    """Sidecar path convention: ``data.csv`` → ``data.manifest.json``."""
    p = Path(csv_path)
    return p.with_suffix(".manifest.json")


def write_manifest(
    dataset: ObservationDataset,
    csv_path: str | Path,
    *,
    seed: int | None = None,
    notes: str = "",
) -> DatasetManifest:
    """Describe ``dataset`` and write the sidecar next to its CSV."""
    manifest = DatasetManifest.describe(dataset, seed=seed, notes=notes)
    manifest_path_for(csv_path).write_text(manifest.to_json())
    return manifest


def read_manifest(csv_path: str | Path) -> DatasetManifest:
    """Read the sidecar manifest for a dataset CSV."""
    path = manifest_path_for(csv_path)
    if not path.exists():
        raise FileNotFoundError(f"no manifest at {path}")
    return DatasetManifest.from_json(path.read_text())


def check_dataset_manifest(
    dataset: ObservationDataset, csv_path: str | Path
) -> list[str]:
    """Provenance problems for a loaded dataset, as human-readable strings.

    Consumers (``repro train`` / ``repro evaluate``) call this after
    loading a CSV and decide whether problems warn or fail.  An empty list
    means the sidecar manifest exists, parses, and its ``content_sha256``
    matches the bytes that were just loaded — the dataset is exactly what
    its manifest claims.

    Reported problems: missing sidecar, malformed sidecar, and content
    digest mismatch (the CSV was edited, truncated, or swapped after
    collection).
    """
    path = manifest_path_for(csv_path)
    if not path.exists():
        return [
            f"dataset {csv_path} has no provenance manifest at {path}; "
            f"re-collect with 'repro collect' to produce one"
        ]
    try:
        manifest = DatasetManifest.from_json(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"manifest {path} is unreadable: {exc}"]
    problems = []
    if not manifest.matches(dataset):
        problems.append(
            f"dataset {csv_path} does not match its manifest: content "
            f"sha256 is {_digest(dataset)[:12]}... but the manifest "
            f"records {manifest.content_sha256[:12]}... — the CSV was "
            f"modified after collection"
        )
    if manifest.num_observations != len(dataset):
        problems.append(
            f"dataset {csv_path} holds {len(dataset)} observations but "
            f"its manifest records {manifest.num_observations}"
        )
    return problems
