"""Baseline (solo) measurement collection (paper, Section IV-B3).

"Initial baseline tests were run that measured each application's execution
without co-location across six P-state frequencies" — this module runs the
flat profiler on every application at every P-state of a machine and indexes
the resulting profiles by (application, frequency).

Baselines are measured *without* noise by default: they are the reference
the models and the normalized-time reports divide by.  Pass an ``rng`` to
model noisy baseline profiling instead (used by robustness tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..counters.hpcrun import FlatProfile, flat_profile_from_run, hpcrun_flat
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec
from .parallel import map_scenario_batches, map_scenarios, spawn_streams

__all__ = ["BaselineTable", "collect_baselines"]


@dataclass
class BaselineTable:
    """Solo profiles indexed by application name and P-state frequency."""

    processor_name: str
    profiles: dict[tuple[str, float], FlatProfile] = field(default_factory=dict)

    @staticmethod
    def _key(app_name: str, frequency_ghz: float) -> tuple[str, float]:
        return (app_name, round(float(frequency_ghz), 6))

    def add(self, profile: FlatProfile) -> None:
        """Index one baseline profile (duplicates are rejected)."""
        if profile.processor_name != self.processor_name:
            raise ValueError(
                f"profile from {profile.processor_name!r} in a "
                f"{self.processor_name!r} table"
            )
        key = self._key(profile.app_name, profile.frequency_ghz)
        if key in self.profiles:
            raise ValueError(f"duplicate baseline for {key}")
        self.profiles[key] = profile

    def get(self, app_name: str, frequency_ghz: float) -> FlatProfile:
        """Baseline profile of one app at one P-state."""
        key = self._key(app_name, frequency_ghz)
        try:
            return self.profiles[key]
        except KeyError:
            raise KeyError(
                f"no baseline for {app_name!r} at {frequency_ghz} GHz on "
                f"{self.processor_name}"
            ) from None

    def base_ex_times(self, app_name: str) -> dict[float, float]:
        """baseExTime at all measured P-states (Table I's first feature)."""
        out = {
            freq: p.wall_time_s
            for (name, freq), p in self.profiles.items()
            if name == app_name
        }
        if not out:
            raise KeyError(f"no baselines recorded for {app_name!r}")
        return dict(sorted(out.items(), reverse=True))

    def app_names(self) -> list[str]:
        """Distinct applications with baselines, sorted."""
        return sorted({name for (name, _freq) in self.profiles})


def _profile_scenario(engine: SimulationEngine, payload) -> FlatProfile:
    """One solo profiling run (module-level so worker processes can pickle it)."""
    app, pstate, rng = payload
    return hpcrun_flat(engine, app, pstate=pstate, rng=rng)


def _profile_scenario_batch(
    engine: SimulationEngine, payloads
) -> list[FlatProfile]:
    """Batched counterpart of :func:`_profile_scenario` (one stacked solve)."""
    runs = engine.run_batch(
        [(app, (), pstate, rng) for app, pstate, rng in payloads]
    )
    return [
        flat_profile_from_run(app, run)
        for (app, _pstate, _rng), run in zip(payloads, runs)
    ]


def collect_baselines(
    engine: SimulationEngine,
    apps: list[ApplicationSpec] | tuple[ApplicationSpec, ...],
    *,
    rng: np.random.Generator | None = None,
    workers: int = 1,
    batch_solve: bool = True,
) -> BaselineTable:
    """Profile every application solo at every P-state of the machine.

    ``workers > 1`` fans the (application, P-state) grid out across a
    process pool.  When an ``rng`` is given, each run draws its noise from
    its own child stream spawned from ``rng`` (keyed by grid index), so
    the table is identical for any worker count.  ``batch_solve=False``
    falls back from the stacked steady-state solver to the serial
    per-scenario path; the table is bit-identical either way.
    """
    pairs = [
        (app, pstate) for app in apps for pstate in engine.processor.pstates
    ]
    streams: list = (
        spawn_streams(rng, len(pairs)) if rng is not None else [None] * len(pairs)
    )
    payloads = [(app, pstate, s) for (app, pstate), s in zip(pairs, streams)]
    if batch_solve:
        profiles = map_scenario_batches(
            engine, _profile_scenario_batch, payloads, workers=workers
        )
    else:
        profiles = map_scenarios(
            engine, _profile_scenario, payloads, workers=workers
        )
    table = BaselineTable(processor_name=engine.processor.name)
    for profile in profiles:
        table.add(profile)
    return table
