"""Model persistence: save and load trained predictors as JSON.

A resource manager trains once per machine and then predicts for the
machine's lifetime; the trained artifact must survive process restarts.
This module serializes the two model families (the
:class:`~repro.core.methodology.PerformancePredictor` wrapper and the
:class:`~repro.core.ensemble.EnsemblePredictor` bootstrap ensemble) to
plain JSON — no pickling, so artifacts are portable, diffable, and safe to
load from untrusted storage.

The format is versioned: version 1 held a single predictor; version 2 adds
an ``artifact`` discriminator (``"predictor"`` or ``"ensemble"``) so the
model registry can serve uncertainty intervals.  Writers emit version 2;
loaders accept both.  Unknown versions and malformed payloads are rejected
with descriptive errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .ensemble import EnsemblePredictor
from .feature_sets import FeatureSet
from .linear import LinearModel
from .methodology import ModelKind, PerformancePredictor
from .neural import NeuralNetworkModel

__all__ = [
    "PersistenceError",
    "save_predictor",
    "load_predictor",
    "save_ensemble",
    "load_ensemble",
    "save_artifact",
    "load_artifact",
    "predictor_to_dict",
    "predictor_from_dict",
    "ensemble_to_dict",
    "ensemble_from_dict",
    "artifact_to_dict",
    "artifact_from_dict",
]

FORMAT_VERSION = 2

#: Versions this build can read.
READABLE_VERSIONS = (1, 2)


class PersistenceError(ValueError):
    """Raised for malformed or incompatible model payloads."""


def _array(value: Any, name: str) -> np.ndarray:
    try:
        return np.asarray(value, dtype=float)
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"field {name!r} is not numeric") from exc


def _linear_to_dict(model: LinearModel) -> dict:
    if not model.is_fitted:
        raise PersistenceError("cannot serialize an unfitted linear model")
    return {
        "weights": model._weights.tolist(),
        "bias": model._bias,
        "mean": model._mean.tolist(),
        "scale": model._scale.tolist(),
    }


def _linear_from_dict(data: dict) -> LinearModel:
    model = LinearModel()
    model._weights = _array(data["weights"], "weights")
    model._bias = float(data["bias"])
    model._mean = _array(data["mean"], "mean")
    model._scale = _array(data["scale"], "scale")
    if not (
        model._weights.shape == model._mean.shape == model._scale.shape
    ) or model._weights.ndim != 1:
        raise PersistenceError("inconsistent linear model shapes")
    return model


def _neural_to_dict(model: NeuralNetworkModel) -> dict:
    if not model.is_fitted:
        raise PersistenceError("cannot serialize an unfitted neural model")
    d, h = model._shapes  # type: ignore[misc]
    return {
        "inputs": d,
        "hidden": h,
        "params": model._params.tolist(),
        "x_mean": model._x_mean.tolist(),
        "x_scale": model._x_scale.tolist(),
        "y_mean": model._y_mean,
        "y_scale": model._y_scale,
        "l2": model.l2,
    }


def _neural_from_dict(data: dict) -> NeuralNetworkModel:
    d, h = int(data["inputs"]), int(data["hidden"])
    if d < 1 or h < 1:
        raise PersistenceError("invalid network shape")
    model = NeuralNetworkModel(hidden_units=h, l2=float(data.get("l2", 0.0)))
    params = _array(data["params"], "params")
    expected = d * h + h + h + 1
    if params.shape != (expected,):
        raise PersistenceError(
            f"parameter vector has {params.size} entries; expected {expected}"
        )
    model._shapes = (d, h)
    model._params = params
    model._x_mean = _array(data["x_mean"], "x_mean")
    model._x_scale = _array(data["x_scale"], "x_scale")
    if model._x_mean.shape != (d,) or model._x_scale.shape != (d,):
        raise PersistenceError("input standardization shape mismatch")
    model._y_mean = float(data["y_mean"])
    model._y_scale = float(data["y_scale"])
    return model


def _model_to_dict(model: Any) -> dict:
    if isinstance(model, LinearModel):
        return _linear_to_dict(model)
    if isinstance(model, NeuralNetworkModel):
        return _neural_to_dict(model)
    raise PersistenceError(  # pragma: no cover - no other kinds exist
        f"unsupported model type {type(model).__name__}"
    )


def _model_from_dict(
    kind: ModelKind, feature_set: FeatureSet, payload: dict
) -> LinearModel | NeuralNetworkModel:
    if kind is ModelKind.LINEAR:
        return _linear_from_dict(payload)
    model = _neural_from_dict(payload)
    expected_inputs = len(feature_set.features)
    if model._shapes[0] != expected_inputs:
        raise PersistenceError(
            f"network expects {model._shapes[0]} inputs but feature set "
            f"{feature_set.value} has {expected_inputs}"
        )
    return model


def _check_version(data: dict) -> int:
    try:
        version = int(data["format_version"])
    except (KeyError, TypeError, ValueError):
        raise PersistenceError("missing or invalid format_version") from None
    if version not in READABLE_VERSIONS:
        readable = "/".join(str(v) for v in READABLE_VERSIONS)
        raise PersistenceError(
            f"unsupported format version {version}; this build reads "
            f"{readable}"
        )
    return version


def _artifact_kind(data: dict, version: int) -> str:
    """The payload's artifact discriminator; v1 payloads are predictors."""
    if version == 1:
        return "predictor"
    artifact = data.get("artifact")
    if artifact not in ("predictor", "ensemble"):
        raise PersistenceError(
            f"format version {version} payload has unknown artifact kind "
            f"{artifact!r}; expected 'predictor' or 'ensemble'"
        )
    return artifact


def _common_header(data: dict) -> tuple[ModelKind, FeatureSet]:
    try:
        return ModelKind(data["kind"]), FeatureSet(data["feature_set"])
    except (KeyError, ValueError) as exc:
        raise PersistenceError(f"malformed predictor payload: {exc}") from None


def _train_size(data: dict) -> int | None:
    value = data.get("train_size")
    return int(value) if value is not None else None


def predictor_to_dict(predictor: PerformancePredictor) -> dict:
    """Serialize a fitted predictor to a JSON-ready dict."""
    if not predictor.is_fitted:
        raise PersistenceError("cannot serialize an unfitted predictor")
    return {
        "format_version": FORMAT_VERSION,
        "artifact": "predictor",
        "kind": predictor.kind.value,
        "feature_set": predictor.feature_set.value,
        "processor_name": predictor.processor_name,
        "train_size": predictor.train_size,
        "model": _model_to_dict(predictor._model),
    }


def predictor_from_dict(data: dict) -> PerformancePredictor:
    """Rebuild a fitted predictor from :func:`predictor_to_dict` output.

    Accepts both format versions; rejects ensemble payloads (use
    :func:`ensemble_from_dict` or :func:`artifact_from_dict` for those).
    """
    version = _check_version(data)
    if _artifact_kind(data, version) != "predictor":
        raise PersistenceError(
            "payload holds an ensemble, not a single predictor; load it "
            "with load_ensemble/load_artifact"
        )
    kind, feature_set = _common_header(data)
    try:
        payload = data["model"]
    except KeyError as exc:
        raise PersistenceError(f"malformed predictor payload: {exc}") from None
    predictor = PerformancePredictor(kind, feature_set)
    predictor._model = _model_from_dict(kind, feature_set, payload)
    processor = data.get("processor_name")
    predictor._processor_name = str(processor) if processor is not None else None
    predictor._train_size = _train_size(data)
    return predictor


def ensemble_to_dict(ensemble: EnsemblePredictor) -> dict:
    """Serialize a fitted bootstrap ensemble to a JSON-ready dict."""
    if not ensemble.is_fitted:
        raise PersistenceError("cannot serialize an unfitted ensemble")
    return {
        "format_version": FORMAT_VERSION,
        "artifact": "ensemble",
        "kind": ensemble.kind.value,
        "feature_set": ensemble.feature_set.value,
        "processor_name": ensemble.processor_name,
        "train_size": ensemble.train_size,
        "members": [_model_to_dict(m) for m in ensemble._members],
    }


def ensemble_from_dict(data: dict) -> EnsemblePredictor:
    """Rebuild a fitted ensemble from :func:`ensemble_to_dict` output."""
    version = _check_version(data)
    if _artifact_kind(data, version) != "ensemble":
        raise PersistenceError(
            "payload holds a single predictor, not an ensemble; load it "
            "with load_predictor/load_artifact"
        )
    kind, feature_set = _common_header(data)
    payloads = data.get("members")
    if not isinstance(payloads, list) or len(payloads) < 2:
        raise PersistenceError(
            "ensemble payload needs a 'members' list of at least two models"
        )
    ensemble = EnsemblePredictor(kind, feature_set, n_members=len(payloads))
    ensemble._members = [
        _model_from_dict(kind, feature_set, p) for p in payloads
    ]
    processor = data.get("processor_name")
    ensemble._processor_name = str(processor) if processor is not None else None
    ensemble._train_size = _train_size(data)
    return ensemble


def artifact_to_dict(
    artifact: PerformancePredictor | EnsemblePredictor,
) -> dict:
    """Serialize either artifact kind (dispatches on type)."""
    if isinstance(artifact, EnsemblePredictor):
        return ensemble_to_dict(artifact)
    if isinstance(artifact, PerformancePredictor):
        return predictor_to_dict(artifact)
    raise PersistenceError(
        f"cannot serialize a {type(artifact).__name__}; expected a "
        f"PerformancePredictor or EnsemblePredictor"
    )


def artifact_from_dict(data: dict) -> PerformancePredictor | EnsemblePredictor:
    """Rebuild whichever artifact kind the payload holds."""
    version = _check_version(data)
    if _artifact_kind(data, version) == "ensemble":
        return ensemble_from_dict(data)
    return predictor_from_dict(data)


def _load_json(path: str | Path) -> dict:
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise PersistenceError("artifact payload must be a JSON object")
    return data


def save_predictor(predictor: PerformancePredictor, path: str | Path) -> None:
    """Write a fitted predictor to a JSON file."""
    Path(path).write_text(json.dumps(predictor_to_dict(predictor), indent=2))


def load_predictor(path: str | Path) -> PerformancePredictor:
    """Read a predictor written by :func:`save_predictor`."""
    return predictor_from_dict(_load_json(path))


def save_ensemble(ensemble: EnsemblePredictor, path: str | Path) -> None:
    """Write a fitted ensemble to a JSON file."""
    Path(path).write_text(json.dumps(ensemble_to_dict(ensemble), indent=2))


def load_ensemble(path: str | Path) -> EnsemblePredictor:
    """Read an ensemble written by :func:`save_ensemble`."""
    return ensemble_from_dict(_load_json(path))


def save_artifact(
    artifact: PerformancePredictor | EnsemblePredictor, path: str | Path
) -> None:
    """Write either artifact kind to a JSON file."""
    Path(path).write_text(json.dumps(artifact_to_dict(artifact), indent=2))


def load_artifact(path: str | Path) -> PerformancePredictor | EnsemblePredictor:
    """Read either artifact kind from a JSON file."""
    return artifact_from_dict(_load_json(path))
