"""Model persistence: save and load trained predictors as JSON.

A resource manager trains once per machine and then predicts for the
machine's lifetime; the trained artifact must survive process restarts.
This module serializes the two model families (and the
:class:`~repro.core.methodology.PerformancePredictor` wrapper) to plain
JSON — no pickling, so artifacts are portable, diffable, and safe to load
from untrusted storage.

The format is versioned; loading rejects unknown versions and malformed
payloads with descriptive errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .feature_sets import FeatureSet
from .linear import LinearModel
from .methodology import ModelKind, PerformancePredictor
from .neural import NeuralNetworkModel

__all__ = [
    "PersistenceError",
    "save_predictor",
    "load_predictor",
    "predictor_to_dict",
    "predictor_from_dict",
]

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Raised for malformed or incompatible model payloads."""


def _array(value: Any, name: str) -> np.ndarray:
    try:
        return np.asarray(value, dtype=float)
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"field {name!r} is not numeric") from exc


def _linear_to_dict(model: LinearModel) -> dict:
    if not model.is_fitted:
        raise PersistenceError("cannot serialize an unfitted linear model")
    return {
        "weights": model._weights.tolist(),
        "bias": model._bias,
        "mean": model._mean.tolist(),
        "scale": model._scale.tolist(),
    }


def _linear_from_dict(data: dict) -> LinearModel:
    model = LinearModel()
    model._weights = _array(data["weights"], "weights")
    model._bias = float(data["bias"])
    model._mean = _array(data["mean"], "mean")
    model._scale = _array(data["scale"], "scale")
    if not (
        model._weights.shape == model._mean.shape == model._scale.shape
    ) or model._weights.ndim != 1:
        raise PersistenceError("inconsistent linear model shapes")
    return model


def _neural_to_dict(model: NeuralNetworkModel) -> dict:
    if not model.is_fitted:
        raise PersistenceError("cannot serialize an unfitted neural model")
    d, h = model._shapes  # type: ignore[misc]
    return {
        "inputs": d,
        "hidden": h,
        "params": model._params.tolist(),
        "x_mean": model._x_mean.tolist(),
        "x_scale": model._x_scale.tolist(),
        "y_mean": model._y_mean,
        "y_scale": model._y_scale,
        "l2": model.l2,
    }


def _neural_from_dict(data: dict) -> NeuralNetworkModel:
    d, h = int(data["inputs"]), int(data["hidden"])
    if d < 1 or h < 1:
        raise PersistenceError("invalid network shape")
    model = NeuralNetworkModel(hidden_units=h, l2=float(data.get("l2", 0.0)))
    params = _array(data["params"], "params")
    expected = d * h + h + h + 1
    if params.shape != (expected,):
        raise PersistenceError(
            f"parameter vector has {params.size} entries; expected {expected}"
        )
    model._shapes = (d, h)
    model._params = params
    model._x_mean = _array(data["x_mean"], "x_mean")
    model._x_scale = _array(data["x_scale"], "x_scale")
    if model._x_mean.shape != (d,) or model._x_scale.shape != (d,):
        raise PersistenceError("input standardization shape mismatch")
    model._y_mean = float(data["y_mean"])
    model._y_scale = float(data["y_scale"])
    return model


def predictor_to_dict(predictor: PerformancePredictor) -> dict:
    """Serialize a fitted predictor to a JSON-ready dict."""
    if not predictor.is_fitted:
        raise PersistenceError("cannot serialize an unfitted predictor")
    model = predictor._model
    if isinstance(model, LinearModel):
        payload = _linear_to_dict(model)
    elif isinstance(model, NeuralNetworkModel):
        payload = _neural_to_dict(model)
    else:  # pragma: no cover - no other kinds exist
        raise PersistenceError(f"unsupported model type {type(model).__name__}")
    return {
        "format_version": FORMAT_VERSION,
        "kind": predictor.kind.value,
        "feature_set": predictor.feature_set.value,
        "processor_name": predictor.processor_name,
        "model": payload,
    }


def predictor_from_dict(data: dict) -> PerformancePredictor:
    """Rebuild a fitted predictor from :func:`predictor_to_dict` output."""
    try:
        version = int(data["format_version"])
    except (KeyError, TypeError, ValueError):
        raise PersistenceError("missing or invalid format_version") from None
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {version}; this build reads "
            f"{FORMAT_VERSION}"
        )
    try:
        kind = ModelKind(data["kind"])
        feature_set = FeatureSet(data["feature_set"])
        payload = data["model"]
    except (KeyError, ValueError) as exc:
        raise PersistenceError(f"malformed predictor payload: {exc}") from None
    predictor = PerformancePredictor(kind, feature_set)
    if kind is ModelKind.LINEAR:
        predictor._model = _linear_from_dict(payload)
    else:
        model = _neural_from_dict(payload)
        expected_inputs = len(feature_set.features)
        if model._shapes[0] != expected_inputs:
            raise PersistenceError(
                f"network expects {model._shapes[0]} inputs but feature set "
                f"{feature_set.value} has {expected_inputs}"
            )
        predictor._model = model
    processor = data.get("processor_name")
    predictor._processor_name = str(processor) if processor is not None else None
    return predictor


def save_predictor(predictor: PerformancePredictor, path: str | Path) -> None:
    """Write a fitted predictor to a JSON file."""
    Path(path).write_text(json.dumps(predictor_to_dict(predictor), indent=2))


def load_predictor(path: str | Path) -> PerformancePredictor:
    """Read a predictor written by :func:`save_predictor`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"not valid JSON: {exc}") from None
    return predictor_from_dict(data)
