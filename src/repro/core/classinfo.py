"""Class-level prediction: using memory intensity classes as features.

Paper, Section IV-B1: "Should a system developer not have detailed memory
intensity information about the applications running in the system, but
still has a general idea of how memory intensive the applications might
be, then having application class values will allow the developer to still
be able to use the model ... by running the model with average values for
that application's class."

This module implements that degraded-information mode: given only the
*class* of each co-located application (I–IV) instead of its measured
baseline profile, substitute the class-representative feature values and
predict with the ordinary trained models.  The class-representative cache
ratios are estimated from whichever applications of that class appear in
the machine's baseline table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.classes import (
    MemoryIntensityClass,
    class_representative_intensity,
    classify_intensity,
)
from ..counters.hpcrun import FlatProfile
from ..counters.papi import PresetEvent
from .methodology import PerformancePredictor

__all__ = ["ClassProfiles", "predict_time_from_classes"]


@dataclass(frozen=True)
class ClassProfiles:
    """Per-class representative counter ratios for one machine.

    Built from a set of baseline profiles; each class's representative
    memory intensity, CM/CA and CA/INS are the means over the profiled
    applications that fall in that class.  Classes with no profiled
    member fall back to the global class-representative intensity and the
    all-app mean ratios.
    """

    intensity: dict[MemoryIntensityClass, float]
    cm_per_ca: dict[MemoryIntensityClass, float]
    ca_per_ins: dict[MemoryIntensityClass, float]

    @classmethod
    def from_profiles(cls, profiles: list[FlatProfile]) -> "ClassProfiles":
        """Estimate class representatives from baseline profiles."""
        if not profiles:
            raise ValueError("need at least one baseline profile")
        by_class: dict[MemoryIntensityClass, list[FlatProfile]] = {
            c: [] for c in MemoryIntensityClass
        }
        for p in profiles:
            by_class[classify_intensity(p.memory_intensity)].append(p)
        global_cm_ca = float(np.mean([p.cm_per_ca for p in profiles]))
        global_ca_ins = float(np.mean([p.ca_per_ins for p in profiles]))
        intensity: dict[MemoryIntensityClass, float] = {}
        cm_per_ca: dict[MemoryIntensityClass, float] = {}
        ca_per_ins: dict[MemoryIntensityClass, float] = {}
        for c, members in by_class.items():
            if members:
                intensity[c] = float(np.mean([p.memory_intensity for p in members]))
                cm_per_ca[c] = float(np.mean([p.cm_per_ca for p in members]))
                ca_per_ins[c] = float(np.mean([p.ca_per_ins for p in members]))
            else:
                intensity[c] = class_representative_intensity(c)
                cm_per_ca[c] = global_cm_ca
                ca_per_ins[c] = global_ca_ins
        return cls(intensity=intensity, cm_per_ca=cm_per_ca, ca_per_ins=ca_per_ins)

    def synthetic_profile(
        self, template: FlatProfile, cls_: MemoryIntensityClass
    ) -> FlatProfile:
        """A stand-in baseline profile carrying class-average ratios.

        The template supplies machine/frequency metadata and a nominal
        instruction count; counter totals are chosen so the derived ratios
        equal the class representatives.
        """
        instructions = template.instructions
        accesses = instructions * self.ca_per_ins[cls_]
        misses = instructions * self.intensity[cls_]
        # Only two of (intensity, CA/INS, CM/CA) can be imposed on one
        # consistent counter triple; intensity and CA/INS are imposed, so
        # the implied CM/CA is intensity / CA/INS rather than the class
        # mean — the small discrepancy is part of the information loss
        # this degraded mode models.
        return FlatProfile(
            app_name=f"<class {cls_.roman}>",
            processor_name=template.processor_name,
            frequency_ghz=template.frequency_ghz,
            wall_time_s=template.wall_time_s,
            counts={
                PresetEvent.PAPI_TOT_INS.value: instructions,
                PresetEvent.PAPI_L3_TCA.value: accesses,
                PresetEvent.PAPI_L3_TCM.value: misses,
            },
        )


def predict_time_from_classes(
    predictor: PerformancePredictor,
    class_profiles: ClassProfiles,
    target_baseline: FlatProfile,
    co_app_classes: list[MemoryIntensityClass],
) -> float:
    """Predict co-located execution time knowing only co-runner classes.

    The target's own baseline is still required (the resource manager is
    deciding where to put *this* job); the co-runners are described only
    by their memory intensity class.
    """
    co_baselines = [
        class_profiles.synthetic_profile(target_baseline, c) for c in co_app_classes
    ]
    return predictor.predict_time(target_baseline, co_baselines)
