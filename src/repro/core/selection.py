"""Greedy forward feature selection.

Table II's sets are hand-designed around what a resource manager learns
first.  Forward selection asks the data the same question: starting from
nothing, repeatedly add whichever feature reduces the cross-validated MPE
most.  The resulting order is a data-driven counterpart to Table II —
``bench_ablation_feature_order.py`` compares the two and checks the paper's
"co-app cache information matters most" conclusion a different way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .feature_sets import FeatureSet
from .features import CoLocationObservation, Feature, feature_matrix
from .validation import RegressionModel, repeated_random_subsampling

__all__ = ["SelectionStep", "forward_selection", "rank_feature_sets"]


@dataclass(frozen=True)
class SelectionStep:
    """One round of forward selection."""

    added: Feature
    selected: tuple[Feature, ...]
    test_mpe: float


def forward_selection(
    make_model: Callable[[], RegressionModel],
    observations: list[CoLocationObservation],
    *,
    candidates: tuple[Feature, ...] = tuple(Feature),
    max_features: int | None = None,
    repetitions: int = 10,
    test_fraction: float = 0.3,
    rng: np.random.Generator | None = None,
    workers: int = 1,
) -> list[SelectionStep]:
    """Greedily grow a feature set by cross-validated MPE.

    Parameters
    ----------
    make_model:
        Fresh-model factory (same protocol as the validator).  The model
        is refit many times — ``O(max_features * |candidates| *
        repetitions)`` fits — but ``workers=N`` amortizes the cost by
        fanning each candidate's repetitions across a process pool, which
        makes even neural selection at full repetitions practical;
        neural factories should also enable ``batched_restarts``.
    observations:
        The dataset searched over.
    candidates:
        Features considered (defaults to all of Table I).
    max_features:
        Stop after this many features (default: all candidates).
    repetitions, test_fraction:
        Passed to the repeated random sub-sampling used to score each
        candidate set.
    rng:
        Split randomness; each candidate evaluation gets a child stream so
        scores are comparable within a round.
    workers:
        Process-pool width for each candidate's validation sweep; scores
        are bit-identical to ``workers=1`` (picklable factories only).

    Returns
    -------
    One :class:`SelectionStep` per round, in selection order.  Selection
    is *not* stopped early when the error plateaus — the full trajectory
    is the interesting output.
    """
    if not candidates:
        raise ValueError("need at least one candidate feature")
    if max_features is None:
        max_features = len(candidates)
    if not 1 <= max_features <= len(candidates):
        raise ValueError(
            f"max_features must be in [1, {len(candidates)}], got {max_features}"
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)

    remaining = list(candidates)
    selected: list[Feature] = []
    steps: list[SelectionStep] = []
    for _round in range(max_features):
        scores = []
        seeds = rng.integers(0, 2**31, size=len(remaining))
        for candidate, seed in zip(remaining, seeds):
            trial = tuple(selected) + (candidate,)
            X, y = feature_matrix(observations, trial)
            result = repeated_random_subsampling(
                make_model,
                X,
                y,
                test_fraction=test_fraction,
                repetitions=repetitions,
                rng=np.random.default_rng(int(seed)),
                workers=workers,
            )
            scores.append(result.mean_test_mpe)
        best_idx = int(np.argmin(scores))
        best = remaining.pop(best_idx)
        selected.append(best)
        steps.append(
            SelectionStep(
                added=best,
                selected=tuple(selected),
                test_mpe=float(scores[best_idx]),
            )
        )
    return steps


def rank_feature_sets(
    make_model: Callable[[], RegressionModel],
    observations: list[CoLocationObservation],
    *,
    feature_sets: tuple[FeatureSet, ...] = tuple(FeatureSet),
    repetitions: int = 10,
    test_fraction: float = 0.3,
    rng: np.random.Generator | None = None,
    workers: int = 1,
) -> list[tuple[FeatureSet, float]]:
    """Rank Table II's feature sets by cross-validated test MPE.

    The whole-set counterpart of :func:`forward_selection`: instead of
    growing a set feature-by-feature, score each predefined set with
    repeated random sub-sampling and sort ascending by mean test MPE.
    Each set gets a child seed drawn from ``rng`` in ``feature_sets``
    order, so the ranking is deterministic and ``workers`` only changes
    wall time (one validation sweep per set fans its repetitions across
    the pool, same contract as the validator).

    Returns ``(feature_set, mean_test_mpe)`` pairs, best first; ties keep
    ``feature_sets`` order (`sorted` is stable).
    """
    if not feature_sets:
        raise ValueError("need at least one feature set to rank")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)

    seeds = rng.integers(0, 2**31, size=len(feature_sets))
    scored = []
    for fs, seed in zip(feature_sets, seeds):
        X, y = feature_matrix(observations, fs.features)
        result = repeated_random_subsampling(
            make_model,
            X,
            y,
            test_fraction=test_fraction,
            repetitions=repetitions,
            rng=np.random.default_rng(int(seed)),
            workers=workers,
        )
        scored.append((fs, result.mean_test_mpe))
    return sorted(scored, key=lambda pair: pair[1])
