"""Greedy forward feature selection.

Table II's sets are hand-designed around what a resource manager learns
first.  Forward selection asks the data the same question: starting from
nothing, repeatedly add whichever feature reduces the cross-validated MPE
most.  The resulting order is a data-driven counterpart to Table II —
``bench_ablation_feature_order.py`` compares the two and checks the paper's
"co-app cache information matters most" conclusion a different way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .features import CoLocationObservation, Feature, feature_matrix
from .validation import RegressionModel, repeated_random_subsampling

__all__ = ["SelectionStep", "forward_selection"]


@dataclass(frozen=True)
class SelectionStep:
    """One round of forward selection."""

    added: Feature
    selected: tuple[Feature, ...]
    test_mpe: float


def forward_selection(
    make_model: Callable[[], RegressionModel],
    observations: list[CoLocationObservation],
    *,
    candidates: tuple[Feature, ...] = tuple(Feature),
    max_features: int | None = None,
    repetitions: int = 10,
    test_fraction: float = 0.3,
    rng: np.random.Generator | None = None,
) -> list[SelectionStep]:
    """Greedily grow a feature set by cross-validated MPE.

    Parameters
    ----------
    make_model:
        Fresh-model factory (same protocol as the validator).  Note the
        model is refit many times — ``O(max_features * |candidates| *
        repetitions)`` fits — so cheap models (linear) or reduced
        repetitions are advisable for the neural family.
    observations:
        The dataset searched over.
    candidates:
        Features considered (defaults to all of Table I).
    max_features:
        Stop after this many features (default: all candidates).
    repetitions, test_fraction:
        Passed to the repeated random sub-sampling used to score each
        candidate set.
    rng:
        Split randomness; each candidate evaluation gets a child stream so
        scores are comparable within a round.

    Returns
    -------
    One :class:`SelectionStep` per round, in selection order.  Selection
    is *not* stopped early when the error plateaus — the full trajectory
    is the interesting output.
    """
    if not candidates:
        raise ValueError("need at least one candidate feature")
    if max_features is None:
        max_features = len(candidates)
    if not 1 <= max_features <= len(candidates):
        raise ValueError(
            f"max_features must be in [1, {len(candidates)}], got {max_features}"
        )
    if rng is None:
        rng = np.random.default_rng(0)

    remaining = list(candidates)
    selected: list[Feature] = []
    steps: list[SelectionStep] = []
    for _round in range(max_features):
        scores = []
        seeds = rng.integers(0, 2**31, size=len(remaining))
        for candidate, seed in zip(remaining, seeds):
            trial = tuple(selected) + (candidate,)
            X, y = feature_matrix(observations, trial)
            result = repeated_random_subsampling(
                make_model,
                X,
                y,
                test_fraction=test_fraction,
                repetitions=repetitions,
                rng=np.random.default_rng(int(seed)),
            )
            scores.append(result.mean_test_mpe)
        best_idx = int(np.argmin(scores))
        best = remaining.pop(best_idx)
        selected.append(best)
        steps.append(
            SelectionStep(
                added=best,
                selected=tuple(selected),
                test_mpe=float(scores[best_idx]),
            )
        )
    return steps
