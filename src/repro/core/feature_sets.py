"""Model feature sets A–F (paper, Table II).

Six nested feature groups, from the baseline-only model A to the full
eight-feature model F.  The progression "simulates a realistic process
where the resource management system progressively obtains more detailed
information about the system and the executing applications"
(Section III-B).
"""

from __future__ import annotations

import enum

from .features import Feature

__all__ = ["FeatureSet", "FEATURE_SETS", "features_for"]


class FeatureSet(enum.Enum):
    """The six model variants of Table II, in increasing information order."""

    A = "A"
    B = "B"
    C = "C"
    D = "D"
    E = "E"
    F = "F"

    @property
    def features(self) -> tuple[Feature, ...]:
        """The Table I features this set uses."""
        return FEATURE_SETS[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Table II: each set adds features to the previous one.
FEATURE_SETS: dict[FeatureSet, tuple[Feature, ...]] = {
    FeatureSet.A: (Feature.BASE_EX_TIME,),
    FeatureSet.B: (Feature.BASE_EX_TIME, Feature.NUM_CO_APP),
    FeatureSet.C: (
        Feature.BASE_EX_TIME,
        Feature.NUM_CO_APP,
        Feature.CO_APP_MEM,
    ),
    FeatureSet.D: (
        Feature.BASE_EX_TIME,
        Feature.NUM_CO_APP,
        Feature.CO_APP_MEM,
        Feature.TARGET_MEM,
    ),
    FeatureSet.E: (
        Feature.BASE_EX_TIME,
        Feature.NUM_CO_APP,
        Feature.CO_APP_MEM,
        Feature.TARGET_MEM,
        Feature.CO_APP_CM_CA,
        Feature.CO_APP_CA_INS,
    ),
    FeatureSet.F: (
        Feature.BASE_EX_TIME,
        Feature.NUM_CO_APP,
        Feature.CO_APP_MEM,
        Feature.TARGET_MEM,
        Feature.CO_APP_CM_CA,
        Feature.CO_APP_CA_INS,
        Feature.TARGET_CM_CA,
        Feature.TARGET_CA_INS,
    ),
}


def features_for(feature_set: FeatureSet | str) -> tuple[Feature, ...]:
    """Features for a set given as enum or letter ("a".."f", any case)."""
    if isinstance(feature_set, str):
        try:
            feature_set = FeatureSet(feature_set.strip().upper())
        except ValueError:
            raise ValueError(
                f"unknown feature set {feature_set!r}; expected A..F"
            ) from None
    return FEATURE_SETS[feature_set]
