"""Permutation feature importance for trained models.

The paper infers feature importance twice: from PCA variance ranking
(Section III-B, pre-training) and from the MPE drop as feature sets grow
(Section V, across models).  Permutation importance gives a third,
post-hoc view on a *single* trained model: shuffle one feature column
across the evaluation set and measure how much the model's error grows.
A feature the model leans on hurts a lot when scrambled; a feature it
ignores changes nothing.

Used by the feature-importance bench to confirm the paper's conclusion —
the co-located applications' cache-use features carry the signal — holds
within one trained model, not just across the model grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .features import CoLocationObservation, Feature, feature_matrix
from .metrics import mpe
from .validation import RegressionModel

__all__ = ["FeatureImportance", "permutation_importance"]


@dataclass(frozen=True)
class FeatureImportance:
    """Importance of one feature for one trained model."""

    feature: Feature
    baseline_mpe: float
    permuted_mpe: float

    @property
    def mpe_increase(self) -> float:
        """Error added by scrambling the feature (percentage points)."""
        return self.permuted_mpe - self.baseline_mpe


def permutation_importance(
    model: RegressionModel,
    observations: list[CoLocationObservation],
    features: tuple[Feature, ...],
    *,
    repetitions: int = 10,
    rng: np.random.Generator | None = None,
) -> list[FeatureImportance]:
    """Measure per-feature permutation importance on an evaluation set.

    Parameters
    ----------
    model:
        A *fitted* model whose ``predict`` consumes exactly ``features``
        (in order).
    observations:
        Evaluation observations (ideally held out from training).
    features:
        The model's feature tuple, e.g. ``FeatureSet.F.features``.
    repetitions:
        Independent shuffles per feature; the permuted error is their
        mean (one shuffle is noisy on small sets).
    rng:
        Shuffle randomness.

    Returns
    -------
    Importances sorted most-important first (largest MPE increase).
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    if rng is None:
        rng = np.random.default_rng(0)
    X, y = feature_matrix(observations, features)
    baseline = mpe(model.predict(X), y)
    importances = []
    for j, feature in enumerate(features):
        errors = []
        for _ in range(repetitions):
            Xp = X.copy()
            Xp[:, j] = rng.permutation(Xp[:, j])
            errors.append(mpe(model.predict(Xp), y))
        importances.append(
            FeatureImportance(
                feature=feature,
                baseline_mpe=baseline,
                permuted_mpe=float(np.mean(errors)),
            )
        )
    return sorted(importances, key=lambda fi: fi.mpe_increase, reverse=True)
