"""The end-to-end modeling methodology (paper, Section III).

Ties the pieces together:

* :func:`make_model` — one of the paper's 12 models (2 techniques x 6
  feature sets);
* :func:`evaluate_models` — the Figures 1–4 evaluation: every model,
  repeated random sub-sampling, MPE + NRMSE on train and test partitions;
* :class:`PerformancePredictor` — the deployable artifact: a model trained
  on one machine's co-location data that predicts execution time for a
  *prospective* co-location from baseline profiles alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import partial

import numpy as np

from ..counters.hpcrun import FlatProfile
from .feature_sets import FeatureSet
from .features import CoLocationObservation, feature_matrix, feature_row
from .fitstats import FitStats
from .linear import LinearModel
from .neural import NeuralNetworkModel, default_hidden_units
from .validation import RegressionModel, ValidationResult, repeated_random_subsampling

__all__ = [
    "ModelKind",
    "ModelEvaluation",
    "PerformancePredictor",
    "evaluate_models",
    "make_model",
]


class ModelKind(enum.Enum):
    """The two machine-learning techniques of Section III."""

    LINEAR = "linear"
    NEURAL = "neural"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def make_model(
    kind: ModelKind,
    feature_set: FeatureSet,
    *,
    rng: np.random.Generator | None = None,
    batched_restarts: bool = False,
) -> RegressionModel:
    """Instantiate one unfitted model of the paper's 12-model grid.

    The neural variant sizes its hidden layer from the feature count
    (Section III-D's "ten to twenty nodes depending on the model feature
    set").  ``rng`` seeds the network initialization; linear models are
    deterministic and ignore it, as they do ``batched_restarts`` (the
    neural fast path; see :mod:`repro.core.neural`).
    """
    if kind is ModelKind.LINEAR:
        return LinearModel()
    n_features = len(feature_set.features)
    model = NeuralNetworkModel(
        hidden_units=default_hidden_units(n_features),
        batched_restarts=batched_restarts,
    )
    if rng is not None:
        # Bind the rng into fit so the validation protocol (fit(X, y))
        # stays uniform across model kinds.
        original_fit = model.fit

        def fit_with_rng(X: np.ndarray, y: np.ndarray) -> NeuralNetworkModel:
            return original_fit(X, y, rng=rng)

        model.fit = fit_with_rng  # type: ignore[method-assign]
    return model


@dataclass(frozen=True)
class ModelEvaluation:
    """One point of Figures 1–4: a (technique, feature set) pair's errors."""

    kind: ModelKind
    feature_set: FeatureSet
    result: ValidationResult

    @property
    def label(self) -> str:
        """Short identifier, e.g. ``"neural/F"``."""
        return f"{self.kind.value}/{self.feature_set.value}"


def evaluate_models(
    observations: list[CoLocationObservation],
    *,
    kinds: tuple[ModelKind, ...] = (ModelKind.LINEAR, ModelKind.NEURAL),
    feature_sets: tuple[FeatureSet, ...] = tuple(FeatureSet),
    repetitions: int = 100,
    test_fraction: float = 0.3,
    seed: int = 0,
    workers: int = 1,
    batched_restarts: bool = False,
    stats: FitStats | None = None,
) -> list[ModelEvaluation]:
    """Run the paper's full model evaluation over one machine's dataset.

    Returns one :class:`ModelEvaluation` per (kind, feature set) pair —
    twelve by default, matching Section V-A.  Each pair gets an
    independent, deterministic RNG stream (split permutations plus one
    spawned fit stream per repetition), so results do not depend on
    evaluation order or on ``workers`` — ``workers=N`` fans the
    repetitions across a process pool with bit-identical output.
    ``batched_restarts`` switches neural fits to the stacked multi-restart
    SCG fast path; ``stats`` (optional, shared) accumulates every fit's
    :class:`~repro.core.fitstats.FitStats`.
    """
    evaluations = []
    for kind in kinds:
        for fs in feature_sets:
            X, y = feature_matrix(observations, fs.features)
            rng = np.random.default_rng([seed, ord(kind.value[0]), ord(fs.value)])
            result = repeated_random_subsampling(
                partial(make_model, kind, fs, batched_restarts=batched_restarts),
                X,
                y,
                test_fraction=test_fraction,
                repetitions=repetitions,
                rng=rng,
                workers=workers,
                stats=stats,
            )
            evaluations.append(ModelEvaluation(kind=kind, feature_set=fs, result=result))
    return evaluations


class PerformancePredictor:
    """A trained co-location performance model for one machine.

    Train once on a machine's collected observations; then predict the
    co-located execution time of any prospective placement from baseline
    profiles only::

        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F)
        predictor.fit(observations)
        t = predictor.predict_time(target_baseline, co_app_baselines)
    """

    def __init__(
        self,
        kind: ModelKind = ModelKind.NEURAL,
        feature_set: FeatureSet = FeatureSet.F,
        *,
        seed: int = 0,
    ) -> None:
        self.kind = kind
        self.feature_set = feature_set
        self._rng = np.random.default_rng(seed)
        self._model: RegressionModel | None = None
        self._processor_name: str | None = None
        self._train_size: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called."""
        return self._model is not None

    @property
    def train_size(self) -> int | None:
        """Observations the predictor was fitted on (None before fitting
        or for artifacts loaded from disk without provenance)."""
        return self._train_size

    @property
    def processor_name(self) -> str | None:
        """Machine the predictor was trained for (None before fitting).

        A co-location model encodes one machine's contention behaviour
        (Section IV trains per machine); prediction methods reject
        baseline profiles measured on a different machine.
        """
        return self._processor_name

    def fit(self, observations: list[CoLocationObservation]) -> "PerformancePredictor":
        """Train on collected co-location observations (one machine's)."""
        machines = {obs.processor_name for obs in observations}
        if len(machines) > 1:
            raise ValueError(
                f"training data mixes machines {sorted(machines)}; the "
                f"methodology trains one model per machine"
            )
        X, y = feature_matrix(observations, self.feature_set.features)
        model = make_model(self.kind, self.feature_set, rng=self._rng)
        model.fit(X, y)
        self._model = model
        self._processor_name = next(iter(machines))
        self._train_size = len(observations)
        return self

    def _check_fitted(self) -> None:
        if self._model is None:
            raise RuntimeError("predictor is not fitted; call fit() first")

    def _check_machine(self, profiles: list[FlatProfile]) -> None:
        if self._processor_name is None:
            return  # loaded from disk without provenance; trust the caller
        for p in profiles:
            if p.processor_name != self._processor_name:
                raise ValueError(
                    f"profile of {p.app_name!r} is from "
                    f"{p.processor_name!r} but this predictor was trained "
                    f"on {self._processor_name!r}"
                )

    def predict_time(
        self,
        target_baseline: FlatProfile,
        co_app_baselines: list[FlatProfile],
    ) -> float:
        """Predicted co-located execution time, in seconds.

        ``target_baseline`` must be measured at the P-state the placement
        will run at (the baseExTime feature is per P-state) and, like the
        co-app baselines, on the machine the predictor was trained for.
        """
        self._check_fitted()
        self._check_machine([target_baseline] + list(co_app_baselines))
        row = feature_row(target_baseline, co_app_baselines, self.feature_set.features)
        return float(self._model.predict(row[None, :])[0])

    def predict_slowdown(
        self,
        target_baseline: FlatProfile,
        co_app_baselines: list[FlatProfile],
    ) -> float:
        """Predicted normalized execution time (>= ~1.0 for real contention)."""
        return self.predict_time(target_baseline, co_app_baselines) / target_baseline.wall_time_s

    def predict_observations(
        self, observations: list[CoLocationObservation]
    ) -> np.ndarray:
        """Vectorized prediction over labeled observations (for evaluation)."""
        self._check_fitted()
        X, _y = feature_matrix(observations, self.feature_set.features)
        return self._model.predict(X)

    def predict_rows(self, X: np.ndarray) -> np.ndarray:
        """Serving-path prediction over raw feature rows.

        ``X`` is ``(n, k)`` with columns in ``feature_set.features`` order.
        Uses the row-stable kernel, so the prediction for a row is
        bit-identical whether it is served alone or inside a micro-batch.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        expected = len(self.feature_set.features)
        if X.ndim != 2 or X.shape[1] != expected:
            raise ValueError(
                f"feature rows must be (n, {expected}) for set "
                f"{self.feature_set.value}; got {X.shape}"
            )
        return self._model.predict_stable(X)
