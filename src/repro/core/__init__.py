"""The paper's contribution: co-location aware performance modeling.

Features (Table I), feature sets (Table II), the linear and neural models
(Sections III-C/D), accuracy metrics (Section III-E), repeated random
sub-sampling validation (Section IV-B4), PCA feature ranking (Section
III-B), and the end-to-end methodology/predictor API.
"""

from .classinfo import ClassProfiles, predict_time_from_classes
from .ensemble import EnsemblePredictor, PredictionInterval
from .feature_sets import FEATURE_SETS, FeatureSet, features_for
from .fitstats import GLOBAL_FIT_STATS, FitStats
from .importance import FeatureImportance, permutation_importance
from .selection import SelectionStep, forward_selection, rank_feature_sets
from .features import (
    FEATURE_DESCRIPTIONS,
    CoLocationObservation,
    Feature,
    feature_matrix,
    feature_row,
    observation_from_profiles,
)
from .linear import LinearModel
from .methodology import (
    ModelEvaluation,
    ModelKind,
    PerformancePredictor,
    evaluate_models,
    make_model,
)
from .metrics import mae, mpe, nrmse, percent_errors, rmse
from .neural import NeuralNetworkModel, default_hidden_units
from .pca import PCA, rank_features
from .persistence import (
    PersistenceError,
    artifact_from_dict,
    artifact_to_dict,
    ensemble_from_dict,
    ensemble_to_dict,
    load_artifact,
    load_ensemble,
    load_predictor,
    predictor_from_dict,
    predictor_to_dict,
    save_artifact,
    save_ensemble,
    save_predictor,
)
from .scg import BatchedSCGResult, SCGResult, minimize_scg, minimize_scg_batched
from .validation import (
    GroupValidationResult,
    RegressionModel,
    ValidationResult,
    leave_one_group_out,
    repeated_random_subsampling,
)

__all__ = [
    "BatchedSCGResult",
    "ClassProfiles",
    "CoLocationObservation",
    "EnsemblePredictor",
    "FEATURE_DESCRIPTIONS",
    "FEATURE_SETS",
    "Feature",
    "FeatureImportance",
    "FeatureSet",
    "FitStats",
    "GLOBAL_FIT_STATS",
    "GroupValidationResult",
    "LinearModel",
    "ModelEvaluation",
    "ModelKind",
    "NeuralNetworkModel",
    "PCA",
    "PerformancePredictor",
    "PersistenceError",
    "PredictionInterval",
    "RegressionModel",
    "SCGResult",
    "SelectionStep",
    "ValidationResult",
    "artifact_from_dict",
    "artifact_to_dict",
    "default_hidden_units",
    "ensemble_from_dict",
    "ensemble_to_dict",
    "evaluate_models",
    "feature_matrix",
    "feature_row",
    "features_for",
    "forward_selection",
    "leave_one_group_out",
    "load_artifact",
    "load_ensemble",
    "load_predictor",
    "mae",
    "make_model",
    "minimize_scg",
    "minimize_scg_batched",
    "mpe",
    "nrmse",
    "observation_from_profiles",
    "percent_errors",
    "permutation_importance",
    "predict_time_from_classes",
    "predictor_from_dict",
    "predictor_to_dict",
    "rank_feature_sets",
    "rank_features",
    "repeated_random_subsampling",
    "rmse",
    "save_artifact",
    "save_ensemble",
    "save_predictor",
]
