"""Linear co-location performance model (paper, Section III-C, Eq. 1).

Predicts co-located execution time as a weighted sum of the features plus a
constant; coefficients come from linear least squares — the paper uses "the
linear least squares function in the Python package SciPy", and so do we
(:func:`scipy.linalg.lstsq`).

Features are standardized internally (zero mean, unit variance on the
training data) before the solve.  Standardization does not change the model
class — the composition is still affine in the raw features, and
:attr:`LinearModel.coefficients` / :attr:`LinearModel.intercept` report the
equivalent raw-feature Eq. 1 parameters — but it keeps the normal equations
well-conditioned when features differ by orders of magnitude (memory
intensities ~1e-6 next to execution times ~1e3).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["LinearModel"]


class LinearModel:
    """Eq. 1: ``time = sum_i coefficient_i * feature_i + constant``."""

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None  # standardized-space weights
        self._bias: float | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called."""
        return self._weights is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearModel":
        """Fit coefficients by linear least squares.

        Parameters
        ----------
        X:
            ``(n_samples, n_features)`` design matrix.
        y:
            ``(n_samples,)`` actual co-located execution times.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D (samples x features)")
        if X.shape[0] != y.size:
            raise ValueError("X and y disagree on the number of samples")
        if X.shape[0] <= X.shape[1]:
            raise ValueError(
                f"need more samples ({X.shape[0]}) than features ({X.shape[1]})"
            )
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._scale = np.where(std > 0.0, std, 1.0)
        Z = (X - self._mean) / self._scale
        A = np.hstack([Z, np.ones((Z.shape[0], 1))])
        solution, _res, _rank, _sv = scipy.linalg.lstsq(A, y)
        self._weights = solution[:-1]
        self._bias = float(solution[-1])
        return self

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("model is not fitted; call fit() first")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted co-located execution times for new samples."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        Z = (X - self._mean) / self._scale
        return Z @ self._weights + self._bias

    def predict_stable(self, X: np.ndarray) -> np.ndarray:
        """Like :meth:`predict`, but row-stable across batch shapes.

        BLAS matrix products pick different accumulation orders for
        different operand shapes, so ``predict(X)[i]`` is not guaranteed to
        equal ``predict(X[i:i+1])[0]`` bit-for-bit.  This variant reduces
        each row with a shape-independent broadcast-sum, so the prediction
        for a sample is the same float no matter how many other samples
        share the call — the property the serving layer's micro-batcher
        relies on.  Slightly slower than BLAS; use :meth:`predict` for
        training-time evaluation.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        Z = (X - self._mean) / self._scale
        return (Z * self._weights).sum(axis=1) + self._bias

    @property
    def coefficients(self) -> np.ndarray:
        """Eq. 1 coefficients in raw feature units."""
        self._check_fitted()
        return self._weights / self._scale

    @property
    def intercept(self) -> float:
        """Eq. 1 constant in raw feature units."""
        self._check_fitted()
        return self._bias - float((self._weights / self._scale) @ self._mean)
