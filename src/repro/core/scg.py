"""Scaled Conjugate Gradient optimization (Møller, 1993).

The paper trains its neural networks with "a scaled conjugate gradient
numerical method" (Section III-D).  SCG is a conjugate-gradient variant
that replaces the line search with a Levenberg-Marquardt-style scaling of a
one-sided finite-difference estimate of the Hessian-vector product, making
each iteration cost only two gradient evaluations with no user-tuned
learning rate.

This is a faithful implementation of the algorithm in M. F. Møller, "A
scaled conjugate gradient algorithm for fast supervised learning", Neural
Networks 6(4), 1993 — the standard reference implementation order
(steps 1–9), with a restart to the steepest descent direction every ``n``
iterations.

Two entry points share the algorithm:

* :func:`minimize_scg` — one parameter vector, the reference path;
* :func:`minimize_scg_batched` — ``R`` independent parameter vectors
  advanced together as one ``(R, n)`` stack.  Every per-member scalar of
  the serial algorithm (sigma, lambda, delta, the success flag) becomes a
  length-``R`` array, converged members are frozen via a mask, and the
  caller's ``fun_and_grad`` evaluates all active members in one batched
  call — for neural-network losses that turns ``R`` serial optimizations
  into a handful of large stacked BLAS calls per iteration.  Member
  trajectories follow the identical decision sequence, and both paths use
  the same accumulation forms for every reduction (einsum row dots, not
  BLAS ``dot``), so per-member trajectories are bit-for-bit identical
  when the objective honors the same discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "BatchedSCGResult",
    "SCGResult",
    "minimize_scg",
    "minimize_scg_batched",
]


@dataclass(frozen=True)
class SCGResult:
    """Outcome of an SCG run."""

    x: np.ndarray
    fun: float
    grad_norm: float
    iterations: int
    function_evals: int
    gradient_evals: int
    converged: bool
    message: str


def minimize_scg(
    fun_and_grad: Callable[[np.ndarray], tuple[float, np.ndarray]],
    x0: np.ndarray,
    *,
    max_iterations: int = 500,
    grad_tolerance: float = 1e-6,
    step_tolerance: float = 1e-12,
    sigma0: float = 1e-5,
    initial_lambda: float = 1e-6,
) -> SCGResult:
    """Minimize a smooth function with scaled conjugate gradients.

    Parameters
    ----------
    fun_and_grad:
        Callable returning ``(f(x), grad f(x))``; evaluated jointly because
        neural-network losses share the forward pass.
    x0:
        Starting point.
    max_iterations:
        Cap on SCG iterations (each costs at most two gradient evals).
    grad_tolerance:
        Stop when the gradient norm falls below this.
    step_tolerance:
        Stop when both the step and the objective improvement are below
        this (stagnation).
    sigma0, initial_lambda:
        Møller's sigma and initial scale parameter.
    """
    x = np.asarray(x0, dtype=float).copy()
    n = x.size
    if n == 0:
        raise ValueError("cannot optimize a zero-dimensional problem")

    nfev = ngev = 0

    def evaluate(point: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal nfev, ngev
        f, g = fun_and_grad(point)
        nfev += 1
        ngev += 1
        return float(f), np.asarray(g, dtype=float)

    f_x, grad = evaluate(x)
    r = -grad           # steepest descent residual
    p = r.copy()        # search direction
    success = True      # whether the last step reduced f
    lam = float(initial_lambda)
    lam_bar = 0.0
    delta = 0.0
    converged = False
    message = "maximum iterations reached"
    k = 0

    # Reductions use einsum rather than BLAS dot so each member of the
    # batched variant (row-wise einsum over a stack) accumulates in the
    # identical order — the property that keeps the two paths in lockstep.
    def dot(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.einsum("i,i->", a, b))

    for k in range(1, max_iterations + 1):
        p_sq = dot(p, p)
        p_norm = np.sqrt(p_sq)
        if p_norm < step_tolerance:
            converged = True
            message = "search direction vanished"
            break

        if success:
            # 2. Second-order information along p via finite differences.
            sigma = sigma0 / p_norm
            _f_probe, grad_probe = evaluate(x + sigma * p)
            s = (grad_probe - grad) / sigma
            delta = dot(p, s)

        # 3. Scale the curvature estimate.
        delta += (lam - lam_bar) * p_sq

        # 4. Make the Hessian estimate positive definite.
        if delta <= 0.0:
            lam_bar = 2.0 * (lam - delta / p_sq)
            delta = -delta + lam * p_sq
            lam = lam_bar

        # 5. Step size.
        mu = dot(p, r)
        alpha = mu / delta

        # 6. Comparison parameter: actual vs predicted reduction.
        x_new = x + alpha * p
        f_new, grad_new = evaluate(x_new)
        big_delta = 2.0 * delta * (f_x - f_new) / (mu * mu)

        if big_delta >= 0.0:
            # 7a. Successful step.
            df = f_x - f_new
            x = x_new
            f_x = f_new
            grad = grad_new
            r_new = -grad
            lam_bar = 0.0
            success = True
            if k % n == 0:
                p = r_new.copy()  # periodic restart to steepest descent
            else:
                beta = (dot(r_new, r_new) - dot(r_new, r)) / mu
                p = r_new + beta * p
            r = r_new
            if big_delta >= 0.75:
                lam *= 0.25
            if (
                abs(alpha) * p_norm < step_tolerance
                and abs(df) < step_tolerance
            ):
                converged = True
                message = "step and improvement below tolerance"
                break
        else:
            # 7b. Unsuccessful step: keep position, raise the scale.
            lam_bar = lam
            success = False

        # 8. Increase scale when the quadratic approximation was poor.
        if big_delta < 0.25:
            lam += delta * (1.0 - big_delta) / p_sq
        # Guard against runaway scale (all-failed steps in flat regions).
        lam = min(lam, 1e40)

        # 9. Convergence on gradient norm.
        if float(np.sqrt(dot(r, r))) < grad_tolerance:
            converged = True
            message = "gradient norm below tolerance"
            break

    return SCGResult(
        x=x,
        fun=f_x,
        grad_norm=float(np.sqrt(dot(grad, grad))),
        iterations=k,
        function_evals=nfev,
        gradient_evals=ngev,
        converged=converged,
        message=message,
    )


@dataclass(frozen=True)
class BatchedSCGResult:
    """Outcome of a batched multi-restart SCG run (one row per member)."""

    x: np.ndarray           # (R, n) final parameter vectors
    fun: np.ndarray         # (R,) final losses
    grad_norm: np.ndarray   # (R,) final gradient norms
    iterations: np.ndarray  # (R,) iterations each member advanced
    function_evals: int     # member-evaluations, summed over the batch
    gradient_evals: int
    converged: np.ndarray   # (R,) bool

    @property
    def n_members(self) -> int:
        """Number of restarts in the batch."""
        return self.fun.size


def minimize_scg_batched(
    fun_and_grad: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    x0: np.ndarray,
    *,
    max_iterations: int = 500,
    grad_tolerance: float = 1e-6,
    step_tolerance: float = 1e-12,
    sigma0: float = 1e-5,
    initial_lambda: float = 1e-6,
) -> BatchedSCGResult:
    """Minimize ``R`` independent starting points as one ``(R, n)`` stack.

    Parameters
    ----------
    fun_and_grad:
        Batched objective: given ``(R_active, n)`` parameter rows, returns
        ``(losses, grads)`` of shapes ``(R_active,)`` and ``(R_active, n)``.
        Rows are independent — the callable is handed whichever members
        still need evaluating, in member order.
    x0:
        ``(R, n)`` stack of starting points, one row per restart.
    max_iterations, grad_tolerance, step_tolerance, sigma0, initial_lambda:
        As for :func:`minimize_scg`, applied per member.

    Every member follows the exact decision sequence of
    :func:`minimize_scg`; members that converge are frozen (their rows stop
    being evaluated) while the rest continue.  All internal reductions use
    the row-wise einsum counterparts of the serial path's accumulations,
    so a member's trajectory is bit-identical to running
    :func:`minimize_scg` on its row alone — provided ``fun_and_grad``
    evaluates each row with the same arithmetic as its serial counterpart
    (stacked matmuls dispatch per-slice gemm calls, so this holds whenever
    the serial objective uses matching matmul shapes and einsum
    reductions, as :class:`~repro.core.neural.NeuralNetworkModel` does).
    """
    X = np.array(x0, dtype=float)
    if X.ndim != 2:
        raise ValueError("x0 must be a (restarts, n_params) stack")
    R, n = X.shape
    if R == 0 or n == 0:
        raise ValueError("cannot optimize an empty restart stack")

    nfev = ngev = 0

    def evaluate(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nonlocal nfev, ngev
        f, g = fun_and_grad(points)
        nfev += points.shape[0]
        ngev += points.shape[0]
        return np.asarray(f, dtype=float), np.asarray(g, dtype=float)

    f_x, grad = evaluate(X)
    r = -grad           # steepest descent residuals
    p = r.copy()        # search directions
    success = np.ones(R, dtype=bool)
    lam = np.full(R, float(initial_lambda))
    lam_bar = np.zeros(R)
    delta = np.zeros(R)
    sigma = np.zeros(R)
    active = np.ones(R, dtype=bool)
    converged = np.zeros(R, dtype=bool)
    iterations = np.zeros(R, dtype=int)

    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(1, max_iterations + 1):
            iterations[active] = k
            p_sq = np.einsum("ri,ri->r", p, p)
            p_norm = np.sqrt(p_sq)

            # 1. Vanished search direction: frozen as converged.
            vanished = active & (p_norm < step_tolerance)
            if vanished.any():
                converged |= vanished
                active &= ~vanished
            if not active.any():
                break

            # 2. Second-order information for members whose last step held.
            probing = np.flatnonzero(active & success)
            if probing.size:
                sigma[probing] = sigma0 / p_norm[probing]
                _f_probe, grad_probe = evaluate(
                    X[probing] + sigma[probing, None] * p[probing]
                )
                s = (grad_probe - grad[probing]) / sigma[probing, None]
                delta[probing] = np.einsum("ri,ri->r", p[probing], s)

            act = np.flatnonzero(active)

            # 3. Scale the curvature estimate.
            delta[act] += (lam[act] - lam_bar[act]) * p_sq[act]

            # 4. Make the Hessian estimate positive definite.
            neg = act[delta[act] <= 0.0]
            if neg.size:
                lam_bar[neg] = 2.0 * (lam[neg] - delta[neg] / p_sq[neg])
                delta[neg] = -delta[neg] + lam[neg] * p_sq[neg]
                lam[neg] = lam_bar[neg]

            # 5. Step sizes.
            mu = np.einsum("ri,ri->r", p[act], r[act])
            alpha = mu / delta[act]

            # 6. Comparison parameter: actual vs predicted reduction.
            x_new = X[act] + alpha[:, None] * p[act]
            f_new, grad_new = evaluate(x_new)
            big_delta = 2.0 * delta[act] * (f_x[act] - f_new) / (mu * mu)

            ok = big_delta >= 0.0
            good = act[ok]
            if good.size:
                # 7a. Successful steps.
                pos = np.flatnonzero(ok)
                df = f_x[good] - f_new[pos]
                X[good] = x_new[pos]
                f_x[good] = f_new[pos]
                g_new = grad_new[pos]
                r_new = -g_new
                r_old = r[good]
                grad[good] = g_new
                lam_bar[good] = 0.0
                success[good] = True
                if k % n == 0:
                    p[good] = r_new  # periodic restart to steepest descent
                else:
                    beta = (
                        np.einsum("ri,ri->r", r_new, r_new)
                        - np.einsum("ri,ri->r", r_new, r_old)
                    ) / mu[pos]
                    p[good] = r_new + beta[:, None] * p[good]
                r[good] = r_new
                shrink = good[big_delta[pos] >= 0.75]
                lam[shrink] *= 0.25
                stalled = good[
                    (np.abs(alpha[pos]) * p_norm[good] < step_tolerance)
                    & (np.abs(df) < step_tolerance)
                ]
                if stalled.size:
                    converged[stalled] = True
                    active[stalled] = False
            bad = act[~ok]
            if bad.size:
                # 7b. Unsuccessful steps: keep position, raise the scale.
                lam_bar[bad] = lam[bad]
                success[bad] = False

            # 8. Increase scale where the quadratic approximation was poor.
            poor = act[big_delta < 0.25]
            if poor.size:
                sel = np.flatnonzero(big_delta < 0.25)
                lam[poor] += delta[poor] * (1.0 - big_delta[sel]) / p_sq[poor]
            np.minimum(lam, 1e40, out=lam)  # runaway-scale guard

            # 9. Convergence on gradient norm.
            live = np.flatnonzero(active)
            small = live[
                np.sqrt(np.einsum("ri,ri->r", r[live], r[live]))
                < grad_tolerance
            ]
            if small.size:
                converged[small] = True
                active[small] = False
            if not active.any():
                break

    return BatchedSCGResult(
        x=X,
        fun=f_x,
        grad_norm=np.sqrt(np.einsum("ri,ri->r", grad, grad)),
        iterations=iterations,
        function_evals=nfev,
        gradient_evals=ngev,
        converged=converged,
    )
