"""Scaled Conjugate Gradient optimization (Møller, 1993).

The paper trains its neural networks with "a scaled conjugate gradient
numerical method" (Section III-D).  SCG is a conjugate-gradient variant
that replaces the line search with a Levenberg-Marquardt-style scaling of a
one-sided finite-difference estimate of the Hessian-vector product, making
each iteration cost only two gradient evaluations with no user-tuned
learning rate.

This is a faithful implementation of the algorithm in M. F. Møller, "A
scaled conjugate gradient algorithm for fast supervised learning", Neural
Networks 6(4), 1993 — the standard reference implementation order
(steps 1–9), with a restart to the steepest descent direction every ``n``
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["SCGResult", "minimize_scg"]


@dataclass(frozen=True)
class SCGResult:
    """Outcome of an SCG run."""

    x: np.ndarray
    fun: float
    grad_norm: float
    iterations: int
    function_evals: int
    gradient_evals: int
    converged: bool
    message: str


def minimize_scg(
    fun_and_grad: Callable[[np.ndarray], tuple[float, np.ndarray]],
    x0: np.ndarray,
    *,
    max_iterations: int = 500,
    grad_tolerance: float = 1e-6,
    step_tolerance: float = 1e-12,
    sigma0: float = 1e-5,
    initial_lambda: float = 1e-6,
) -> SCGResult:
    """Minimize a smooth function with scaled conjugate gradients.

    Parameters
    ----------
    fun_and_grad:
        Callable returning ``(f(x), grad f(x))``; evaluated jointly because
        neural-network losses share the forward pass.
    x0:
        Starting point.
    max_iterations:
        Cap on SCG iterations (each costs at most two gradient evals).
    grad_tolerance:
        Stop when the gradient norm falls below this.
    step_tolerance:
        Stop when both the step and the objective improvement are below
        this (stagnation).
    sigma0, initial_lambda:
        Møller's sigma and initial scale parameter.
    """
    x = np.asarray(x0, dtype=float).copy()
    n = x.size
    if n == 0:
        raise ValueError("cannot optimize a zero-dimensional problem")

    nfev = ngev = 0

    def evaluate(point: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal nfev, ngev
        f, g = fun_and_grad(point)
        nfev += 1
        ngev += 1
        return float(f), np.asarray(g, dtype=float)

    f_x, grad = evaluate(x)
    r = -grad           # steepest descent residual
    p = r.copy()        # search direction
    success = True      # whether the last step reduced f
    lam = float(initial_lambda)
    lam_bar = 0.0
    delta = 0.0
    converged = False
    message = "maximum iterations reached"
    k = 0

    for k in range(1, max_iterations + 1):
        p_sq = float(p @ p)
        p_norm = np.sqrt(p_sq)
        if p_norm < step_tolerance:
            converged = True
            message = "search direction vanished"
            break

        if success:
            # 2. Second-order information along p via finite differences.
            sigma = sigma0 / p_norm
            _f_probe, grad_probe = evaluate(x + sigma * p)
            s = (grad_probe - grad) / sigma
            delta = float(p @ s)

        # 3. Scale the curvature estimate.
        delta += (lam - lam_bar) * p_sq

        # 4. Make the Hessian estimate positive definite.
        if delta <= 0.0:
            lam_bar = 2.0 * (lam - delta / p_sq)
            delta = -delta + lam * p_sq
            lam = lam_bar

        # 5. Step size.
        mu = float(p @ r)
        alpha = mu / delta

        # 6. Comparison parameter: actual vs predicted reduction.
        x_new = x + alpha * p
        f_new, grad_new = evaluate(x_new)
        big_delta = 2.0 * delta * (f_x - f_new) / (mu * mu)

        if big_delta >= 0.0:
            # 7a. Successful step.
            df = f_x - f_new
            x = x_new
            f_x = f_new
            grad = grad_new
            r_new = -grad
            lam_bar = 0.0
            success = True
            if k % n == 0:
                p = r_new.copy()  # periodic restart to steepest descent
            else:
                beta = (float(r_new @ r_new) - float(r_new @ r)) / mu
                p = r_new + beta * p
            r = r_new
            if big_delta >= 0.75:
                lam *= 0.25
            if (
                abs(alpha) * p_norm < step_tolerance
                and abs(df) < step_tolerance
            ):
                converged = True
                message = "step and improvement below tolerance"
                break
        else:
            # 7b. Unsuccessful step: keep position, raise the scale.
            lam_bar = lam
            success = False

        # 8. Increase scale when the quadratic approximation was poor.
        if big_delta < 0.25:
            lam += delta * (1.0 - big_delta) / p_sq
        # Guard against runaway scale (all-failed steps in flat regions).
        lam = min(lam, 1e40)

        # 9. Convergence on gradient norm.
        if float(np.linalg.norm(r)) < grad_tolerance:
            converged = True
            message = "gradient norm below tolerance"
            break

    return SCGResult(
        x=x,
        fun=f_x,
        grad_norm=float(np.linalg.norm(grad)),
        iterations=k,
        function_evals=nfev,
        gradient_evals=ngev,
        converged=converged,
        message=message,
    )
