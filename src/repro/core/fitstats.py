"""Observability counters for the model-fitting pipeline.

The Figures 1–4 grid is 100 random 70/30 splits x 12 models x 2 machines,
and every neural fit multiplies that by SCG restarts — the fitting half of
the methodology is where the bench wall-time goes.  :class:`FitStats` is
the fitting counterpart of the simulation layer's
:class:`~repro.sim.solve_cache.EngineStats`: a mergeable record of fits,
restarts, SCG iterations, gradient evaluations, and wall time, carried
per-fit by :class:`~repro.core.neural.NeuralNetworkModel` (``fit_stats_``),
accumulated per-model-instance (``stats``), and aggregated across
repetitions by the validation protocols (``ValidationResult.fit_stats``).

The validation layer's process-parallel path returns one record per
repetition and merges them **in repetition order**, so every count (though
not wall time, which is measured per process) is identical no matter how
many workers ran the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FitStats", "GLOBAL_FIT_STATS"]


@dataclass
class FitStats:
    """Running counters for model fitting.

    Attributes
    ----------
    fits:
        Completed ``fit`` calls (one per repetition/fold/restart group).
    restarts:
        Independent weight initializations optimized (equals ``fits`` for
        deterministic models, ``fits * n_restarts`` for neural fits).
    scg_iterations:
        SCG iterations advanced, summed over restarts.  In batched-restart
        mode each member's iterations are counted individually, so the
        total is comparable with the serial path.
    function_evals / gradient_evals:
        Loss / gradient evaluations (evaluated jointly by the neural loss,
        so the two usually match).
    wall_time_s:
        Wall-clock seconds spent inside ``fit``.  Under process-parallel
        validation this sums per-worker time, which can exceed elapsed
        time — that surplus *is* the parallel speedup.
    """

    fits: int = 0
    restarts: int = 0
    scg_iterations: int = 0
    function_evals: int = 0
    gradient_evals: int = 0
    wall_time_s: float = 0.0

    @property
    def iterations_per_fit(self) -> float:
        """Mean SCG iterations per fit (0.0 when idle)."""
        return self.scg_iterations / self.fits if self.fits else 0.0

    @property
    def fits_per_second(self) -> float:
        """Fit throughput against accumulated fit wall time (0.0 when idle)."""
        return self.fits / self.wall_time_s if self.wall_time_s > 0.0 else 0.0

    def record_fit(
        self,
        *,
        restarts: int = 1,
        scg_iterations: int = 0,
        function_evals: int = 0,
        gradient_evals: int = 0,
        wall_time_s: float = 0.0,
    ) -> None:
        """Count one completed ``fit`` call."""
        self.fits += 1
        self.restarts += restarts
        self.scg_iterations += scg_iterations
        self.function_evals += function_evals
        self.gradient_evals += gradient_evals
        self.wall_time_s += wall_time_s

    def merge(self, other: "FitStats") -> None:
        """Fold another record (e.g. a worker process's) into this one."""
        self.fits += other.fits
        self.restarts += other.restarts
        self.scg_iterations += other.scg_iterations
        self.function_evals += other.function_evals
        self.gradient_evals += other.gradient_evals
        self.wall_time_s += other.wall_time_s

    def reset(self) -> None:
        """Zero every counter."""
        self.fits = 0
        self.restarts = 0
        self.scg_iterations = 0
        self.function_evals = 0
        self.gradient_evals = 0
        self.wall_time_s = 0.0

    def summary(self) -> str:
        """Human-readable one-stop summary (used by the CLI and benches)."""
        lines = [
            f"fit stats: {self.fits} fits, {self.restarts} restarts, "
            f"{self.scg_iterations} SCG iterations, "
            f"{self.gradient_evals} gradient evals"
        ]
        if self.wall_time_s > 0.0:
            lines.append(
                f"fit wall time: {self.wall_time_s:.3f} s "
                f"({self.fits_per_second:.1f} fits/s, "
                f"{self.iterations_per_fit:.1f} iterations/fit)"
            )
        return "\n".join(lines)


#: Process-wide aggregate across every model fit in this process.  Neural
#: fits feed it directly; the validation layer's process-parallel path
#: folds worker chunk records in, so one scrape of the metrics registry
#: (:mod:`repro.obs`) sees the whole run.
GLOBAL_FIT_STATS = FitStats()
