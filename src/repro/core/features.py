"""Model features and co-location observations (paper, Table I).

The eight features the models may use, and the observation record they are
extracted from.  A :class:`CoLocationObservation` captures exactly what a
resource manager would know ahead of time — *baseline* (solo) measurements
of the target and co-located applications — plus the measured co-located
execution time as the label.

The crucial property (Section III): apart from the label, everything is
derived from a *single* baseline profiling run per application.  No feature
is measured under co-location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..counters.hpcrun import FlatProfile

__all__ = [
    "Feature",
    "FEATURE_DESCRIPTIONS",
    "CoLocationObservation",
    "feature_matrix",
    "feature_row",
    "observation_from_profiles",
]


class Feature(enum.Enum):
    """The eight model features of Table I."""

    BASE_EX_TIME = "baseExTime"        # baseline execution time at the P-state
    NUM_CO_APP = "numCoApp"            # number of co-located applications
    CO_APP_MEM = "coAppMem"            # sum of co-app memory intensities
    TARGET_MEM = "targetMem"           # target memory intensity
    CO_APP_CM_CA = "coAppCM/CA"        # sum of co-app LLC misses/accesses
    CO_APP_CA_INS = "coAppCA/INS"      # sum of co-app LLC accesses/instructions
    TARGET_CM_CA = "targetCM/CA"       # target LLC misses/accesses
    TARGET_CA_INS = "targetCA/INS"     # target LLC accesses/instructions


#: Table I, column 2: the aspect of execution each feature measures.
FEATURE_DESCRIPTIONS: dict[Feature, str] = {
    Feature.BASE_EX_TIME: "baseline execution time of target application at all P-states",
    Feature.NUM_CO_APP: "number of co-located applications",
    Feature.CO_APP_MEM: "sum of co-application memory intensities",
    Feature.TARGET_MEM: "target application memory intensity",
    Feature.CO_APP_CM_CA: "sum of co-application last-level cache misses/cache accesses",
    Feature.CO_APP_CA_INS: "sum of co-application last-level cache accesses/instructions",
    Feature.TARGET_CM_CA: "target application last-level cache misses/cache accesses",
    Feature.TARGET_CA_INS: "target application last-level cache accesses/instructions",
}


@dataclass(frozen=True)
class CoLocationObservation:
    """One co-location test with its baseline-derived features and label.

    Metadata fields (machine, names, frequency) are carried for slicing and
    reporting; the models never see them directly.
    """

    # --- metadata -------------------------------------------------------
    processor_name: str
    frequency_ghz: float
    target_name: str
    co_app_name: str | None

    # --- Table I features ------------------------------------------------
    base_ex_time_s: float
    num_co_app: int
    co_app_mem: float
    target_mem: float
    co_app_cm_ca: float
    co_app_ca_ins: float
    target_cm_ca: float
    target_ca_ins: float

    # --- label -----------------------------------------------------------
    actual_time_s: float

    def __post_init__(self) -> None:
        if self.base_ex_time_s <= 0.0:
            raise ValueError("baseline execution time must be positive")
        if self.actual_time_s <= 0.0:
            raise ValueError("actual execution time must be positive")
        if self.num_co_app < 0:
            raise ValueError("number of co-apps must be non-negative")
        for name in ("co_app_mem", "target_mem", "co_app_cm_ca",
                     "co_app_ca_ins", "target_cm_ca", "target_ca_ins"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")

    def feature_value(self, feature: Feature) -> float:
        """Value of one Table I feature for this observation."""
        return {
            Feature.BASE_EX_TIME: self.base_ex_time_s,
            Feature.NUM_CO_APP: float(self.num_co_app),
            Feature.CO_APP_MEM: self.co_app_mem,
            Feature.TARGET_MEM: self.target_mem,
            Feature.CO_APP_CM_CA: self.co_app_cm_ca,
            Feature.CO_APP_CA_INS: self.co_app_ca_ins,
            Feature.TARGET_CM_CA: self.target_cm_ca,
            Feature.TARGET_CA_INS: self.target_ca_ins,
        }[feature]

    @property
    def slowdown(self) -> float:
        """Measured normalized execution time (actual over baseline)."""
        return self.actual_time_s / self.base_ex_time_s


def observation_from_profiles(
    target_baseline: FlatProfile,
    co_app_baselines: list[FlatProfile],
    actual_time_s: float,
    *,
    co_app_name: str | None = None,
) -> CoLocationObservation:
    """Build an observation from hpcrun-flat baseline profiles.

    ``target_baseline`` must be profiled at the P-state of the co-location
    test (the paper measures baselines at all P-states); co-app baselines
    contribute only frequency-independent ratios, so their P-state does not
    matter.
    """
    if co_app_baselines and co_app_name is None:
        names = {p.app_name for p in co_app_baselines}
        if len(names) == 1:
            co_app_name = next(iter(names))
        else:
            co_app_name = "+".join(sorted(names))
    return CoLocationObservation(
        processor_name=target_baseline.processor_name,
        frequency_ghz=target_baseline.frequency_ghz,
        target_name=target_baseline.app_name,
        co_app_name=co_app_name if co_app_baselines else None,
        base_ex_time_s=target_baseline.wall_time_s,
        num_co_app=len(co_app_baselines),
        co_app_mem=float(sum(p.memory_intensity for p in co_app_baselines)),
        target_mem=target_baseline.memory_intensity,
        co_app_cm_ca=float(sum(p.cm_per_ca for p in co_app_baselines)),
        co_app_ca_ins=float(sum(p.ca_per_ins for p in co_app_baselines)),
        target_cm_ca=target_baseline.cm_per_ca,
        target_ca_ins=target_baseline.ca_per_ins,
        actual_time_s=actual_time_s,
    )


def feature_row(
    target_baseline: FlatProfile,
    co_app_baselines: list[FlatProfile],
    features: list[Feature] | tuple[Feature, ...],
) -> np.ndarray:
    """Feature values for a *prospective* co-location (no label needed).

    This is the prediction-time path: a resource manager weighing a
    placement has baselines but, by definition, no measured co-located
    time yet.
    """
    values = {
        Feature.BASE_EX_TIME: target_baseline.wall_time_s,
        Feature.NUM_CO_APP: float(len(co_app_baselines)),
        Feature.CO_APP_MEM: float(sum(p.memory_intensity for p in co_app_baselines)),
        Feature.TARGET_MEM: target_baseline.memory_intensity,
        Feature.CO_APP_CM_CA: float(sum(p.cm_per_ca for p in co_app_baselines)),
        Feature.CO_APP_CA_INS: float(sum(p.ca_per_ins for p in co_app_baselines)),
        Feature.TARGET_CM_CA: target_baseline.cm_per_ca,
        Feature.TARGET_CA_INS: target_baseline.ca_per_ins,
    }
    return np.array([values[f] for f in features])


def feature_matrix(
    observations: list[CoLocationObservation],
    features: list[Feature] | tuple[Feature, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack observations into ``(X, y)`` for the chosen features.

    Returns the ``(n, k)`` design matrix and the ``(n,)`` vector of actual
    co-located execution times.
    """
    if not observations:
        raise ValueError("need at least one observation")
    if not features:
        raise ValueError("need at least one feature")
    X = np.array(
        [[obs.feature_value(f) for f in features] for obs in observations]
    )
    y = np.array([obs.actual_time_s for obs in observations])
    return X, y
