"""Ensemble prediction with uncertainty estimates.

The paper reports point predictions; a resource manager acting on them
also needs to know *how much to trust each one* — a placement predicted at
300 ± 5 s is a different decision than 300 ± 60 s.  This module provides
the standard bootstrap-ensemble answer: train ``n_members`` models, each on
a bootstrap resample of the training observations with its own weight
initialization, and report the member spread alongside the mean.

The spread is a model-disagreement signal, not a calibrated posterior: it
grows off the training distribution (tested), which is exactly the alarm a
scheduler needs before trusting an exotic placement.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..counters.hpcrun import FlatProfile
from .feature_sets import FeatureSet
from .features import CoLocationObservation, feature_matrix, feature_row
from .fitstats import FitStats
from .methodology import ModelKind, make_model
from .validation import _spawn_streams

__all__ = ["PredictionInterval", "EnsemblePredictor"]


# Worker-process state for parallel member fitting: the model recipe and
# the dataset ship once per worker via the pool initializer.
_MEMBER_POOL: tuple | None = None


def _init_member_pool(kind, feature_set, batched_restarts, X, y) -> None:
    global _MEMBER_POOL
    _MEMBER_POOL = (kind, feature_set, batched_restarts, X, y)


def _fit_member(task):
    pool_state = _MEMBER_POOL
    assert pool_state is not None, "member pool used before initialization"
    kind, feature_set, batched_restarts, X, y = pool_state
    idx, rng = task
    model = make_model(
        kind, feature_set, rng=rng, batched_restarts=batched_restarts
    )
    model.fit(X[idx], y[idx])
    # make_model binds rng into fit via a per-instance closure, which
    # cannot pickle back to the parent; the model is fitted, so drop it.
    vars(model).pop("fit", None)
    return model


@dataclass(frozen=True)
class PredictionInterval:
    """An ensemble prediction: mean with a disagreement band."""

    mean_s: float
    std_s: float
    member_predictions: tuple[float, ...]

    @property
    def relative_spread(self) -> float:
        """Member standard deviation over the mean (dimensionless)."""
        return self.std_s / self.mean_s if self.mean_s else float("inf")

    def interval(self, k: float = 2.0) -> tuple[float, float]:
        """``mean ± k * std`` band."""
        return (self.mean_s - k * self.std_s, self.mean_s + k * self.std_s)


class EnsemblePredictor:
    """Bootstrap ensemble of co-location performance models.

    Parameters
    ----------
    kind, feature_set:
        As for :class:`~repro.core.methodology.PerformancePredictor`.
    n_members:
        Ensemble size; 5–10 gives stable spread estimates.
    seed:
        Root seed for resampling and member initialization.
    workers:
        Process-pool width for member fitting.  Members get
        SeedSequence-spawned per-member streams (resamples are drawn up
        front from the root generator), so any worker count produces the
        identical ensemble.
    batched_restarts:
        Fit neural members on the stacked multi-restart SCG fast path.
    """

    def __init__(
        self,
        kind: ModelKind = ModelKind.NEURAL,
        feature_set: FeatureSet = FeatureSet.F,
        *,
        n_members: int = 5,
        seed: int = 0,
        workers: int = 1,
        batched_restarts: bool = False,
    ) -> None:
        if n_members < 2:
            raise ValueError("an ensemble needs at least two members")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.kind = kind
        self.feature_set = feature_set
        self.n_members = n_members
        self.workers = workers
        self.batched_restarts = bool(batched_restarts)
        self._rng = np.random.default_rng(seed)
        self._members: list | None = None
        self._processor_name: str | None = None
        self._train_size: int | None = None
        self.fit_stats_: FitStats | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called."""
        return self._members is not None

    @property
    def processor_name(self) -> str | None:
        """Machine the ensemble was trained for (None before fitting)."""
        return self._processor_name

    @property
    def train_size(self) -> int | None:
        """Observations the ensemble was fitted on (None before fitting
        or for artifacts loaded from disk without provenance)."""
        return self._train_size

    def fit(self, observations: list[CoLocationObservation]) -> "EnsemblePredictor":
        """Train every member on its own bootstrap resample."""
        machines = {o.processor_name for o in observations}
        if len(machines) > 1:
            raise ValueError(
                f"training data mixes machines {sorted(machines)}"
            )
        X, y = feature_matrix(observations, self.feature_set.features)
        n = X.shape[0]
        # All bootstrap resamples come off the root stream up front and
        # each member's initialization gets its own spawned child stream,
        # so the ensemble is identical for any ``workers`` count.
        resamples = [
            self._rng.integers(0, n, size=n) for _ in range(self.n_members)
        ]
        member_rngs = _spawn_streams(self._rng, self.n_members)
        tasks = list(zip(resamples, member_rngs))
        if self.workers == 1:
            members = []
            for idx, member_rng in tasks:
                model = make_model(
                    self.kind,
                    self.feature_set,
                    rng=member_rng,
                    batched_restarts=self.batched_restarts,
                )
                model.fit(X[idx], y[idx])
                members.append(model)
        else:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, self.n_members),
                initializer=_init_member_pool,
                initargs=(
                    self.kind,
                    self.feature_set,
                    self.batched_restarts,
                    X,
                    y,
                ),
            ) as pool:
                members = list(pool.map(_fit_member, tasks))
        aggregate = FitStats()
        for member in members:
            member_stats = getattr(member, "fit_stats_", None)
            if isinstance(member_stats, FitStats):
                aggregate.merge(member_stats)
            else:
                aggregate.record_fit()
        self.fit_stats_ = aggregate
        self._members = members
        self._processor_name = next(iter(machines))
        self._train_size = len(observations)
        return self

    def _check_fitted(self) -> None:
        if self._members is None:
            raise RuntimeError("ensemble is not fitted; call fit() first")

    def predict_interval(
        self,
        target_baseline: FlatProfile,
        co_app_baselines: list[FlatProfile],
    ) -> PredictionInterval:
        """Predict one placement with a disagreement band."""
        self._check_fitted()
        if self._processor_name is not None:
            for p in [target_baseline] + list(co_app_baselines):
                if p.processor_name != self._processor_name:
                    raise ValueError(
                        f"profile of {p.app_name!r} is from "
                        f"{p.processor_name!r}; ensemble trained on "
                        f"{self._processor_name!r}"
                    )
        row = feature_row(
            target_baseline, co_app_baselines, self.feature_set.features
        )[None, :]
        preds = np.array([float(m.predict(row)[0]) for m in self._members])
        return PredictionInterval(
            mean_s=float(preds.mean()),
            std_s=float(preds.std()),
            member_predictions=tuple(preds),
        )

    def predict_observations(
        self, observations: list[CoLocationObservation]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(means, stds)`` over labeled observations."""
        self._check_fitted()
        X, _y = feature_matrix(observations, self.feature_set.features)
        all_preds = np.stack([m.predict(X) for m in self._members])
        return all_preds.mean(axis=0), all_preds.std(axis=0)

    def predict_rows(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Serving-path ``(means, stds)`` over raw feature rows.

        ``X`` is ``(n, k)`` with columns in ``feature_set.features`` order.
        Every member uses the row-stable kernel and the cross-member
        reductions are per-column, so each row's interval is bit-identical
        whether served alone or inside a micro-batch.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        expected = len(self.feature_set.features)
        if X.ndim != 2 or X.shape[1] != expected:
            raise ValueError(
                f"feature rows must be (n, {expected}) for set "
                f"{self.feature_set.value}; got {X.shape}"
            )
        all_preds = np.stack([m.predict_stable(X) for m in self._members])
        return all_preds.mean(axis=0), all_preds.std(axis=0)
