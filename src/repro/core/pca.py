"""Principal component analysis for feature ranking (paper, Section III-B).

The paper selected its eight model features by running PCA over everything
the testing environment gathered and ranking features "according to
variance of their output".  This module provides a small, dependency-free
PCA (covariance eigendecomposition) plus the feature-importance ranking
used to justify the Table I feature list: each feature is scored by its
variance-weighted participation in the principal components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PCA", "rank_features"]


@dataclass
class PCA:
    """Principal component analysis via covariance eigendecomposition.

    Fits on standardized data (each column centered; scaled to unit
    variance unless a column is constant, which is left centered-only so
    degenerate features cannot poison the decomposition).
    """

    n_components: int | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        """Fit components from an ``(n_samples, n_features)`` matrix."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("PCA expects a 2-D sample matrix")
        n, d = X.shape
        if n < 2:
            raise ValueError("PCA needs at least two samples")
        k = self.n_components if self.n_components is not None else d
        if not 1 <= k <= d:
            raise ValueError(f"n_components must be in [1, {d}], got {k}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0, ddof=1)
        self.scale_ = np.where(std > 0.0, std, 1.0)
        Z = (X - self.mean_) / self.scale_
        cov = np.cov(Z, rowvar=False, ddof=1)
        cov = np.atleast_2d(cov)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        eigvecs = eigvecs[:, order]
        self.explained_variance_ = eigvals[:k]
        total = eigvals.sum()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0.0 else np.zeros(k)
        )
        self.components_ = eigvecs[:, :k].T  # (k, d): rows are components
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "components_"):
            raise RuntimeError("PCA is not fitted; call fit() first")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project samples onto the fitted components."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        Z = (X - self.mean_) / self.scale_
        return Z @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit, then project the same samples."""
        return self.fit(X).transform(X)

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Map component scores back to (approximate) original features."""
        self._check_fitted()
        scores = np.asarray(scores, dtype=float)
        return scores @ self.components_ * self.scale_ + self.mean_

    def feature_importance(self) -> np.ndarray:
        """Variance-weighted participation of each original feature.

        ``importance_j = sum_k ratio_k * |components_[k, j]|`` — features
        that load heavily on high-variance components score high.  Sums
        are normalized to 1.
        """
        self._check_fitted()
        loading = np.abs(self.components_)  # (k, d)
        raw = self.explained_variance_ratio_ @ loading
        total = raw.sum()
        return raw / total if total > 0.0 else raw


def rank_features(X: np.ndarray, names: list[str]) -> list[tuple[str, float]]:
    """Rank named features by PCA importance, most important first.

    This reproduces the selection argument behind Table I: run it over the
    harness's gathered observables and the Table I features rank at the
    top (tested in ``tests/core/test_pca.py``).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[1] != len(names):
        raise ValueError("names must match the columns of X")
    importance = PCA().fit(X).feature_importance()
    order = np.argsort(importance)[::-1]
    return [(names[i], float(importance[i])) for i in order]
