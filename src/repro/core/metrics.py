"""Model accuracy metrics (paper, Section III-E).

Two headline metrics evaluate every model:

* **Mean Percent Error** (MPE, Eq. 2) — mean absolute relative error in
  percent, magnitude-independent because actual execution times span a wide
  range (150 s to over 1000 s).
* **Normalized Root Mean Squared Error** (NRMSE, Eq. 3) — RMSE normalized
  by the spread of the actual values, in percent.

Note on Eq. 3: as printed, the paper's formula mixes a relative error
inside the square root with a range normalization outside and a stray 1/M
factor; the accompanying text ("a ratio of Root Mean Squared Error and the
interval of values that the actual data can take") describes the standard
definition, which is what we implement:
``NRMSE = 100 * RMSE / (max(actual) - min(actual))``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mpe", "nrmse", "rmse", "mae", "percent_errors"]


def _validate(predicted: np.ndarray, actual: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(predicted, dtype=float).ravel()
    a = np.asarray(actual, dtype=float).ravel()
    if p.size != a.size:
        raise ValueError(f"length mismatch: {p.size} predictions vs {a.size} actuals")
    if p.size == 0:
        raise ValueError("metrics need at least one sample")
    return p, a


def percent_errors(predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Signed percent error per sample: ``100 * (pred - actual) / actual``.

    The per-application error distributions of Figure 5(b) are built from
    these values.
    """
    p, a = _validate(predicted, actual)
    if np.any(a == 0.0):
        raise ValueError("actual values must be nonzero for percent error")
    return 100.0 * (p - a) / a


def mpe(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean Percent Error (Eq. 2): mean of absolute percent errors."""
    return float(np.mean(np.abs(percent_errors(predicted, actual))))


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean squared error, in the units of the data."""
    p, a = _validate(predicted, actual)
    return float(np.sqrt(np.mean((p - a) ** 2)))


def mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean absolute error, in the units of the data."""
    p, a = _validate(predicted, actual)
    return float(np.mean(np.abs(p - a)))


def nrmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Normalized RMSE (Eq. 3): ``100 * RMSE / (actual_max - actual_min)``.

    Raises ``ValueError`` when the actual values are all identical (the
    normalizing interval would be zero) — a degenerate evaluation set.
    """
    p, a = _validate(predicted, actual)
    interval = float(a.max() - a.min())
    if interval <= 0.0:
        raise ValueError("actual values have zero range; NRMSE undefined")
    return 100.0 * float(np.sqrt(np.mean((p - a) ** 2))) / interval
