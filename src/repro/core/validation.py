"""Repeated random sub-sampling validation (paper, Section IV-B4).

Model accuracy is estimated the paper's way: withhold a random 30% of the
data, train on the remaining 70%, measure MPE and NRMSE on both partitions,
and repeat one hundred times with fresh random splits; report the averages.
(The paper attributes the approach to the bootstrap literature [EfT94].)

The per-partition spread is also reported — the paper notes each model's
partition errors varied by "at most a quarter of a percent", i.e. tight
confidence intervals, and the reproduction's benches check the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from .metrics import mpe, nrmse

__all__ = [
    "GroupValidationResult",
    "RegressionModel",
    "ValidationResult",
    "leave_one_group_out",
    "repeated_random_subsampling",
]


class RegressionModel(Protocol):
    """Anything trainable on (X, y) that predicts from X."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionModel": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class ValidationResult:
    """Per-repetition error arrays plus their summary statistics."""

    train_mpe: np.ndarray
    test_mpe: np.ndarray
    train_nrmse: np.ndarray
    test_nrmse: np.ndarray

    @property
    def repetitions(self) -> int:
        """Number of random partitions evaluated."""
        return self.train_mpe.size

    @property
    def mean_train_mpe(self) -> float:
        """Average training MPE across partitions (a Figure 1/2 point)."""
        return float(self.train_mpe.mean())

    @property
    def mean_test_mpe(self) -> float:
        """Average testing MPE across partitions (a Figure 1/2 point)."""
        return float(self.test_mpe.mean())

    @property
    def mean_train_nrmse(self) -> float:
        """Average training NRMSE across partitions (a Figure 3/4 point)."""
        return float(self.train_nrmse.mean())

    @property
    def mean_test_nrmse(self) -> float:
        """Average testing NRMSE across partitions (a Figure 3/4 point)."""
        return float(self.test_nrmse.mean())

    @property
    def test_mpe_std(self) -> float:
        """Partition-to-partition spread of the testing MPE."""
        return float(self.test_mpe.std())


def repeated_random_subsampling(
    make_model: Callable[[], RegressionModel],
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.3,
    repetitions: int = 100,
    rng: np.random.Generator | None = None,
) -> ValidationResult:
    """Estimate a model family's accuracy by repeated random splits.

    Parameters
    ----------
    make_model:
        Factory producing a fresh, unfitted model per repetition.
    X, y:
        The full dataset; each repetition withholds ``test_fraction`` of
        the rows (at least two so NRMSE is defined on the test partition,
        at most all-but-two so the model can fit).
    test_fraction:
        Withheld share; the paper uses 0.3.
    repetitions:
        Number of random partitions; the paper uses 100.
    rng:
        Split randomness (seeded for reproducibility).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] != y.size:
        raise ValueError("X must be (n, k) with y of length n")
    n = X.shape[0]
    if n < 4:
        raise ValueError(
            "need at least four samples to split into train/test partitions "
            "of two or more rows each"
        )
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test fraction must be in (0, 1)")
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    if rng is None:
        rng = np.random.default_rng(0)

    # A 1-sample test split always has zero range, which makes NRMSE
    # undefined; keep both partitions at >= 2 rows.
    n_test = min(max(int(round(n * test_fraction)), 2), n - 2)
    train_mpe = np.empty(repetitions)
    test_mpe = np.empty(repetitions)
    train_nrmse = np.empty(repetitions)
    test_nrmse = np.empty(repetitions)
    for rep in range(repetitions):
        perm = rng.permutation(n)
        test_idx, train_idx = perm[:n_test], perm[n_test:]
        model = make_model()
        model.fit(X[train_idx], y[train_idx])
        pred_train = model.predict(X[train_idx])
        pred_test = model.predict(X[test_idx])
        train_mpe[rep] = mpe(pred_train, y[train_idx])
        test_mpe[rep] = mpe(pred_test, y[test_idx])
        train_nrmse[rep] = nrmse(pred_train, y[train_idx])
        test_nrmse[rep] = nrmse(pred_test, y[test_idx])
    return ValidationResult(
        train_mpe=train_mpe,
        test_mpe=test_mpe,
        train_nrmse=train_nrmse,
        test_nrmse=test_nrmse,
    )


@dataclass(frozen=True)
class GroupValidationResult:
    """Per-group held-out errors from leave-one-group-out validation."""

    group_test_mpe: dict
    group_test_nrmse: dict

    @property
    def groups(self) -> list:
        """The held-out groups, in evaluation order."""
        return list(self.group_test_mpe)

    @property
    def mean_test_mpe(self) -> float:
        """Average held-out MPE across groups."""
        return float(np.mean(list(self.group_test_mpe.values())))

    @property
    def worst_group(self):
        """The group hardest to predict when excluded from training."""
        return max(self.group_test_mpe, key=self.group_test_mpe.get)


def leave_one_group_out(
    make_model: Callable[[], RegressionModel],
    X: np.ndarray,
    y: np.ndarray,
    groups: list,
) -> GroupValidationResult:
    """Leave-one-group-out cross-validation.

    For each distinct group label (e.g. the target application's name),
    train on every other group's rows and test on the held-out group.
    This is a strictly harder protocol than the paper's random
    sub-sampling: the model must predict for a *target application it has
    never seen*, from baseline-derived features alone.

    Parameters
    ----------
    make_model:
        Fresh-model factory per fold.
    X, y:
        The full dataset.
    groups:
        One hashable label per row; folds are the distinct labels, in
        first-seen order.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] != y.size:
        raise ValueError("X must be (n, k) with y of length n")
    if len(groups) != y.size:
        raise ValueError("need one group label per row")
    labels = np.asarray(groups)
    distinct: list = []
    for g in groups:
        if g not in distinct:
            distinct.append(g)
    if len(distinct) < 2:
        raise ValueError("leave-one-group-out needs at least two groups")
    for g in distinct:
        members = int((labels == g).sum())
        if members < 2:
            raise ValueError(
                f"group {g!r} has only {members} row; NRMSE is undefined on "
                f"a singleton held-out group — every group needs >= 2 rows"
            )

    group_mpe: dict = {}
    group_nrmse: dict = {}
    for g in distinct:
        test_mask = labels == g
        train_mask = ~test_mask
        model = make_model()
        model.fit(X[train_mask], y[train_mask])
        pred = model.predict(X[test_mask])
        group_mpe[g] = mpe(pred, y[test_mask])
        group_nrmse[g] = nrmse(pred, y[test_mask])
    return GroupValidationResult(
        group_test_mpe=group_mpe, group_test_nrmse=group_nrmse
    )
