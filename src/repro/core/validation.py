"""Repeated random sub-sampling validation (paper, Section IV-B4).

Model accuracy is estimated the paper's way: withhold a random 30% of the
data, train on the remaining 70%, measure MPE and NRMSE on both partitions,
and repeat one hundred times with fresh random splits; report the averages.
(The paper attributes the approach to the bootstrap literature [EfT94].)

The per-partition spread is also reported — the paper notes each model's
partition errors varied by "at most a quarter of a percent", i.e. tight
confidence intervals, and the reproduction's benches check the same.

Repetitions (and leave-one-group-out folds) are independent, so both
protocols accept ``workers=N`` to fan fits across a process pool — the
fitting counterpart of the collection layer's ``map_scenarios``.  The same
two rules keep ``workers=N`` bit-identical to ``workers=1``:

* **Stable split stream.**  Every split permutation is drawn up front from
  the caller's ``rng`` in repetition order, exactly as the serial loop
  always has, so the partitions are identical in both modes (and identical
  to historical serial runs).
* **Per-repetition fit streams.**  A model factory that accepts an ``rng``
  keyword receives one SeedSequence-spawned child generator per repetition
  (keyed by repetition index, independent of draw position), so a
  repetition's fit randomness never depends on which process ran it or on
  how many fits preceded it.  Factories without an ``rng`` parameter are
  called with no arguments, as before.

Each protocol aggregates a :class:`~repro.core.fitstats.FitStats` record
across repetitions (merged in repetition order, so every count is
worker-independent; wall time sums per-process fit time).
"""

from __future__ import annotations

import inspect
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..obs.trace import get_tracer
from .fitstats import GLOBAL_FIT_STATS, FitStats
from .metrics import mpe, nrmse

__all__ = [
    "GroupValidationResult",
    "RegressionModel",
    "ValidationResult",
    "leave_one_group_out",
    "repeated_random_subsampling",
]


class RegressionModel(Protocol):
    """Anything trainable on (X, y) that predicts from X."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionModel": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


def _accepts_rng(factory: Callable) -> bool:
    """Whether a model factory declares an ``rng`` parameter.

    Factories that do (e.g. ``functools.partial(make_model, kind, fs)``
    from the methodology layer) receive one spawned child generator per
    repetition; plain zero-argument factories are called as before.
    """
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    return "rng" in params


def _spawn_streams(
    rng: np.random.Generator, count: int
) -> list[np.random.Generator]:
    """One child generator per repetition (same scheme as the harness).

    Children derive from the generator's SeedSequence spawn counter, not
    its draw position, so the i-th child is fixed no matter how many
    values (e.g. split permutations) were drawn in between.
    """
    try:
        return list(rng.spawn(count))
    except TypeError:  # bit generator built without a seed sequence
        root = np.random.SeedSequence(int(rng.integers(2**63)))
        return [np.random.default_rng(child) for child in root.spawn(count)]


def _fit_and_score(
    make_model: Callable,
    X: np.ndarray,
    y: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    fit_rng: np.random.Generator | None,
    stats: FitStats,
) -> tuple[float, float, float, float]:
    """Train one fresh model on a split and score both partitions."""
    started = time.perf_counter()
    model = make_model(rng=fit_rng) if fit_rng is not None else make_model()
    model.fit(X[train_idx], y[train_idx])
    elapsed = time.perf_counter() - started
    fit_stats = getattr(model, "fit_stats_", None)
    if isinstance(fit_stats, FitStats):
        stats.merge(fit_stats)
    else:
        # Models without their own record (e.g. the linear model) still
        # count: once here, once in the process-wide aggregate.  (Neural
        # fits feed the global from inside ``fit`` instead.)
        stats.record_fit(wall_time_s=elapsed)
        GLOBAL_FIT_STATS.record_fit(wall_time_s=elapsed)
    pred_train = model.predict(X[train_idx])
    pred_test = model.predict(X[test_idx])
    return (
        mpe(pred_train, y[train_idx]),
        mpe(pred_test, y[test_idx]),
        nrmse(pred_train, y[train_idx]),
        nrmse(pred_test, y[test_idx]),
    )


# Worker-process state for the validation pool: the dataset and factory are
# shipped once per worker via the pool initializer, not per task.
_FIT_POOL: tuple | None = None


def _init_fit_pool(make_model: Callable, X: np.ndarray, y: np.ndarray) -> None:
    global _FIT_POOL
    _FIT_POOL = (make_model, X, y)


def _run_fit_chunk(chunk):
    pool_state = _FIT_POOL
    assert pool_state is not None, "fit pool used before initialization"
    make_model, X, y = pool_state
    stats = FitStats()
    results = [
        (index, _fit_and_score(make_model, X, y, train_idx, test_idx, fit_rng, stats))
        for index, train_idx, test_idx, fit_rng in chunk
    ]
    return results, stats


def _map_splits(
    make_model: Callable,
    X: np.ndarray,
    y: np.ndarray,
    splits: list,
    fit_rngs: list,
    stats: FitStats,
    workers: int,
    *,
    chunks_per_worker: int = 4,
) -> list[tuple[float, float, float, float]]:
    """Score every ``(train_idx, test_idx)`` split, in order.

    ``workers=1`` runs inline; otherwise splits are chunked across a
    process pool, results are reassembled in split order, and each chunk's
    :class:`FitStats` is merged back in chunk order — both of which keep
    the parallel path's outputs and counters identical to serial.
    """
    tasks = [
        (index, train_idx, test_idx, fit_rngs[index])
        for index, (train_idx, test_idx) in enumerate(splits)
    ]
    tracer = get_tracer()
    if workers == 1 or len(tasks) <= 1:
        rows = []
        for index, train_idx, test_idx, fit_rng in tasks:
            with tracer.span("validation.repetition", repetition=index):
                rows.append(
                    _fit_and_score(
                        make_model, X, y, train_idx, test_idx, fit_rng, stats
                    )
                )
        return rows
    n_chunks = min(len(tasks), workers * chunks_per_worker)
    chunk_size = -(-len(tasks) // n_chunks)
    chunks = [
        tasks[start : start + chunk_size]
        for start in range(0, len(tasks), chunk_size)
    ]
    results: list = [None] * len(tasks)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_fit_pool,
        initargs=(make_model, X, y),
    ) as pool:
        for chunk_results, chunk_stats in pool.map(_run_fit_chunk, chunks):
            stats.merge(chunk_stats)
            # Worker processes fed their own (discarded) global aggregate;
            # fold the chunk's counters into this process's record instead.
            GLOBAL_FIT_STATS.merge(chunk_stats)
            for index, row in chunk_results:
                results[index] = row
    return results


@dataclass(frozen=True)
class ValidationResult:
    """Per-repetition error arrays plus their summary statistics."""

    train_mpe: np.ndarray
    test_mpe: np.ndarray
    train_nrmse: np.ndarray
    test_nrmse: np.ndarray
    fit_stats: FitStats | None = field(default=None, compare=False)

    @property
    def repetitions(self) -> int:
        """Number of random partitions evaluated."""
        return self.train_mpe.size

    @property
    def mean_train_mpe(self) -> float:
        """Average training MPE across partitions (a Figure 1/2 point)."""
        return float(self.train_mpe.mean())

    @property
    def mean_test_mpe(self) -> float:
        """Average testing MPE across partitions (a Figure 1/2 point)."""
        return float(self.test_mpe.mean())

    @property
    def mean_train_nrmse(self) -> float:
        """Average training NRMSE across partitions (a Figure 3/4 point)."""
        return float(self.train_nrmse.mean())

    @property
    def mean_test_nrmse(self) -> float:
        """Average testing NRMSE across partitions (a Figure 3/4 point)."""
        return float(self.test_nrmse.mean())

    @property
    def test_mpe_std(self) -> float:
        """Partition-to-partition spread of the testing MPE."""
        return float(self.test_mpe.std())


def repeated_random_subsampling(
    make_model: Callable[[], RegressionModel],
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.3,
    repetitions: int = 100,
    rng: np.random.Generator | None = None,
    workers: int = 1,
    stats: FitStats | None = None,
) -> ValidationResult:
    """Estimate a model family's accuracy by repeated random splits.

    Parameters
    ----------
    make_model:
        Factory producing a fresh, unfitted model per repetition.  A
        factory declaring an ``rng`` parameter receives one spawned child
        generator per repetition (see the module docstring); with
        ``workers > 1`` it must also be picklable — a module-level
        function or :func:`functools.partial`, not a lambda.
    X, y:
        The full dataset; each repetition withholds ``test_fraction`` of
        the rows (at least two so NRMSE is defined on the test partition,
        at most all-but-two so the model can fit).
    test_fraction:
        Withheld share; the paper uses 0.3.
    repetitions:
        Number of random partitions; the paper uses 100.
    rng:
        Split randomness (seeded for reproducibility).
    workers:
        Process-pool width; repetitions fan out across workers with
        results bit-identical to ``workers=1``.
    stats:
        Optional shared :class:`FitStats` that additionally accumulates
        the aggregate recorded on the returned result.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] != y.size:
        raise ValueError("X must be (n, k) with y of length n")
    n = X.shape[0]
    if n < 4:
        raise ValueError(
            "need at least four samples to split into train/test partitions "
            "of two or more rows each"
        )
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test fraction must be in (0, 1)")
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)

    # A 1-sample test split always has zero range, which makes NRMSE
    # undefined; keep both partitions at >= 2 rows.
    n_test = min(max(int(round(n * test_fraction)), 2), n - 2)
    # Permutations are drawn up front, in repetition order — the same
    # stream positions the historical serial loop consumed.
    splits = []
    for _ in range(repetitions):
        perm = rng.permutation(n)
        splits.append((perm[n_test:], perm[:n_test]))  # (train, test)
    if _accepts_rng(make_model):
        fit_rngs: list = _spawn_streams(rng, repetitions)
    else:
        fit_rngs = [None] * repetitions

    aggregate = FitStats()
    with get_tracer().span(
        "validation.subsampling",
        repetitions=repetitions,
        samples=n,
        workers=workers,
    ):
        rows = _map_splits(
            make_model, X, y, splits, fit_rngs, aggregate, workers
        )
    scores = np.asarray(rows)
    if stats is not None:
        stats.merge(aggregate)
    return ValidationResult(
        train_mpe=scores[:, 0],
        test_mpe=scores[:, 1],
        train_nrmse=scores[:, 2],
        test_nrmse=scores[:, 3],
        fit_stats=aggregate,
    )


@dataclass(frozen=True)
class GroupValidationResult:
    """Per-group held-out errors from leave-one-group-out validation."""

    group_test_mpe: dict
    group_test_nrmse: dict
    fit_stats: FitStats | None = field(default=None, compare=False)

    @property
    def groups(self) -> list:
        """The held-out groups, in evaluation order."""
        return list(self.group_test_mpe)

    @property
    def mean_test_mpe(self) -> float:
        """Average held-out MPE across groups."""
        return float(np.mean(list(self.group_test_mpe.values())))

    @property
    def worst_group(self):
        """The group hardest to predict when excluded from training."""
        return max(self.group_test_mpe, key=self.group_test_mpe.get)


def leave_one_group_out(
    make_model: Callable[[], RegressionModel],
    X: np.ndarray,
    y: np.ndarray,
    groups: list,
    *,
    workers: int = 1,
    rng: np.random.Generator | None = None,
    stats: FitStats | None = None,
) -> GroupValidationResult:
    """Leave-one-group-out cross-validation.

    For each distinct group label (e.g. the target application's name),
    train on every other group's rows and test on the held-out group.
    This is a strictly harder protocol than the paper's random
    sub-sampling: the model must predict for a *target application it has
    never seen*, from baseline-derived features alone.

    Parameters
    ----------
    make_model:
        Fresh-model factory per fold (picklable when ``workers > 1``; an
        ``rng``-accepting factory gets one spawned stream per fold).
    X, y:
        The full dataset.
    groups:
        One hashable label per row; folds are the distinct labels, in
        first-seen order.
    workers:
        Process-pool width; folds fan out with results identical to
        ``workers=1``.
    rng:
        Root generator for per-fold fit streams (only consulted for
        ``rng``-accepting factories; defaults to a fixed seed).
    stats:
        Optional shared :class:`FitStats` that additionally accumulates
        the aggregate recorded on the returned result.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] != y.size:
        raise ValueError("X must be (n, k) with y of length n")
    if len(groups) != y.size:
        raise ValueError("need one group label per row")
    labels = np.asarray(groups)
    distinct: list = []
    for g in groups:
        if g not in distinct:
            distinct.append(g)
    if len(distinct) < 2:
        raise ValueError("leave-one-group-out needs at least two groups")
    for g in distinct:
        members = int((labels == g).sum())
        if members < 2:
            raise ValueError(
                f"group {g!r} has only {members} row; NRMSE is undefined on "
                f"a singleton held-out group — every group needs >= 2 rows"
            )

    if workers < 1:
        raise ValueError("workers must be >= 1")

    indices = np.arange(y.size)
    splits = []
    for g in distinct:
        test_mask = labels == g
        splits.append((indices[~test_mask], indices[test_mask]))
    if _accepts_rng(make_model):
        if rng is None:
            rng = np.random.default_rng(0)
        fit_rngs: list = _spawn_streams(rng, len(distinct))
    else:
        fit_rngs = [None] * len(distinct)

    aggregate = FitStats()
    with get_tracer().span(
        "validation.leave_one_group_out",
        folds=len(distinct),
        samples=int(y.size),
        workers=workers,
    ):
        rows = _map_splits(
            make_model, X, y, splits, fit_rngs, aggregate, workers
        )
    if stats is not None:
        stats.merge(aggregate)
    group_mpe = {g: rows[i][1] for i, g in enumerate(distinct)}
    group_nrmse = {g: rows[i][3] for i, g in enumerate(distinct)}
    return GroupValidationResult(
        group_test_mpe=group_mpe,
        group_test_nrmse=group_nrmse,
        fit_stats=aggregate,
    )
