"""Feed-forward neural network model (paper, Section III-D).

One hidden layer of tanh units and a linear output, trained by scaled
conjugate gradients (:mod:`repro.core.scg`) on mean squared error with a
small L2 penalty.  "The neural networks used in this work vary in the
number of nodes used from ten to twenty depending on the model feature set"
— :func:`default_hidden_units` implements that rule.

Inputs and the target are standardized internally; predictions are returned
in original units.  The network captures the nonlinear cache/bandwidth
contention effects the linear models cannot (Section V-D).

Training cost dominates the validation benches, so two fast paths exist:

* the serial restart loop reuses one preallocated workspace across all
  gradient evaluations of a fit (no per-iteration ``(n, h)`` allocations);
* ``batched_restarts=True`` advances all ``n_restarts`` weight vectors as
  one ``(R, n_params)`` stack through :func:`~repro.core.scg.
  minimize_scg_batched`, turning ``R`` serial SCG runs into stacked 3-D
  matmuls.  Initial weights are drawn in the identical order, restart
  selection is the identical first-of-minima rule, and — because both
  paths use the same accumulation forms for every reduction (stacked
  matmuls dispatch per-slice gemms; dots are einsum on both sides) —
  per-restart trajectories and losses are bit-for-bit identical to the
  serial path.  The mode stays a constructor opt-in so the reference
  serial path remains the default contract.

Every fit leaves a :class:`~repro.core.fitstats.FitStats` record in
``fit_stats_`` and accumulates it into the instance-level ``stats``.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.trace import get_tracer
from .fitstats import GLOBAL_FIT_STATS, FitStats
from .scg import minimize_scg, minimize_scg_batched

__all__ = ["NeuralNetworkModel", "default_hidden_units"]


def default_hidden_units(num_features: int) -> int:
    """Paper's hidden-layer sizing: 10 nodes for the smallest feature set,
    growing with feature count, capped at 20."""
    if num_features < 1:
        raise ValueError("need at least one feature")
    return int(min(20, 10 + max(0, (num_features - 1)) * 10 // 7))


class NeuralNetworkModel:
    """A 1-hidden-layer tanh regressor trained with SCG.

    Parameters
    ----------
    hidden_units:
        Hidden layer width; ``None`` selects the paper's rule from the
        feature count at fit time.
    l2:
        L2 weight penalty (on weights, not biases).
    max_iterations:
        SCG iteration cap.
    n_restarts:
        Independent weight initializations; the best final loss wins.
        SCG is deterministic given an initialization, so restarts are the
        only stochastic element — they consume the caller's ``rng``.
    batched_restarts:
        Advance all restarts as one stacked optimization (fast path; see
        the module docstring for the accuracy contract).
    stats:
        Optional shared :class:`~repro.core.fitstats.FitStats` to
        accumulate into; a private record is created when omitted.
    """

    def __init__(
        self,
        hidden_units: int | None = None,
        *,
        l2: float = 1e-4,
        max_iterations: int = 300,
        n_restarts: int = 2,
        batched_restarts: bool = False,
        stats: FitStats | None = None,
    ) -> None:
        if hidden_units is not None and hidden_units < 1:
            raise ValueError("hidden layer needs at least one unit")
        if l2 < 0.0:
            raise ValueError("L2 penalty must be non-negative")
        if max_iterations < 1:
            raise ValueError("need at least one SCG iteration")
        if n_restarts < 1:
            raise ValueError("need at least one initialization")
        self.hidden_units = hidden_units
        self.l2 = l2
        self.max_iterations = max_iterations
        self.n_restarts = n_restarts
        self.batched_restarts = bool(batched_restarts)
        self.stats = stats if stats is not None else FitStats()
        self.fit_stats_: FitStats | None = None
        self._params: np.ndarray | None = None
        self._shapes: tuple[int, int] | None = None  # (d, h)
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None
        self._y_mean: float = 0.0
        self._y_scale: float = 1.0
        self.training_loss_: float | None = None
        self.restart_losses_: np.ndarray | None = None

    # ----------------------------------------------------------- plumbing

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called."""
        return self._params is not None

    def _unpack(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        d, h = self._shapes  # type: ignore[misc]
        i = 0
        W1 = params[i : i + d * h].reshape(d, h); i += d * h
        b1 = params[i : i + h]; i += h
        W2 = params[i : i + h]; i += h
        b2 = float(params[i])
        return W1, b1, W2, b2

    def _loss_and_grad(
        self,
        params: np.ndarray,
        Z: np.ndarray,
        t: np.ndarray,
        work: dict | None = None,
    ) -> tuple[float, np.ndarray]:
        """Loss and gradient at ``params``.

        ``work`` is an optional per-fit scratch dict: the ``(n, h)``
        activation/backprop buffers are reused across calls, so the hot
        restart loop allocates only the returned gradient vector (which
        must stay fresh — the SCG caller holds several gradients at once).
        """
        n = Z.shape[0]
        d, h = self._shapes  # type: ignore[misc]
        W1, b1, W2, b2 = self._unpack(params)
        if work is None:
            work = {}
        H = work.get("H")
        if H is None or H.shape != (n, h):
            H = work["H"] = np.empty((n, h))
            work["D"] = np.empty((n, h))
            work["out"] = np.empty(n)
        D = work["D"]
        out = work["out"]

        # Accumulation forms (column matmuls, einsum reductions) mirror the
        # batched path exactly so the two modes stay bit-for-bit in step.
        np.matmul(Z, W1, out=H)
        H += b1
        np.tanh(H, out=H)                     # (n, h) activations
        np.matmul(H, W2[:, None], out=out[:, None])
        out += b2
        err = out
        err -= t
        loss = 0.5 * float(np.einsum("n,n->", err, err)) / n + 0.5 * self.l2 * (
            float(np.einsum("dh,dh->", W1, W1)) + float(np.einsum("h,h->", W2, W2))
        )
        # Backpropagation, assembled directly into the gradient vector.
        err /= n                               # d_out, in place
        grad = np.empty(params.size)
        gW1 = grad[: d * h].reshape(d, h)
        gb1 = grad[d * h : d * h + h]
        gW2 = grad[d * h + h : d * h + 2 * h]
        np.matmul(H.T, err[:, None], out=gW2[:, None])
        gW2 += self.l2 * W2
        grad[-1] = err.sum()                   # gb2
        np.multiply(H, H, out=D)
        np.subtract(1.0, D, out=D)
        D *= W2
        D *= err[:, None]                      # dH, (n, h)
        np.matmul(Z.T, D, out=gW1)
        gW1 += self.l2 * W1
        D.sum(axis=0, out=gb1)
        return loss, grad

    def _loss_and_grad_batched(
        self,
        P: np.ndarray,
        Z: np.ndarray,
        t: np.ndarray,
        work: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched loss/gradient over a ``(R, n_params)`` restart stack.

        One fused forward/backward pass over all members: ``Z`` broadcasts
        against the ``(R, d, h)`` weight stack, so each heavy step is a
        single stacked 3-D matmul instead of ``R`` small 2-D ones.  Like
        the serial path, ``work`` caches the ``(R, n, h)`` scratch stacks
        (keyed by ``R``, which shrinks as restarts converge and freeze);
        only the returned gradient stack is freshly allocated.  Every
        accumulation uses the same per-slice form as the serial path, so
        the two modes produce bit-identical trajectories.
        """
        n = Z.shape[0]
        d, h = self._shapes  # type: ignore[misc]
        R = P.shape[0]
        W1 = P[:, : d * h].reshape(R, d, h)
        b1 = P[:, d * h : d * h + h]
        W2 = P[:, d * h + h : d * h + 2 * h]
        b2 = P[:, -1]
        if work is None:
            work = {}
        buffers = work.get(R)
        if buffers is None:
            buffers = work[R] = (np.empty((R, n, h)), np.empty((R, n, 1)))
        H, out3 = buffers

        np.matmul(Z, W1, out=H)
        H += b1[:, None, :]
        np.tanh(H, out=H)                                        # (R, n, h)
        np.matmul(H, W2[:, :, None], out=out3)
        err = out3[:, :, 0]
        err += b2[:, None]
        err -= t                                                 # (R, n)
        loss = 0.5 * np.einsum("rn,rn->r", err, err) / n + 0.5 * self.l2 * (
            np.einsum("rdh,rdh->r", W1, W1) + np.einsum("rh,rh->r", W2, W2)
        )
        # Backpropagation across the stack.
        err /= n                                                 # d_out
        grad = np.empty((R, P.shape[1]))
        gW1 = grad[:, : d * h].reshape(R, d, h)
        gb1 = grad[:, d * h : d * h + h]
        gW2 = grad[:, d * h + h : d * h + 2 * h]
        gW2[:] = np.matmul(H.transpose(0, 2, 1), err[:, :, None])[:, :, 0]
        gW2 += self.l2 * W2
        grad[:, -1] = err.sum(axis=1)                            # gb2
        dH = H                                                   # reuse: H is dead
        np.multiply(H, H, out=dH)
        np.subtract(1.0, dH, out=dH)
        dH *= W2[:, None, :]
        dH *= err[:, :, None]                                    # (R, n, h)
        gW1[:] = np.matmul(Z.T, dH)
        gW1 += self.l2 * W1
        dH.sum(axis=1, out=gb1)
        return loss, grad

    def _draw_initializations(
        self, rng: np.random.Generator, d: int, h: int
    ) -> np.ndarray:
        """The ``(n_restarts, n_params)`` initial weight stack.

        Drawn restart-by-restart in the exact order of the historical
        serial loop, so serial and batched fits consume the caller's
        ``rng`` identically.
        """
        rows = [
            np.concatenate(
                [
                    rng.normal(0.0, 1.0 / np.sqrt(d), size=d * h),
                    np.zeros(h),
                    rng.normal(0.0, 1.0 / np.sqrt(h), size=h),
                    [0.0],
                ]
            )
            for _ in range(self.n_restarts)
        ]
        return np.stack(rows)

    @staticmethod
    def _select_best(losses: np.ndarray) -> int:
        """First index of the minimal finite loss (the serial ``<`` rule)."""
        finite = np.isfinite(losses)
        if not finite.any():
            raise RuntimeError(
                f"every SCG restart diverged to a non-finite loss "
                f"({losses.tolist()}); the training data is likely "
                f"degenerate — check for non-finite features or targets"
            )
        masked = np.where(finite, losses, np.inf)
        return int(np.argmin(masked))

    # ---------------------------------------------------------------- API

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
    ) -> "NeuralNetworkModel":
        """Train on ``(n_samples, n_features)`` inputs and time targets."""
        started = time.perf_counter()
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D (samples x features)")
        if X.shape[0] != y.size:
            raise ValueError("X and y disagree on the number of samples")
        if X.shape[0] < 2:
            raise ValueError("need at least two training samples")
        if rng is None:
            rng = np.random.default_rng(0)

        d = X.shape[1]
        h = self.hidden_units if self.hidden_units is not None else default_hidden_units(d)
        self._shapes = (d, h)

        self._x_mean = X.mean(axis=0)
        x_std = X.std(axis=0)
        self._x_scale = np.where(x_std > 0.0, x_std, 1.0)
        self._y_mean = float(y.mean())
        y_std = float(y.std())
        self._y_scale = y_std if y_std > 0.0 else 1.0
        Z = (X - self._x_mean) / self._x_scale
        t = (y - self._y_mean) / self._y_scale

        W0 = self._draw_initializations(rng, d, h)
        record = FitStats()
        tracer = get_tracer()
        with tracer.span(
            "fit.neural",
            samples=X.shape[0],
            features=d,
            hidden=h,
            restarts=self.n_restarts,
            batched=self.batched_restarts,
        ) as fit_span:
            if self.batched_restarts:
                bwork: dict = {}
                with tracer.span("fit.scg_batched") as span:
                    result = minimize_scg_batched(
                        lambda P: self._loss_and_grad_batched(P, Z, t, bwork),
                        W0,
                        max_iterations=self.max_iterations,
                    )
                    span.set(iterations=int(result.iterations.sum()))
                losses = result.fun
                best = self._select_best(losses)
                best_params = result.x[best]
                record.record_fit(
                    restarts=self.n_restarts,
                    scg_iterations=int(result.iterations.sum()),
                    function_evals=result.function_evals,
                    gradient_evals=result.gradient_evals,
                    wall_time_s=time.perf_counter() - started,
                )
            else:
                work: dict = {}
                objective = lambda p: self._loss_and_grad(p, Z, t, work)  # noqa: E731
                results = []
                for restart, w0 in enumerate(W0):
                    with tracer.span("fit.scg_restart", restart=restart) as span:
                        res = minimize_scg(
                            objective, w0, max_iterations=self.max_iterations
                        )
                        span.set(iterations=res.iterations, loss=res.fun)
                    results.append(res)
                losses = np.array([res.fun for res in results])
                best = self._select_best(losses)
                best_params = results[best].x
                record.record_fit(
                    restarts=self.n_restarts,
                    scg_iterations=sum(res.iterations for res in results),
                    function_evals=sum(res.function_evals for res in results),
                    gradient_evals=sum(res.gradient_evals for res in results),
                    wall_time_s=time.perf_counter() - started,
                )
            fit_span.set(loss=float(losses[best]))
        self._params = best_params
        self.training_loss_ = float(losses[best])
        self.restart_losses_ = losses
        self.fit_stats_ = record
        self.stats.merge(record)
        GLOBAL_FIT_STATS.merge(record)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted co-located execution times for new samples."""
        if not self.is_fitted:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        Z = (X - self._x_mean) / self._x_scale
        W1, b1, W2, b2 = self._unpack(self._params)  # type: ignore[arg-type]
        out = np.tanh(Z @ W1 + b1) @ W2 + b2
        return out * self._y_scale + self._y_mean

    def predict_stable(self, X: np.ndarray) -> np.ndarray:
        """Like :meth:`predict`, but row-stable across batch shapes.

        BLAS matmul kernels vary their accumulation order with the operand
        shapes, so batched and single-row predictions can differ in the
        last bits.  Here both layers reduce each row with shape-independent
        broadcast-sums, making a sample's prediction identical no matter
        the batch it rides in — required by the serving micro-batcher.
        Slower than :meth:`predict`; fine at serving batch sizes.
        """
        if not self.is_fitted:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        Z = (X - self._x_mean) / self._x_scale
        W1, b1, W2, b2 = self._unpack(self._params)  # type: ignore[arg-type]
        hidden = np.tanh((Z[:, :, None] * W1[None, :, :]).sum(axis=1) + b1)
        out = (hidden * W2).sum(axis=1) + b2
        return out * self._y_scale + self._y_mean
