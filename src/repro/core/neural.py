"""Feed-forward neural network model (paper, Section III-D).

One hidden layer of tanh units and a linear output, trained by scaled
conjugate gradients (:mod:`repro.core.scg`) on mean squared error with a
small L2 penalty.  "The neural networks used in this work vary in the
number of nodes used from ten to twenty depending on the model feature set"
— :func:`default_hidden_units` implements that rule.

Inputs and the target are standardized internally; predictions are returned
in original units.  The network captures the nonlinear cache/bandwidth
contention effects the linear models cannot (Section V-D).
"""

from __future__ import annotations

import numpy as np

from .scg import minimize_scg

__all__ = ["NeuralNetworkModel", "default_hidden_units"]


def default_hidden_units(num_features: int) -> int:
    """Paper's hidden-layer sizing: 10 nodes for the smallest feature set,
    growing with feature count, capped at 20."""
    if num_features < 1:
        raise ValueError("need at least one feature")
    return int(min(20, 10 + max(0, (num_features - 1)) * 10 // 7))


class NeuralNetworkModel:
    """A 1-hidden-layer tanh regressor trained with SCG.

    Parameters
    ----------
    hidden_units:
        Hidden layer width; ``None`` selects the paper's rule from the
        feature count at fit time.
    l2:
        L2 weight penalty (on weights, not biases).
    max_iterations:
        SCG iteration cap.
    n_restarts:
        Independent weight initializations; the best final loss wins.
        SCG is deterministic given an initialization, so restarts are the
        only stochastic element — they consume the caller's ``rng``.
    """

    def __init__(
        self,
        hidden_units: int | None = None,
        *,
        l2: float = 1e-4,
        max_iterations: int = 300,
        n_restarts: int = 2,
    ) -> None:
        if hidden_units is not None and hidden_units < 1:
            raise ValueError("hidden layer needs at least one unit")
        if l2 < 0.0:
            raise ValueError("L2 penalty must be non-negative")
        if n_restarts < 1:
            raise ValueError("need at least one initialization")
        self.hidden_units = hidden_units
        self.l2 = l2
        self.max_iterations = max_iterations
        self.n_restarts = n_restarts
        self._params: np.ndarray | None = None
        self._shapes: tuple[int, int] | None = None  # (d, h)
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None
        self._y_mean: float = 0.0
        self._y_scale: float = 1.0
        self.training_loss_: float | None = None

    # ----------------------------------------------------------- plumbing

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called."""
        return self._params is not None

    def _unpack(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        d, h = self._shapes  # type: ignore[misc]
        i = 0
        W1 = params[i : i + d * h].reshape(d, h); i += d * h
        b1 = params[i : i + h]; i += h
        W2 = params[i : i + h]; i += h
        b2 = float(params[i])
        return W1, b1, W2, b2

    def _loss_and_grad(
        self, params: np.ndarray, Z: np.ndarray, t: np.ndarray
    ) -> tuple[float, np.ndarray]:
        n = Z.shape[0]
        W1, b1, W2, b2 = self._unpack(params)
        H = np.tanh(Z @ W1 + b1)            # (n, h)
        out = H @ W2 + b2                    # (n,)
        err = out - t
        loss = 0.5 * float(err @ err) / n + 0.5 * self.l2 * (
            float((W1 * W1).sum()) + float(W2 @ W2)
        )
        # Backpropagation.
        d_out = err / n                       # (n,)
        gW2 = H.T @ d_out + self.l2 * W2      # (h,)
        gb2 = float(d_out.sum())
        dH = np.outer(d_out, W2) * (1.0 - H * H)  # (n, h)
        gW1 = Z.T @ dH + self.l2 * W1         # (d, h)
        gb1 = dH.sum(axis=0)                  # (h,)
        grad = np.concatenate([gW1.ravel(), gb1, gW2, [gb2]])
        return loss, grad

    # ---------------------------------------------------------------- API

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
    ) -> "NeuralNetworkModel":
        """Train on ``(n_samples, n_features)`` inputs and time targets."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D (samples x features)")
        if X.shape[0] != y.size:
            raise ValueError("X and y disagree on the number of samples")
        if X.shape[0] < 2:
            raise ValueError("need at least two training samples")
        if rng is None:
            rng = np.random.default_rng(0)

        d = X.shape[1]
        h = self.hidden_units if self.hidden_units is not None else default_hidden_units(d)
        self._shapes = (d, h)

        self._x_mean = X.mean(axis=0)
        x_std = X.std(axis=0)
        self._x_scale = np.where(x_std > 0.0, x_std, 1.0)
        self._y_mean = float(y.mean())
        y_std = float(y.std())
        self._y_scale = y_std if y_std > 0.0 else 1.0
        Z = (X - self._x_mean) / self._x_scale
        t = (y - self._y_mean) / self._y_scale

        best_params: np.ndarray | None = None
        best_loss = np.inf
        n_params = d * h + h + h + 1
        for _ in range(self.n_restarts):
            w0 = np.concatenate(
                [
                    rng.normal(0.0, 1.0 / np.sqrt(d), size=d * h),
                    np.zeros(h),
                    rng.normal(0.0, 1.0 / np.sqrt(h), size=h),
                    [0.0],
                ]
            )
            assert w0.size == n_params
            result = minimize_scg(
                lambda p: self._loss_and_grad(p, Z, t),
                w0,
                max_iterations=self.max_iterations,
            )
            if result.fun < best_loss:
                best_loss = result.fun
                best_params = result.x
        assert best_params is not None
        self._params = best_params
        self.training_loss_ = float(best_loss)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted co-located execution times for new samples."""
        if not self.is_fitted:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        Z = (X - self._x_mean) / self._x_scale
        W1, b1, W2, b2 = self._unpack(self._params)  # type: ignore[arg-type]
        out = np.tanh(Z @ W1 + b1) @ W2 + b2
        return out * self._y_scale + self._y_mean

    def predict_stable(self, X: np.ndarray) -> np.ndarray:
        """Like :meth:`predict`, but row-stable across batch shapes.

        BLAS matmul kernels vary their accumulation order with the operand
        shapes, so batched and single-row predictions can differ in the
        last bits.  Here both layers reduce each row with shape-independent
        broadcast-sums, making a sample's prediction identical no matter
        the batch it rides in — required by the serving micro-batcher.
        Slower than :meth:`predict`; fine at serving batch sizes.
        """
        if not self.is_fitted:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        Z = (X - self._x_mean) / self._x_scale
        W1, b1, W2, b2 = self._unpack(self._params)  # type: ignore[arg-type]
        hidden = np.tanh((Z[:, :, None] * W1[None, :, :]).sum(axis=1) + b1)
        out = (hidden * W2).sum(axis=1) + b2
        return out * self._y_scale + self._y_mean
