"""Offline trace analysis: load a captured trace and render its shape.

``repro obs summary out.json`` answers the two questions a captured trace
exists for without leaving the terminal:

* **where did the time go** — spans aggregated by name (count, total,
  mean, max), sorted by total self-reported duration; and
* **what called what** — the span tree per trace, reconstructed from the
  ``span_id``/``parent_id`` args the exporter stamps on every event, with
  durations and attributes (a serving request's ``request_id`` shows up
  right on its ``serve.request`` span).

The loader accepts both the ``{"traceEvents": [...]}`` envelope the
exporter writes and a bare event array, so traces post-processed by other
tools still load.  For the full timeline UI, open the same file in
Perfetto (https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["SpanNode", "load_trace", "render_summary", "span_forest"]

#: Attributes that are exporter plumbing, not user-level span attributes.
_INTERNAL_ARGS = ("trace_id", "span_id", "parent_id")


def load_trace(path) -> list[dict]:
    """Complete-span events (``ph == "X"``) from a trace file.

    Accepts the Chrome ``{"traceEvents": [...]}`` envelope, a bare event
    array, or an OTLP/JSON file (``{"resourceSpans": [...]}``, as written
    by :mod:`repro.obs.otlp`) — all three render through the same
    summary, so multi-process collector exports and in-process captures
    read identically.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "resourceSpans" in payload:
        from .otlp import otlp_to_events

        events = otlp_to_events(payload)
    elif isinstance(payload, dict):
        events = payload.get("traceEvents", [])
    elif isinstance(payload, list):
        events = payload
    else:
        raise ValueError(
            f"{path} is not a trace file: expected an object with "
            f"'traceEvents' or 'resourceSpans', or a bare event array"
        )
    spans = [
        e for e in events
        if isinstance(e, dict) and e.get("ph") == "X" and "name" in e
    ]
    if not spans:
        raise ValueError(f"{path} contains no complete-span ('X') events")
    return spans


@dataclass
class SpanNode:
    """One span in the reconstructed tree."""

    name: str
    start_us: float
    duration_us: float
    trace_id: str
    span_id: str
    parent_id: str | None
    attributes: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds."""
        return self.duration_us / 1e3


def _node(event: dict) -> SpanNode:
    args = event.get("args") or {}
    return SpanNode(
        name=str(event["name"]),
        start_us=float(event.get("ts", 0.0)),
        duration_us=float(event.get("dur", 0.0)),
        trace_id=str(args.get("trace_id", "")),
        span_id=str(args.get("span_id", "")),
        parent_id=(
            str(args["parent_id"]) if args.get("parent_id") is not None else None
        ),
        attributes={
            k: v for k, v in args.items() if k not in _INTERNAL_ARGS
        },
    )


def span_forest(events: list[dict]) -> list[SpanNode]:
    """Reconstruct the span trees (roots in start order).

    Spans whose parent is missing from the capture (ring-buffer eviction,
    partial export) become roots, so a truncated trace still renders.
    """
    nodes = [_node(e) for e in events]
    by_id = {n.span_id: n for n in nodes if n.span_id}
    roots: list[SpanNode] = []
    for node in nodes:
        parent = by_id.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes:
        node.children.sort(key=lambda c: c.start_us)
    roots.sort(key=lambda n: n.start_us)
    return roots


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def _render_node(node: SpanNode, depth: int, lines: list[str], budget: list[int]) -> None:
    if budget[0] <= 0:
        return
    budget[0] -= 1
    lines.append(
        f"{'  ' * depth}{node.name}  {node.duration_ms:.3f} ms"
        f"{_format_attrs(node.attributes)}"
    )
    for child in node.children:
        _render_node(child, depth + 1, lines, budget)


def render_summary(
    events: list[dict], *, top: int = 15, tree_spans: int = 120
) -> str:
    """Aggregate table plus span trees, as printable text.

    ``top`` caps the by-name aggregate rows; ``tree_spans`` caps the total
    spans printed across all trees (deep captures stay readable).
    """
    if top < 1 or tree_spans < 1:
        raise ValueError("top and tree_spans must be >= 1")
    totals: dict[str, list[float]] = {}
    for event in events:
        dur = float(event.get("dur", 0.0)) / 1e3
        entry = totals.setdefault(str(event["name"]), [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += dur
        entry[2] = max(entry[2], dur)
    roots = span_forest(events)
    traces = {r.trace_id for r in roots if r.trace_id}

    lines = [
        f"trace summary: {len(events)} spans across "
        f"{max(len(traces), 1)} trace(s)",
        "",
        f"{'span':<38} {'count':>7} {'total ms':>11} {'mean ms':>10} "
        f"{'max ms':>10}",
    ]
    ranked = sorted(totals.items(), key=lambda kv: kv[1][1], reverse=True)
    for name, (count, total, peak) in ranked[:top]:
        lines.append(
            f"{name:<38} {count:>7} {total:>11.3f} "
            f"{total / count:>10.3f} {peak:>10.3f}"
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more span name(s)")

    lines.append("")
    lines.append("span tree:")
    budget = [tree_spans]
    for root in roots:
        _render_node(root, 1, lines, budget)
        if budget[0] <= 0:
            break
    shown = tree_spans - budget[0]
    if shown < len(events):
        lines.append(f"  ... {len(events) - shown} more span(s) not shown")
    return "\n".join(lines)
