"""One metrics registry for the whole stack.

Before this module existed the pipeline had three disconnected metric
islands — :class:`~repro.sim.solve_cache.EngineStats`,
:class:`~repro.core.fitstats.FitStats`, and the serving layer's
:class:`~repro.serve.metrics.ServingMetrics` — each with its own rendering.
:class:`MetricsRegistry` is the single place they meet: typed metric
families (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) with
labels, plus named *sources* (callables rendering pre-existing stats
records at scrape time), all emitted as one Prometheus text exposition
(version 0.0.4).

Label values are escaped per the exposition format (``\\``, ``\"``, and
newline), and every family — including sources, which are trusted to do
their own escaping via :func:`escape_label_value` — carries ``# HELP`` and
``# TYPE`` lines; ``tests/obs/test_prometheus_conformance.py`` holds the
whole merged scrape to that contract.

The module-level :func:`get_registry` returns the process-default registry
with the built-in simulation/fitting sources pre-installed (see
:mod:`repro.obs.adapters`); the prediction server builds its own registry
the same way so each server's scrape stays self-contained.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_value",
    "get_registry",
    "set_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket bounds (seconds-flavoured, wide dynamic range).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Exposition-friendly number formatting (NaN/Inf spelled out)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(names: tuple[str, ...], values: tuple, extra: str = "") -> str:
    parts = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared plumbing: name/help validation and label bookkeeping."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        self.name = name
        self.help_text = " ".join(str(help_text).split()) or name
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.type_name}",
        ]


class Counter(_Metric):
    """Monotonically increasing counter with optional labels."""

    type_name = "counter"

    def __init__(self, name, help_text, labelnames=()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the labelled series (0.0 if never bumped)."""
        return self._values.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {format_value(value)}")
        return lines


class Gauge(_Metric):
    """Point-in-time value; supports both pushed and pulled samples.

    ``set()`` pushes a value; ``set_function()`` registers a callable
    evaluated at scrape time (how the server exports the live batcher
    backlog without polling).
    """

    type_name = "gauge"

    def __init__(self, name, help_text, labelnames=()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}
        self._functions: dict[tuple, Callable[[], float]] = {}

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Evaluate ``fn`` at every scrape for the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._functions[key] = fn

    def value(self, **labels) -> float:
        """Current value (evaluating a scrape function if registered)."""
        key = self._key(labels)
        fn = self._functions.get(key)
        if fn is not None:
            return float(fn())
        return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            samples = dict(self._values)
            functions = dict(self._functions)
        for key, fn in functions.items():
            try:
                samples[key] = float(fn())
            except Exception:  # noqa: BLE001 - a broken probe must not kill /metrics
                samples[key] = math.nan
        if not samples and not self.labelnames:
            samples = {(): 0.0}
        for key, value in sorted(samples.items()):
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {format_value(value)}")
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram with labels.

    Buckets are rendered cumulatively with the standard ``le`` label, a
    ``+Inf`` bucket equal to ``_count``, and ``_sum``/``_count`` series —
    the shape Prometheus' ``histogram_quantile`` expects.
    """

    type_name = "histogram"

    def __init__(self, name, help_text, labelnames=(), *, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} buckets must strictly increase")
        self.buckets = bounds
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        value = float(value)
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels) -> int:
        """Total observations in the labelled series."""
        return self._totals.get(self._key(labels), 0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
            totals = dict(self._totals)
        for key, counts in items:
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                le = _render_labels(
                    self.labelnames, key, extra=f'le="{format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            inf = _render_labels(self.labelnames, key, extra='le="+Inf"')
            lines.append(f"{self.name}_bucket{inf} {totals[key]}")
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{labels} {format_value(sums[key])}")
            lines.append(f"{self.name}_count{labels} {totals[key]}")
        return lines


class MetricsRegistry:
    """A named collection of metric families plus render-time sources.

    Families are created idempotently — asking for an existing name with
    the same type returns the existing family, so module-level
    instrumentation can ``registry.counter(...)`` freely; a type clash
    raises.  Sources are named render callables (each returning exposition
    text for metrics owned elsewhere, e.g. a ``ServingMetrics``); naming
    them makes re-registration replace rather than duplicate.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._sources: dict[str, Callable[[], str]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ families
    def _family(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name}, not {cls.type_name}"
                    )
                return existing
            metric = cls(name, help_text, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str, labelnames=()) -> Counter:
        """Get or create a counter family."""
        return self._family(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames=()) -> Gauge:
        """Get or create a gauge family."""
        return self._family(Gauge, name, help_text, labelnames)

    def histogram(
        self, name: str, help_text: str, labelnames=(), *, buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._family(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------- sources
    def register_source(self, name: str, render: Callable[[], str]) -> None:
        """Register (or replace) a named exposition source."""
        with self._lock:
            self._sources[name] = render

    def unregister_source(self, name: str) -> None:
        """Remove a named source (no-op if absent)."""
        with self._lock:
            self._sources.pop(name, None)

    @property
    def source_names(self) -> list[str]:
        """Registered source names, in registration order."""
        return list(self._sources)

    # ------------------------------------------------------------ scraping
    def render(self) -> str:
        """The full Prometheus text exposition: families then sources."""
        with self._lock:
            metrics = sorted(self._metrics.items())
            sources = list(self._sources.items())
        lines: list[str] = []
        failed: list[str] = []
        for _name, metric in metrics:
            lines.extend(metric.render())
        for name, render in sources:
            try:
                text = render()
            except Exception:  # noqa: BLE001 - keep /metrics alive
                failed.append(name)
                continue
            if text:
                lines.append(text.rstrip("\n"))
        if failed:
            lines.append(
                "# HELP repro_obs_source_errors_total Sources that failed "
                "to render this scrape."
            )
            lines.append("# TYPE repro_obs_source_errors_total counter")
            for name in failed:
                lines.append(
                    "repro_obs_source_errors_total"
                    f'{{source="{escape_label_value(name)}"}} 1'
                )
        return "\n".join(lines) + "\n"


_REGISTRY: MetricsRegistry | None = None
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-default registry, with built-in sources installed."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            from .adapters import install_default_sources

            registry = MetricsRegistry()
            install_default_sources(registry)
            _REGISTRY = registry
        return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry | None:
    """Replace the process-default registry; returns the previous one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        _REGISTRY = registry
        return previous
