"""OTLP/JSON export: traces that leave the box without the Chrome hop.

Serialized span records (see :meth:`repro.obs.trace.Tracer.serialize`)
become the OpenTelemetry Protocol's JSON encoding of
``ExportTraceServiceRequest``: ``resourceSpans`` grouped by origin
process, each carrying resource attributes (``service.name``,
``process.pid``, ``repro.worker_id``) and ``scopeSpans`` of spans with
hex trace/span ids and unix-nano timestamps.  Any OTLP-speaking backend
(an OpenTelemetry collector, Jaeger, Tempo, ...) ingests the file or the
HTTP POST directly.

The repo's internal ids are free-form strings ("<prefix><counter>"); the
OTLP wire format requires fixed-width hex (16-byte trace ids, 8-byte
span ids).  :func:`hex_id` maps ids through sha1, which is deterministic
and collision-resistant at fleet scale, so parent/child linkage survives
the translation — and :func:`load_otlp` reads the files back into the
same event dicts :mod:`repro.obs.summary` renders, so ``repro obs
summary trace.otlp.json`` shows the stitched tree.
"""

from __future__ import annotations

import hashlib
import http.client
import json
from typing import Iterable
from urllib.parse import urlsplit

__all__ = [
    "hex_id",
    "load_otlp",
    "otlp_to_events",
    "post_otlp",
    "records_to_otlp",
    "write_otlp",
]

#: OTLP SpanKind: internal (we do not model client/server kinds).
_SPAN_KIND_INTERNAL = 1

_SCOPE = {"name": "repro.obs", "version": "1"}


def hex_id(identifier: str, nbytes: int) -> str:
    """A deterministic ``nbytes``-wide hex id for a free-form string id."""
    if not identifier:
        return ""
    digest = hashlib.sha1(identifier.encode("utf-8")).hexdigest()
    return digest[: 2 * nbytes]


def _attr_value(value) -> dict:
    """One attribute value as an OTLP ``AnyValue``."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if value is None:
        return {"stringValue": ""}
    return {"stringValue": str(value)}


def _attributes(mapping: dict) -> list[dict]:
    return [
        {"key": str(key), "value": _attr_value(value)}
        for key, value in mapping.items()
    ]


def _decode_value(value: dict):
    """An OTLP ``AnyValue`` back to a plain Python value."""
    if "boolValue" in value:
        return bool(value["boolValue"])
    if "intValue" in value:
        return int(value["intValue"])
    if "doubleValue" in value:
        return float(value["doubleValue"])
    return value.get("stringValue", "")


def _decode_attributes(items) -> dict:
    out: dict = {}
    for item in items or []:
        key = item.get("key")
        if key is not None:
            out[str(key)] = _decode_value(item.get("value") or {})
    return out


def _otlp_span(record: dict) -> dict:
    start_ns = int(float(record.get("start_unix_s", 0.0)) * 1e9)
    end_ns = int(float(record.get("end_unix_s", 0.0)) * 1e9)
    span = {
        "traceId": hex_id(str(record.get("trace_id", "")), 16),
        "spanId": hex_id(str(record.get("span_id", "")), 8),
        "name": str(record.get("name", "")),
        "kind": _SPAN_KIND_INTERNAL,
        "startTimeUnixNano": str(start_ns),
        "endTimeUnixNano": str(end_ns),
        "attributes": _attributes(dict(record.get("attributes") or {})),
    }
    parent = record.get("parent_id")
    if parent:
        span["parentSpanId"] = hex_id(str(parent), 8)
    return span


def _resource_key(resource: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in resource.items()))


def records_to_otlp(
    records: Iterable[dict], *, default_resource: dict | None = None
) -> dict:
    """Span records grouped by origin resource as an OTLP/JSON payload.

    ``default_resource`` describes spans that carry no ``resource`` of
    their own (locally recorded spans); records streamed through a
    collector keep the resource their sender reported.
    """
    base = dict(default_resource or {"service": "repro"})
    groups: dict[tuple, tuple[dict, list[dict]]] = {}
    for record in records:
        resource = dict(record.get("resource") or base)
        key = _resource_key(resource)
        if key not in groups:
            groups[key] = (resource, [])
        groups[key][1].append(_otlp_span(record))
    resource_spans = []
    for resource, spans in groups.values():
        attrs = {"service.name": resource.get("service", "repro")}
        if "pid" in resource:
            attrs["process.pid"] = int(resource["pid"])
        if "worker" in resource:
            attrs["repro.worker_id"] = resource["worker"]
        for key, value in resource.items():
            if key not in ("service", "pid", "worker"):
                attrs[f"repro.{key}"] = value
        resource_spans.append(
            {
                "resource": {"attributes": _attributes(attrs)},
                "scopeSpans": [{"scope": dict(_SCOPE), "spans": spans}],
            }
        )
    return {"resourceSpans": resource_spans}


def write_otlp(
    path,
    records: Iterable[dict],
    *,
    default_resource: dict | None = None,
) -> int:
    """Write records to ``path`` as OTLP/JSON; returns the span count."""
    payload = records_to_otlp(records, default_resource=default_resource)
    count = sum(
        len(scope.get("spans", []))
        for group in payload["resourceSpans"]
        for scope in group.get("scopeSpans", [])
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return count


def post_otlp(
    url: str,
    records: Iterable[dict],
    *,
    default_resource: dict | None = None,
    timeout_s: float = 10.0,
) -> int:
    """POST records as OTLP/JSON to an HTTP endpoint (``/v1/traces``).

    Returns the HTTP status; raises ``OSError`` when the endpoint is
    unreachable.
    """
    payload = json.dumps(
        records_to_otlp(records, default_resource=default_resource)
    ).encode()
    split = urlsplit(url if "//" in url else f"http://{url}")
    conn_cls = (
        http.client.HTTPSConnection
        if split.scheme == "https"
        else http.client.HTTPConnection
    )
    conn = conn_cls(split.hostname, split.port, timeout=timeout_s)
    try:
        conn.request(
            "POST",
            split.path or "/v1/traces",
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


def otlp_to_events(payload: dict) -> list[dict]:
    """An OTLP/JSON payload as summary-compatible Chrome-style events.

    Timestamps are rebased to the earliest span so ``ts`` stays in the
    microsecond range the summary renderer expects.
    """
    raw: list[tuple[dict, dict]] = []
    for group in payload.get("resourceSpans", []):
        resource = _decode_attributes(
            (group.get("resource") or {}).get("attributes")
        )
        for scope in group.get("scopeSpans", []):
            for span in scope.get("spans", []):
                raw.append((resource, span))
    if not raw:
        return []
    starts = [int(span.get("startTimeUnixNano", "0")) for _res, span in raw]
    origin = min(starts)
    events = []
    for (resource, span), start_ns in zip(raw, starts):
        end_ns = int(span.get("endTimeUnixNano", "0"))
        args = {
            "trace_id": span.get("traceId", ""),
            "span_id": span.get("spanId", ""),
        }
        if span.get("parentSpanId"):
            args["parent_id"] = span["parentSpanId"]
        args.update(_decode_attributes(span.get("attributes")))
        service = resource.get("service.name")
        if service:
            args.setdefault("service", service)
        events.append(
            {
                "name": str(span.get("name", "")),
                "cat": str(span.get("name", "")).partition(".")[0] or "span",
                "ph": "X",
                "ts": round((start_ns - origin) / 1e3, 3),
                "dur": round(max(0, end_ns - start_ns) / 1e3, 3),
                "pid": int(resource.get("process.pid", 0)),
                "tid": 0,
                "args": args,
            }
        )
    return events


def load_otlp(path) -> list[dict]:
    """Read an OTLP/JSON file into summary-compatible events."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "resourceSpans" not in payload:
        raise ValueError(f"{path} is not an OTLP/JSON trace file")
    return otlp_to_events(payload)
