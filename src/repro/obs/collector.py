"""The span collector: one sink for a whole fleet's traces.

:class:`CollectorServer` is a small HTTP service on the shared
:class:`~repro.serve.http.HttpServerBase` plumbing that pool workers,
serving-tier workers, the router, and the scheduler stream finished
spans to (``POST /v1/spans``, JSON object or JSON-lines).  Spans keep
the ``trace_id``/``parent_id`` their origin tracer assigned, so a
request that crossed three processes reassembles into one tree; each
batch's ``resource`` (service name, worker id, pid) is stamped onto its
spans for the exports.

Storage is a bounded ring like the in-process tracer's: when it wraps,
the oldest spans go and the eviction is counted.  Senders also report
how many spans *they* shed (queue-full on the hot path), so the
collector's ``/metrics`` scrape shows fleet-wide drops in one
``repro_obs_spans_dropped_total`` family.

Exports mirror the tracer's: Chrome trace JSON (one row group per
origin process) and OTLP/JSON via :mod:`repro.obs.otlp`.
:class:`CollectorThread` runs the collector on a background loop for
synchronous callers (the CLI, tests, the serving tier).
"""

from __future__ import annotations

import json
import threading
from collections import deque

from ..serve.http import HTTPError, HttpServerBase, Request, ServerThreadBase
from .adapters import install_default_sources
from .registry import MetricsRegistry

__all__ = ["CollectorServer", "CollectorThread"]


class CollectorServer(HttpServerBase):
    """HTTP span sink with bounded storage and Chrome/OTLP export."""

    known_endpoints = ("/v1/spans", "/healthz", "/metrics")
    request_span_name = "collector.request"
    #: The collector must not trace its own ingest requests: a process
    #: that both streams spans and hosts the collector would otherwise
    #: generate a span per batch received, feeding itself forever.
    trace_requests = False

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_spans: int = 500_000,
    ) -> None:
        super().__init__(host=host, port=port)
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self._records: deque[dict] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        #: Spans accepted across all batches.
        self.received = 0
        #: Spans evicted from the collector's own ring buffer.
        self.dropped = 0
        #: Spans senders reported shedding before they reached us.
        self.client_dropped = 0
        #: Batches received per service name.
        self.batches: dict[str, int] = {}
        self.obs_registry = install_default_sources(MetricsRegistry())
        self.obs_registry.register_source(
            "collector", self._render_collector_metrics
        )

    @property
    def endpoint(self) -> str:
        """The address senders should stream to."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- ingest
    def ingest(
        self, spans: list[dict], *, resource: dict | None = None, dropped: int = 0
    ) -> int:
        """Adopt a batch of serialized spans; returns the count accepted."""
        resource = dict(resource or {})
        service = str(resource.get("service", "unknown"))
        with self._lock:
            self.batches[service] = self.batches.get(service, 0) + 1
            self.client_dropped += max(0, int(dropped))
            for record in spans:
                if not isinstance(record, dict):
                    continue
                if resource and not record.get("resource"):
                    record = {**record, "resource": resource}
                if len(self._records) == self.max_spans:
                    self.dropped += 1
                self._records.append(record)
                self.received += 1
        return len(spans)

    def records(self) -> list[dict]:
        """Snapshot of retained spans, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------- routes
    async def _route(self, request: Request):
        if request.path == "/healthz":
            return 200, "application/json", json.dumps(
                {"status": "ok", "spans": len(self)}
            ).encode()
        if request.path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4",
                self.obs_registry.render().encode(),
            )
        if request.path == "/v1/spans":
            if request.method == "GET":
                return 200, "application/json", json.dumps(
                    {"spans": self.records()}
                ).encode()
            self._require(request.method, "POST")
            return self._accept_spans(request.body)
        raise HTTPError(404, "not_found", f"unknown path {request.path}")

    def _accept_spans(self, body: bytes):
        batches = self._parse_batches(body)
        accepted = 0
        for resource, spans, dropped in batches:
            accepted += self.ingest(spans, resource=resource, dropped=dropped)
        return 200, "application/json", json.dumps(
            {"accepted": accepted}
        ).encode()

    @staticmethod
    def _parse_batches(body: bytes) -> list[tuple[dict, list[dict], int]]:
        """Parse a POST body: one JSON batch object, or JSON-lines.

        The batch form is ``{"resource": {...}, "spans": [...],
        "dropped": n}``; JSON-lines is one record (or batch object) per
        line, for senders that stream without buffering.
        """
        text = body.decode("utf-8", errors="replace").strip()
        if not text:
            raise HTTPError(400, "bad_request", "empty span payload")
        try:
            payloads = [json.loads(text)]
        except json.JSONDecodeError:
            try:
                payloads = [
                    json.loads(line)
                    for line in text.splitlines()
                    if line.strip()
                ]
            except json.JSONDecodeError as exc:
                raise HTTPError(
                    400, "bad_request", f"invalid span JSON: {exc}"
                ) from exc
        batches: list[tuple[dict, list[dict], int]] = []
        for payload in payloads:
            if isinstance(payload, dict) and "spans" in payload:
                spans = payload.get("spans")
                if not isinstance(spans, list):
                    raise HTTPError(400, "bad_request", "spans must be a list")
                batches.append(
                    (
                        dict(payload.get("resource") or {}),
                        spans,
                        int(payload.get("dropped") or 0),
                    )
                )
            elif isinstance(payload, dict):
                # A bare span record (JSON-lines style).
                batches.append(({}, [payload], 0))
            else:
                raise HTTPError(
                    400, "bad_request", "span payload must be an object"
                )
        return batches

    # ------------------------------------------------------------ metrics
    def _render_collector_metrics(self) -> str:
        with self._lock:
            received = self.received
            stored = len(self._records)
            ring_dropped = self.dropped
            shed = self.client_dropped
            batches = dict(self.batches)
        lines = [
            "# HELP repro_obs_collector_spans_received_total Spans accepted "
            "by the collector.",
            "# TYPE repro_obs_collector_spans_received_total counter",
            f"repro_obs_collector_spans_received_total {received}",
            "# HELP repro_obs_collector_spans_stored Spans currently "
            "retained in the collector ring.",
            "# TYPE repro_obs_collector_spans_stored gauge",
            f"repro_obs_collector_spans_stored {stored}",
            "# HELP repro_obs_collector_batches_total Span batches received "
            "per origin service.",
            "# TYPE repro_obs_collector_batches_total counter",
        ]
        for service in sorted(batches):
            lines.append(
                f'repro_obs_collector_batches_total{{service="{service}"}} '
                f"{batches[service]}"
            )
        # Scoped under its own family: the registry's default "obs"
        # source already renders repro_obs_spans_dropped_total for this
        # process's tracer, and one exposition must not repeat a family.
        lines += [
            "# HELP repro_obs_collector_spans_dropped_total Spans lost "
            "before reaching collector storage, by where they were shed.",
            "# TYPE repro_obs_collector_spans_dropped_total counter",
            f'repro_obs_collector_spans_dropped_total{{reason="ring_wrap"}} '
            f"{ring_dropped}",
            f'repro_obs_collector_spans_dropped_total{{reason="sender_shed"}} '
            f"{shed}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------- export
    def to_chrome_events(self) -> list[dict]:
        """Stored spans as Chrome trace events, one row group per process."""
        records = self.records()
        origin = min(
            (float(r.get("start_unix_s", 0.0)) for r in records),
            default=0.0,
        )
        events: list[dict] = []
        named_pids: set[int] = set()
        for record in records:
            resource = record.get("resource") or {}
            pid = int(resource.get("pid", 0))
            if pid not in named_pids:
                named_pids.add(pid)
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            "name": str(resource.get("service", "unknown"))
                        },
                    }
                )
            args = {
                "trace_id": record.get("trace_id", ""),
                "span_id": record.get("span_id", ""),
            }
            if record.get("parent_id"):
                args["parent_id"] = record["parent_id"]
            args.update(record.get("attributes") or {})
            start = float(record.get("start_unix_s", 0.0))
            end = float(record.get("end_unix_s", 0.0))
            events.append(
                {
                    "name": str(record.get("name", "")),
                    "cat": str(record.get("name", "")).partition(".")[0]
                    or "span",
                    "ph": "X",
                    "ts": round(1e6 * (start - origin), 3),
                    "dur": round(1e6 * max(0.0, end - start), 3),
                    "pid": pid,
                    "tid": int(record.get("thread_id", 0)) % 2**31,
                    "args": args,
                }
            )
        return events

    def export_chrome(self, path) -> int:
        """Write stored spans as Chrome trace JSON; returns the span count."""
        events = self.to_chrome_events()
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"service": "collector"},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=None, separators=(",", ":"))
            handle.write("\n")
        return sum(1 for event in events if event.get("ph") == "X")

    def export_otlp(self, path) -> int:
        """Write stored spans as OTLP/JSON; returns the span count."""
        from .otlp import write_otlp

        return write_otlp(path, self.records())


class CollectorThread(ServerThreadBase):
    """A :class:`CollectorServer` on a background event loop."""

    thread_name = "repro-collector"

    def __init__(self, **kwargs) -> None:
        super().__init__(CollectorServer(**kwargs))

    @property
    def endpoint(self) -> str:
        return f"http://{self.host}:{self.port}"

    def records(self) -> list[dict]:
        return self.server.records()

    def export_chrome(self, path) -> int:
        return self.server.export_chrome(path)

    def export_otlp(self, path) -> int:
        return self.server.export_otlp(path)
