"""Bridges from the pre-existing stats records into the one registry.

The simulator, the fitting engine, and the serving layer each kept their
own observability record long before ``repro.obs`` existed —
:class:`~repro.sim.solve_cache.EngineStats`,
:class:`~repro.core.fitstats.FitStats`, and
:class:`~repro.serve.metrics.ServingMetrics`.  Rather than rewrite them,
each gets an *adapter*: a render callable that reads the record at scrape
time and emits conformant Prometheus text.  Registering all three on one
:class:`~repro.obs.registry.MetricsRegistry` is what lets a single
``GET /metrics`` scrape see simulation, fitting, and serving together.

The engine and fit adapters read the process-global aggregates
(``GLOBAL_ENGINE_STATS`` / ``GLOBAL_FIT_STATS``) that every engine solve
and model fit also feeds; imports are deferred to scrape time so this
module never drags the simulator into processes that only serve models.
"""

from __future__ import annotations

from typing import Callable

from .registry import MetricsRegistry, format_value

__all__ = [
    "engine_stats_exposition",
    "fit_stats_exposition",
    "install_default_sources",
    "obs_stats_exposition",
    "render_engine_stats",
    "render_fit_stats",
    "render_registry_backend",
    "suite_stats_exposition",
]

#: Fixed-point iteration bucket bounds for the engine histogram.
ENGINE_ITERATION_BUCKETS = (25, 50, 100, 200, 400, 600)


def render_engine_stats(stats) -> str:
    """One :class:`EngineStats` record as Prometheus text."""
    lines = [
        "# HELP repro_engine_solves_total Fixed-point solves performed.",
        "# TYPE repro_engine_solves_total counter",
        f"repro_engine_solves_total {stats.solves}",
        "# HELP repro_engine_cache_hits_total Steady-state cache hits.",
        "# TYPE repro_engine_cache_hits_total counter",
        f"repro_engine_cache_hits_total {stats.cache_hits}",
        "# HELP repro_engine_cache_misses_total Steady-state cache misses.",
        "# TYPE repro_engine_cache_misses_total counter",
        f"repro_engine_cache_misses_total {stats.cache_misses}",
        "# HELP repro_engine_cache_evictions_total Bounded solve-cache LRU "
        "evictions.",
        "# TYPE repro_engine_cache_evictions_total counter",
        f"repro_engine_cache_evictions_total {stats.cache_evictions}",
        "# HELP repro_engine_convergence_failures_total Solves that failed "
        "to converge.",
        "# TYPE repro_engine_convergence_failures_total counter",
        f"repro_engine_convergence_failures_total {stats.convergence_failures}",
        "# HELP repro_engine_batches_total Batched steady-state solves "
        "performed.",
        "# TYPE repro_engine_batches_total counter",
        f"repro_engine_batches_total {stats.batches}",
        "# HELP repro_engine_batched_scenarios_total Scenarios requested "
        "across batched solves.",
        "# TYPE repro_engine_batched_scenarios_total counter",
        f"repro_engine_batched_scenarios_total {stats.batched_scenarios}",
        "# HELP repro_engine_batch_dedupe_hits_total Scenarios served by "
        "deduplicating a repeated solve key within one batch.",
        "# TYPE repro_engine_batch_dedupe_hits_total counter",
        f"repro_engine_batch_dedupe_hits_total {stats.batch_dedupe_hits}",
        "# HELP repro_engine_frozen_iterations_saved_total Stacked "
        "iterations skipped by freezing converged scenarios.",
        "# TYPE repro_engine_frozen_iterations_saved_total counter",
        f"repro_engine_frozen_iterations_saved_total "
        f"{stats.frozen_iterations_saved}",
        "# HELP repro_engine_solve_iterations Fixed-point iterations per "
        "solve.",
        "# TYPE repro_engine_solve_iterations histogram",
    ]
    cumulative = 0
    total = sum(stats.iteration_counts.values())
    weighted = sum(i * n for i, n in stats.iteration_counts.items())
    for bound in ENGINE_ITERATION_BUCKETS:
        cumulative = sum(
            n for i, n in stats.iteration_counts.items() if i <= bound
        )
        lines.append(
            f'repro_engine_solve_iterations_bucket{{le="{format_value(bound)}"}} '
            f"{cumulative}"
        )
    lines.append(f'repro_engine_solve_iterations_bucket{{le="+Inf"}} {total}')
    lines.append(f"repro_engine_solve_iterations_sum {weighted}")
    lines.append(f"repro_engine_solve_iterations_count {total}")
    return "\n".join(lines)


def render_fit_stats(stats) -> str:
    """One :class:`FitStats` record as Prometheus text."""
    return "\n".join(
        [
            "# HELP repro_fit_fits_total Completed model fit calls.",
            "# TYPE repro_fit_fits_total counter",
            f"repro_fit_fits_total {stats.fits}",
            "# HELP repro_fit_restarts_total SCG weight initializations "
            "optimized.",
            "# TYPE repro_fit_restarts_total counter",
            f"repro_fit_restarts_total {stats.restarts}",
            "# HELP repro_fit_scg_iterations_total SCG iterations advanced.",
            "# TYPE repro_fit_scg_iterations_total counter",
            f"repro_fit_scg_iterations_total {stats.scg_iterations}",
            "# HELP repro_fit_function_evals_total Loss evaluations.",
            "# TYPE repro_fit_function_evals_total counter",
            f"repro_fit_function_evals_total {stats.function_evals}",
            "# HELP repro_fit_gradient_evals_total Gradient evaluations.",
            "# TYPE repro_fit_gradient_evals_total counter",
            f"repro_fit_gradient_evals_total {stats.gradient_evals}",
            "# HELP repro_fit_wall_seconds_total Wall seconds inside fit "
            "calls (sums per-process time under parallel validation).",
            "# TYPE repro_fit_wall_seconds_total counter",
            f"repro_fit_wall_seconds_total {format_value(stats.wall_time_s)}",
        ]
    )


def render_registry_backend(backend) -> str:
    """Inventory gauges for one registry backend, read at scrape time.

    ``backend`` is anything speaking the
    :class:`~repro.registry.backend.RegistryBackend` protocol; the
    registry server registers this so a scrape reports how many models,
    versions, and tombstones the store is holding.
    """
    manifests = backend.list()
    names = {m.name for m in manifests}
    tombstones = sum(
        1
        for m in manifests
        if backend.tombstone_reason(m.name, m.version) is not None
    )
    return "\n".join(
        [
            "# HELP repro_registry_models Distinct model names stored.",
            "# TYPE repro_registry_models gauge",
            f"repro_registry_models {len(names)}",
            "# HELP repro_registry_versions Stored model versions "
            "(tombstoned included).",
            "# TYPE repro_registry_versions gauge",
            f"repro_registry_versions {len(manifests)}",
            "# HELP repro_registry_tombstones Versions currently blocked "
            "by a tombstone.",
            "# TYPE repro_registry_tombstones gauge",
            f"repro_registry_tombstones {tombstones}",
        ]
    )


def engine_stats_exposition() -> str:
    """Scrape-time render of the process-global engine aggregate."""
    from ..sim.solve_cache import GLOBAL_ENGINE_STATS

    return render_engine_stats(GLOBAL_ENGINE_STATS)


def suite_stats_exposition() -> str:
    """Scrape-time render of the process-global suite-run aggregate."""
    from ..suite.stats import GLOBAL_SUITE_STATS, render_suite_stats

    return render_suite_stats(GLOBAL_SUITE_STATS)


def fit_stats_exposition() -> str:
    """Scrape-time render of the process-global fitting aggregate."""
    from ..core.fitstats import GLOBAL_FIT_STATS

    return render_fit_stats(GLOBAL_FIT_STATS)


def obs_stats_exposition() -> str:
    """Scrape-time render of the process tracer's own health counters.

    Span loss used to be silent: the tracer ring buffer wraps and a
    streaming tracer's bounded queue sheds, both by design (tracing must
    never block a hot path), but neither was observable.  This source
    exposes the drops — and, for streaming tracers, the shipped/error
    counts — on every server's ``/metrics``; the labels survive the
    tier's merged scrape (counters sum across workers).
    """
    from .trace import get_tracer

    tracer = get_tracer()
    ring_dropped = int(getattr(tracer, "dropped", 0))
    sender = getattr(tracer, "sender", None)
    lines = [
        "# HELP repro_obs_spans_dropped_total Spans lost by this process, "
        "by where they were shed.",
        "# TYPE repro_obs_spans_dropped_total counter",
        f'repro_obs_spans_dropped_total{{reason="ring_wrap"}} {ring_dropped}',
        f'repro_obs_spans_dropped_total{{reason="stream_shed"}} '
        f"{int(getattr(sender, 'dropped', 0))}",
    ]
    if sender is not None:
        lines += [
            "# HELP repro_obs_spans_streamed_total Spans shipped to the "
            "trace collector.",
            "# TYPE repro_obs_spans_streamed_total counter",
            f"repro_obs_spans_streamed_total {int(sender.sent)}",
            "# HELP repro_obs_span_send_errors_total Failed span batch "
            "POSTs (each costs one batch).",
            "# TYPE repro_obs_span_send_errors_total counter",
            f"repro_obs_span_send_errors_total {int(sender.send_errors)}",
        ]
    return "\n".join(lines)


def install_default_sources(
    registry: MetricsRegistry,
    *,
    serving: Callable[[], str] | None = None,
    sched: Callable[[], str] | None = None,
) -> MetricsRegistry:
    """Register the built-in engine and fit sources on ``registry``.

    Pass ``serving`` (typically ``metrics.render_prometheus``) to merge a
    server's request-path metrics into the same scrape; the prediction
    server does exactly that for its own registry.  ``sched`` merges the
    scheduler service's ``repro_sched_*`` family (placements,
    migrations, decision latency, regret) the same way.
    """
    registry.register_source("engine", engine_stats_exposition)
    registry.register_source("fit", fit_stats_exposition)
    registry.register_source("obs", obs_stats_exposition)
    registry.register_source("suite", suite_stats_exposition)
    if serving is not None:
        registry.register_source("serving", serving)
    if sched is not None:
        registry.register_source("sched", sched)
    return registry
