"""Tracing core: spans, the process tracer, and Chrome trace export.

A :class:`Span` is one timed region of work — a steady-state solve, an SCG
restart, a serving request — with a name, trace/span identifiers, wall
duration from the monotonic clock, and free-form attributes.  Spans nest
through a :mod:`contextvars` context variable, so parent/child linkage is
correct across ``async`` task switches as well as plain call stacks.

The process-wide tracer is a module global exchanged with
:func:`set_tracer`; it starts as a :class:`NullTracer` whose ``span()``
hands back one shared no-op context manager, so instrumented hot paths pay
only a method call and a dict construction when tracing is off (the
validation bench guards that cost at under 2% of sweep wall time).
Enabling tracing (:func:`enable`, or CLI ``--trace``) swaps in a recording
:class:`Tracer` that keeps finished spans in a bounded ring buffer and
exports them as Chrome trace-event JSON — load the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` to see the timeline.

Spans that are only known after the fact (e.g. how long a row waited in a
micro-batch, discovered at flush time) are recorded retroactively with
:meth:`Tracer.record_span`, which accepts explicit start/end timestamps
from ``time.perf_counter()``.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque

__all__ = [
    "NullTracer",
    "Span",
    "Tracer",
    "current_span",
    "current_trace_id",
    "disable",
    "enable",
    "get_tracer",
    "set_tracer",
]

#: The active span for the current execution context (task or thread).
_ACTIVE_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)


class Span:
    """One timed, attributed region of work.

    Spans are context managers: entering starts the clock and makes the
    span the context's active span; exiting stops the clock, restores the
    previous active span, and hands the finished record to the tracer's
    ring buffer.  ``set()`` attaches attributes at any point in between.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "start",
        "end",
        "thread_id",
        "resource",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start = 0.0  # perf_counter seconds; set on __enter__
        self.end = 0.0
        self.thread_id = 0
        #: Origin process metadata for spans ingested from another
        #: process ({"service": ..., "pid": ..., ...}); ``None`` for
        #: spans recorded locally.
        self.resource: dict | None = None
        self._tracer = tracer
        self._token: contextvars.Token | None = None

    @property
    def duration_s(self) -> float:
        """Wall seconds between enter and exit (0.0 while open)."""
        return max(0.0, self.end - self.start)

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        self._token = _ACTIVE_SPAN.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None
        self._tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{1e3 * self.duration_s:.3f} ms" if self.end else "open"
        return f"Span({self.name!r}, {state}, attrs={self.attributes})"


class _NullSpan:
    """Shared do-nothing span handed out by the :class:`NullTracer`."""

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    attributes: dict = {}
    duration_s = 0.0

    def set(self, **_attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same shared no-op.

    ``enabled`` is ``False`` so instrumentation that wants literally zero
    cost (e.g. skipping attribute construction) can branch on it; code
    that just wraps a region in ``with tracer.span(...)`` works unchanged.
    """

    enabled = False

    def span(self, _name: str, **_attributes) -> _NullSpan:
        """A no-op context manager (one shared instance)."""
        return _NULL_SPAN

    def child_span(self, _name: str, **_kwargs) -> _NullSpan:
        """A no-op context manager for a remote-parented span."""
        return _NULL_SPAN

    def record_span(self, _name: str, **_kwargs) -> None:
        """Discard a retroactive span."""
        return None

    def ingest(self, _records) -> int:
        """Discard spans serialized by another process."""
        return 0

    def spans(self) -> list:
        """No spans are ever retained."""
        return []

    def __len__(self) -> int:
        return 0


class Tracer:
    """Recording tracer: bounded ring buffer + Chrome trace export.

    Parameters
    ----------
    max_spans:
        Ring-buffer capacity; once full, the oldest finished spans are
        dropped (long-running servers keep the most recent window).
    service:
        Process label used for the Chrome export's ``pid`` row name.
    """

    enabled = True

    def __init__(self, *, max_spans: int = 200_000, service: str = "repro") -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.service = service
        self.max_spans = max_spans
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        #: Random per-tracer prefix: span ids stay unique across the
        #: processes of a fleet, so streamed spans never collide.
        self._id_prefix = os.urandom(3).hex()
        #: Spans evicted from the ring buffer since creation (the buffer
        #: wrapped).  Exposed as ``repro_obs_spans_dropped_total``.
        self.dropped = 0
        #: perf_counter origin: exported timestamps are relative to this.
        self.epoch = time.perf_counter()
        #: Wall-clock instant matching ``epoch``: lets spans serialized
        #: in one process be placed on another process's timeline.
        self.wall_epoch = time.time()

    # ----------------------------------------------------------- creation
    def _next_id(self) -> str:
        with self._id_lock:
            return f"{self._id_prefix}{next(self._ids):06x}"

    def span(self, name: str, **attributes) -> Span:
        """A new span, parented to the context's active span (if any)."""
        parent = _ACTIVE_SPAN.get()
        span_id = self._next_id()
        if parent is not None and parent.trace_id:
            trace_id: str = parent.trace_id
            parent_id: str | None = parent.span_id
        else:
            trace_id = f"t{span_id}"
            parent_id = None
        return Span(self, name, trace_id, span_id, parent_id, attributes)

    def child_span(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: str | None,
        **attributes,
    ) -> Span:
        """A new span continuing a trace started in *another* process.

        The propagated context (``X-Trace-Context: <trace_id>/<span_id>``)
        supplies the trace and parent ids, so a server-side request span
        becomes a child of the client's calling span even though the two
        tracers never share memory.  Falls back to :meth:`span` when the
        propagated trace id is empty.
        """
        if not trace_id:
            return self.span(name, **attributes)
        return Span(
            self, name, trace_id, self._next_id(), parent_id or None, attributes
        )

    def record_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: "Span | None" = None,
        **attributes,
    ) -> Span:
        """Record a span retroactively from explicit perf_counter times.

        Used where the duration is only known after the fact — e.g. the
        micro-batcher learns each row's queue wait at flush time.  When
        ``parent`` is given (a span captured earlier via
        :func:`current_span`), the record joins that span's trace.
        """
        span_id = self._next_id()
        if parent is not None and parent.trace_id:
            trace_id: str = parent.trace_id
            parent_id: str | None = parent.span_id
        else:
            trace_id = f"t{span_id}"
            parent_id = None
        span = Span(self, name, trace_id, span_id, parent_id, attributes)
        span.thread_id = threading.get_ident()
        span.start = float(start)
        span.end = float(end)
        self._finish(span)
        return span

    def _append(self, span: Span) -> None:
        """Retain a finished span, counting ring-buffer evictions."""
        if len(self._finished) == self.max_spans:
            self.dropped += 1
        self._finished.append(span)

    def _finish(self, span: Span) -> None:
        self._append(span)

    # ------------------------------------------------- cross-process spans
    def serialize(self, span: Span) -> dict:
        """One finished span as a JSON-safe dict with wall-clock times.

        Timestamps are converted from the tracer's monotonic clock to
        absolute unix seconds, so a collector (or the parent of a worker
        pool) can place spans from many processes on one timeline.
        """
        attrs: dict = {}
        for key, value in span.attributes.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                attrs[key] = value
            else:
                attrs[key] = repr(value)
        offset = self.wall_epoch - self.epoch
        record = {
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_unix_s": span.start + offset,
            "end_unix_s": span.end + offset,
            "thread_id": span.thread_id,
            "attributes": attrs,
        }
        if span.resource is not None:
            record["resource"] = span.resource
        return record

    def ingest(self, records) -> int:
        """Adopt spans serialized by another tracer (:meth:`serialize`).

        Each record lands in this tracer's ring buffer with its original
        trace/span/parent ids intact — parallel workers' spans survive
        their worker process this way.  Returns the number ingested.
        """
        count = 0
        offset = self.epoch - self.wall_epoch
        for record in records:
            span = Span(
                self,
                str(record.get("name", "")),
                str(record.get("trace_id", "")),
                str(record.get("span_id", "")),
                record.get("parent_id") or None,
                dict(record.get("attributes") or {}),
            )
            span.start = float(record.get("start_unix_s", 0.0)) + offset
            span.end = float(record.get("end_unix_s", 0.0)) + offset
            span.thread_id = int(record.get("thread_id", 0))
            resource = record.get("resource")
            if resource:
                span.resource = dict(resource)
            self._append(span)
            count += 1
        return count

    # ---------------------------------------------------------- inspection
    def spans(self) -> list[Span]:
        """Snapshot of retained finished spans, oldest first."""
        return list(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def reset(self) -> None:
        """Drop every retained span."""
        self._finished.clear()

    # ------------------------------------------------------------- export
    def to_chrome_events(self) -> list[dict]:
        """Finished spans as Chrome trace-event dicts (``ph: "X"``).

        Spans ingested from other processes keep their origin pid and
        service name (from their ``resource``), so the exported timeline
        shows one row group per fleet process.
        """
        local_pid = os.getpid()
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": local_pid,
                "tid": 0,
                "args": {"name": self.service},
            }
        ]
        named_pids = {local_pid}
        for span in self._finished:
            pid = local_pid
            if span.resource is not None:
                pid = int(span.resource.get("pid", local_pid))
                if pid not in named_pids:
                    named_pids.add(pid)
                    events.append(
                        {
                            "name": "process_name",
                            "ph": "M",
                            "pid": pid,
                            "tid": 0,
                            "args": {
                                "name": str(
                                    span.resource.get("service", "remote")
                                )
                            },
                        }
                    )
            args = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            for key, value in span.attributes.items():
                if isinstance(value, (str, int, float, bool)) or value is None:
                    args[key] = value
                else:
                    args[key] = repr(value)
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.partition(".")[0] or "span",
                    "ph": "X",
                    "ts": round(1e6 * (span.start - self.epoch), 3),
                    "dur": round(1e6 * span.duration_s, 3),
                    "pid": pid,
                    "tid": span.thread_id % 2**31,
                    "args": args,
                }
            )
        return events

    def export_chrome(self, path) -> int:
        """Write the Chrome trace JSON to ``path``; returns the span count.

        The output is the standard ``{"traceEvents": [...]}`` envelope
        that Perfetto and ``chrome://tracing`` both load directly.
        """
        events = self.to_chrome_events()
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"service": self.service},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=None, separators=(",", ":"))
            handle.write("\n")
        # Metadata (process-name) events are not spans.
        return sum(1 for event in events if event.get("ph") == "X")


def current_span() -> Span | None:
    """The context's active span, or ``None`` outside any span."""
    return _ACTIVE_SPAN.get()


def current_trace_id() -> str | None:
    """The active trace id, or ``None`` outside any span."""
    span = _ACTIVE_SPAN.get()
    return span.trace_id if span is not None else None


_TRACER: Tracer | NullTracer = NullTracer()


def get_tracer() -> Tracer | NullTracer:
    """The process tracer (a :class:`NullTracer` until enabled)."""
    return _TRACER


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the process tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable(*, max_spans: int = 200_000, service: str = "repro") -> Tracer:
    """Install and return a fresh recording tracer."""
    tracer = Tracer(max_spans=max_spans, service=service)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Install a :class:`NullTracer` (instrumentation becomes no-op)."""
    set_tracer(NullTracer())
