"""Structured JSON logging with automatic trace correlation.

Every record is one JSON object per line — machine-parseable, append-only,
and safe to interleave from multiple threads — stamped with the active
trace and span IDs from :mod:`repro.obs.trace`.  That stamp is the whole
point: a slow serving request's log lines and its spans share a
``trace_id``, so "what did this request log" is one grep of the log
against one ID from the trace, instead of timestamp archaeology.

Loggers are cheap named handles over one shared sink (stderr by default;
swap it with :func:`configure`).  Levels follow syslog-ish convention:
``debug`` < ``info`` < ``warning`` < ``error``; records below the
configured threshold are dropped before serialization.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO

from .trace import current_span

__all__ = ["ObsLogger", "configure", "get_logger"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_stream: IO[str] | None = None  # None -> sys.stderr at emit time
_threshold = _LEVELS["info"]
_loggers: dict[str, "ObsLogger"] = {}


def configure(
    stream: IO[str] | None = None, *, level: str = "info"
) -> None:
    """Set the shared sink and minimum level for every logger.

    ``stream=None`` restores the default (``sys.stderr`` resolved at emit
    time, so pytest capture and redirection keep working).
    """
    global _stream, _threshold
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; use {sorted(_LEVELS)}")
    with _lock:
        _stream = stream
        _threshold = _LEVELS[level]


class ObsLogger:
    """A named handle that emits structured JSON lines."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _LEVELS[level] < _threshold:
            return
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        span = current_span()
        if span is not None and span.trace_id:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        for key, value in fields.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                record[key] = value
            else:
                record[key] = repr(value)
        line = json.dumps(record, separators=(",", ":"))
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            stream.write(line + "\n")

    def debug(self, event: str, **fields) -> None:
        """Emit a ``debug`` record."""
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        """Emit an ``info`` record."""
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        """Emit a ``warning`` record."""
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        """Emit an ``error`` record."""
        self._emit("error", event, fields)


def get_logger(name: str) -> ObsLogger:
    """The (cached) logger for ``name``."""
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = ObsLogger(name)
        return logger
