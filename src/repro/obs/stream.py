"""Span streaming: ship finished spans to a collector without blocking.

:class:`SpanSender` owns a bounded queue and a background thread.  The
hot path (a span finishing) does one non-blocking ``put``; when the
queue is full the span is *shed* and counted (``dropped``), never
blocking the instrumented code — the same discipline the tracer's ring
buffer applies locally.  The background thread batches queued spans and
POSTs them as JSON to a collector's ``/v1/spans`` endpoint over one
keep-alive connection; send failures drop the batch and count
(``send_errors``) rather than retry-blocking, so a dead collector costs
the fleet nothing but its spans.

:class:`StreamingTracer` is a recording :class:`~repro.obs.trace.Tracer`
that additionally serializes every locally finished span into a sender.
Spans *ingested* from other processes are retained but never re-streamed
(no echo loops when a parent both ingests and streams).
"""

from __future__ import annotations

import http.client
import json
import os
import queue
import threading
from typing import Iterable

from .trace import Span, Tracer

__all__ = [
    "SpanSender",
    "StreamingTracer",
    "parse_endpoint",
    "stream_records",
]

#: Sentinel asking the sender thread to exit after flushing.
_STOP = object()


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """``"http://host:port"`` or ``"host:port"`` -> ``(host, port)``."""
    cleaned = endpoint.strip()
    for prefix in ("http://", "https://"):
        if cleaned.startswith(prefix):
            cleaned = cleaned[len(prefix):]
            break
    cleaned = cleaned.rstrip("/").partition("/")[0]
    host, _sep, port = cleaned.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"collector endpoint must be host:port or http://host:port, "
            f"got {endpoint!r}"
        )
    return host, int(port)


class SpanSender:
    """Bounded, non-blocking span shipper feeding one collector.

    Parameters
    ----------
    endpoint:
        Collector address (``host:port`` or ``http://host:port``).
    resource:
        Attributes describing this process (service name, worker id,
        pid); sent once per batch and attached to every span by the
        collector.  ``pid`` is filled in automatically.
    max_queue:
        Queue capacity; spans beyond it are shed and counted.
    batch_max:
        Largest number of spans per POST.
    flush_interval_s:
        How long the sender thread waits for more spans before shipping
        a partial batch.
    """

    def __init__(
        self,
        endpoint: str,
        *,
        resource: dict | None = None,
        max_queue: int = 4096,
        batch_max: int = 512,
        flush_interval_s: float = 0.2,
        timeout_s: float = 5.0,
    ) -> None:
        self.endpoint = endpoint
        self.host, self.port = parse_endpoint(endpoint)
        self.resource = dict(resource or {})
        self.resource.setdefault("pid", os.getpid())
        self.batch_max = max(1, int(batch_max))
        self.flush_interval_s = flush_interval_s
        self.timeout_s = timeout_s
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        #: Spans shed because the queue was full.
        self.dropped = 0
        #: Spans accepted by the collector.
        self.sent = 0
        #: Failed POSTs (each costs one batch of spans).
        self.send_errors = 0
        self._reported_drops = 0
        self._conn: http.client.HTTPConnection | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-span-sender", daemon=True
        )
        self._thread.start()

    # -------------------------------------------------------------- hot path
    def enqueue(self, record: dict) -> bool:
        """Queue one serialized span; shed (and count) when full."""
        if self._closed:
            self.dropped += 1
            return False
        try:
            self._queue.put_nowait(record)
            return True
        except queue.Full:
            self.dropped += 1
            return False

    # ------------------------------------------------------------- lifecycle
    def flush(self, timeout_s: float = 5.0) -> None:
        """Block until every span queued so far has been shipped (or shed)."""
        if self._closed or not self._thread.is_alive():
            return
        event = threading.Event()
        self._queue.put(("__flush__", event))
        event.wait(timeout=timeout_s)

    def close(self, timeout_s: float = 5.0) -> None:
        """Flush, stop the sender thread, and drop the connection."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "SpanSender":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -------------------------------------------------------- sender thread
    def _run(self) -> None:
        batch: list[dict] = []
        while True:
            try:
                item = self._queue.get(timeout=self.flush_interval_s)
            except queue.Empty:
                if batch:
                    self._post(batch)
                    batch = []
                continue
            if item is _STOP:
                self._post(batch)
                self._teardown()
                return
            if isinstance(item, tuple) and item and item[0] == "__flush__":
                self._post(batch)
                batch = []
                item[1].set()
                continue
            batch.append(item)
            if len(batch) >= self.batch_max:
                self._post(batch)
                batch = []

    def _post(self, batch: list[dict]) -> None:
        if not batch:
            return
        # Report shed counts alongside the spans: the collector folds
        # them into the fleet-wide drop total even though the spans
        # themselves are gone.
        drop_delta = self.dropped - self._reported_drops
        payload = json.dumps(
            {
                "resource": self.resource,
                "spans": batch,
                "dropped": drop_delta,
            }
        ).encode()
        for attempt in (0, 1):
            try:
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s
                    )
                self._conn.request(
                    "POST",
                    "/v1/spans",
                    body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = self._conn.getresponse()
                response.read()
                if response.status == 200:
                    self.sent += len(batch)
                    self._reported_drops += drop_delta
                    return
                break  # collector answered but refused; don't retry
            except (OSError, http.client.HTTPException):
                # Stale keep-alive connection or dead collector: retry
                # once on a fresh connection, then count and move on.
                self._teardown()
                if attempt == 1:
                    break
        self.send_errors += 1

    def _teardown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._conn = None


class StreamingTracer(Tracer):
    """A recording tracer that also streams finished spans to a sender.

    Locally recorded spans go to the ring buffer *and* the sender;
    ingested spans stay local (their origin already streamed them).
    """

    def __init__(self, sender: SpanSender, **kwargs) -> None:
        service = kwargs.pop("service", None)
        if service is None:
            service = str(sender.resource.get("service", "repro"))
        super().__init__(service=service, **kwargs)
        self.sender = sender

    def _finish(self, span: Span) -> None:
        self._append(span)
        self.sender.enqueue(self.serialize(span))

    def flush(self, timeout_s: float = 5.0) -> None:
        """Push everything streamed so far through to the collector."""
        self.sender.flush(timeout_s=timeout_s)

    def close(self, timeout_s: float = 5.0) -> None:
        """Flush and stop the sender thread."""
        self.sender.close(timeout_s=timeout_s)


def stream_records(
    sender: SpanSender, records: Iterable[dict]
) -> int:
    """Queue pre-serialized span records on ``sender``; returns count queued."""
    queued = 0
    for record in records:
        if sender.enqueue(record):
            queued += 1
    return queued
