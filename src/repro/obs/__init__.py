"""Unified observability: tracing, one metrics registry, structured logs.

Before this package, the pipeline's three stages each kept a private
observability island — :class:`~repro.sim.solve_cache.EngineStats` in the
simulator, :class:`~repro.core.fitstats.FitStats` in the fitting engine,
and :class:`~repro.serve.metrics.ServingMetrics` behind the server's
``/metrics`` — with no way to see one request's or one run's time
end-to-end.  ``repro.obs`` is the cross-cutting layer they all thread
through:

* :mod:`~repro.obs.trace` — ``Tracer``/``Span`` context managers with
  trace/span IDs, monotonic timing, attributes, a bounded in-process ring
  buffer, and a Chrome trace-event JSON exporter (open the file in
  Perfetto).  The process tracer defaults to a no-op ``NullTracer`` so
  instrumentation costs nearly nothing until enabled;
* :mod:`~repro.obs.registry` — a central ``MetricsRegistry`` (counters,
  gauges, histograms, with labels) rendering one Prometheus text
  exposition, plus named sources that adapt the pre-existing stats
  records (:mod:`~repro.obs.adapters`) so a single scrape sees
  simulation, fitting, and serving together;
* :mod:`~repro.obs.log` — structured JSON logging that stamps every
  record with the active trace/span ID;
* :mod:`~repro.obs.summary` — offline rendering of a captured trace
  (top spans by total time, the span tree) for ``repro obs summary``.

Everything is standard library only.  See ``docs/observability.md``.
"""

from .adapters import install_default_sources
from .log import ObsLogger, configure, get_logger
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
    set_registry,
)
from .summary import SpanNode, load_trace, render_summary, span_forest
from .trace import (
    NullTracer,
    Span,
    Tracer,
    current_span,
    current_trace_id,
    disable,
    enable,
    get_tracer,
    set_tracer,
)
from .otlp import load_otlp, records_to_otlp, write_otlp
from .stream import SpanSender, StreamingTracer


def __getattr__(name: str):
    # The collector runs on the serve package's HTTP base, and importing
    # repro.serve from here would recurse (sim.engine -> obs.trace pulls
    # this package in mid-way through repro's own import) — so the
    # collector classes resolve lazily on first attribute access.
    if name in ("CollectorServer", "CollectorThread"):
        from . import collector

        return getattr(collector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CollectorServer",
    "CollectorThread",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "ObsLogger",
    "Span",
    "SpanNode",
    "SpanSender",
    "StreamingTracer",
    "Tracer",
    "configure",
    "current_span",
    "current_trace_id",
    "disable",
    "enable",
    "escape_label_value",
    "get_logger",
    "get_registry",
    "get_tracer",
    "install_default_sources",
    "load_otlp",
    "load_trace",
    "records_to_otlp",
    "render_summary",
    "set_registry",
    "set_tracer",
    "span_forest",
    "write_otlp",
]
