"""Model-driven DVFS governor.

Section VI connects the methodology to energy: a system that can predict
co-located execution time at every P-state can choose the frequency that
minimizes energy (or energy-delay product) *after* pricing in both the
DVFS stretch and the memory-interference stretch — something a
frequency-only governor cannot do, because interference shifts how much of
the runtime is frequency-sensitive.

:func:`select_pstate` evaluates every P-state of a machine for one
placement using a trained predictor and a :class:`~repro.energy.PowerModel`
and returns the best feasible choice under an optional deadline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.methodology import PerformancePredictor
from ..energy.power import PowerModel
from ..harness.baselines import BaselineTable
from ..machine.pstates import PState

__all__ = ["GovernorObjective", "PStateChoice", "select_pstate"]


class GovernorObjective(enum.Enum):
    """What the governor minimizes."""

    ENERGY = "energy"          # joules
    EDP = "edp"                # energy-delay product (J*s)
    TIME = "time"              # plain performance governor (for reference)


@dataclass(frozen=True)
class PStateChoice:
    """One P-state's evaluated outcome for a placement."""

    pstate: PState
    predicted_time_s: float
    chip_power_w: float

    @property
    def predicted_energy_j(self) -> float:
        """Energy at this P-state."""
        return self.predicted_time_s * self.chip_power_w

    @property
    def energy_delay_product(self) -> float:
        """EDP at this P-state."""
        return self.predicted_energy_j * self.predicted_time_s


def select_pstate(
    predictor: PerformancePredictor,
    power_model: PowerModel,
    baselines: BaselineTable,
    target_name: str,
    co_app_names: list[str],
    *,
    objective: GovernorObjective = GovernorObjective.ENERGY,
    deadline_s: float | None = None,
) -> tuple[PStateChoice, list[PStateChoice]]:
    """Choose the best P-state for one placement.

    Parameters
    ----------
    predictor:
        Trained for the machine in ``power_model.processor``.
    power_model:
        Chip power model supplying watts per (P-state, active cores).
    baselines:
        Must contain target and co-app profiles at every P-state (the
        paper measures baselines "across six P-state frequencies").
    target_name, co_app_names:
        The placement: target plus co-runners by suite name.
    objective:
        Minimized quantity among deadline-feasible P-states.
    deadline_s:
        Optional latest acceptable predicted completion time.  When no
        P-state meets it, the fastest-completing P-state is returned
        (best effort) — callers can detect this via the returned choice's
        ``predicted_time_s``.

    Returns
    -------
    (best, all_choices):
        The selected choice and every P-state's evaluation (fastest
        first), for reporting.
    """
    if deadline_s is not None and deadline_s <= 0.0:
        raise ValueError("deadline must be positive")
    processor = power_model.processor
    active_cores = 1 + len(co_app_names)
    choices = []
    for pstate in processor.pstates:
        target_base = baselines.get(target_name, pstate.frequency_ghz)
        co_bases = [
            baselines.get(n, pstate.frequency_ghz) for n in co_app_names
        ]
        predicted = predictor.predict_time(target_base, co_bases)
        choices.append(
            PStateChoice(
                pstate=pstate,
                predicted_time_s=predicted,
                chip_power_w=power_model.chip_power_w(pstate, active_cores),
            )
        )

    feasible = (
        [c for c in choices if c.predicted_time_s <= deadline_s]
        if deadline_s is not None
        else list(choices)
    )
    if not feasible:
        # Best effort: nothing meets the deadline; finish soonest.  Ties
        # resolve to the lowest frequency (same rule as below).
        best = min(
            choices,
            key=lambda c: (c.predicted_time_s, c.pstate.frequency_ghz),
        )
        return best, choices

    key = {
        GovernorObjective.ENERGY: lambda c: c.predicted_energy_j,
        GovernorObjective.EDP: lambda c: c.energy_delay_product,
        GovernorObjective.TIME: lambda c: c.predicted_time_s,
    }[objective]
    # Deterministic tie-break: equal objective values resolve to the
    # lowest frequency (least power headroom wasted), not whichever
    # P-state the ladder happened to list first.
    return (
        min(feasible, key=lambda c: (key(c), c.pstate.frequency_ghz)),
        choices,
    )
