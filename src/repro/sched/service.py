"""Online degradation-aware cluster scheduler service.

The consumer side of the paper's Section VI vision, run at fleet scale:
jobs are submitted over HTTP, an event-driven loop places them across a
simulated fleet (thousands of nodes held as vectorized
:class:`~repro.sched.fleet.FleetState` arrays), and every placement
decision is scored by the *prediction tier* — one batched
``POST /v1/predict`` per scheduling round, so the serving micro-batcher
sees ``round × candidates`` rows at once instead of per-node chatter.

Time is virtual: the fleet's physics (the same
:class:`~repro.sched.fleet.RunningSet` core the cluster simulator uses)
advances to the next completion whenever the queue is empty or no
placement is possible, so the loop runs as fast as decisions can be
made.  The scheduler optionally migrates the worst-regret running job
(threshold-triggered) and runs the :mod:`repro.sched.governor` DVFS
policy on every placement.

Reuses the serving plumbing end to end: :class:`HttpServerBase` drain
protocol, ``/metrics`` (merged obs registry), ``X-Request-Id``, tracing.

Endpoints::

    POST /v1/jobs        {"app": "cg"} | {"app": "cg", "count": 3}
                         | {"apps": ["cg", "ep"]}  -> {"ids": [...]}
    GET  /v1/jobs        queue/fleet counts (+ ?status= id listing)
    GET  /v1/jobs/<id>   one job's full lifecycle record
    GET  /v1/cluster     fleet occupancy + scheduler state
    GET  /healthz, GET /metrics
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque

import numpy as np

from ..core.features import Feature, feature_row
from ..core.feature_sets import features_for
from ..energy.power import PowerModel
from ..harness.baselines import BaselineTable
from ..obs.adapters import install_default_sources
from ..obs.registry import MetricsRegistry
from ..obs.trace import get_tracer
from ..serve.client import PredictionClient
from ..serve.http import HTTPError, HttpServerBase, Request, ServerThreadBase
from ..serve.metrics import LatencyHistogram, ServingMetrics
from ..sim.engine import SimulationEngine
from ..sim.solve_cache import SolveCache
from ..workloads.app import ApplicationSpec
from ..workloads.suite import get_application
from .fleet import FleetState, RunningSet
from .governor import GovernorObjective, select_pstate
from .queue import Job, JobQueue, JobStatus

__all__ = [
    "DEGRADATION_BUCKETS",
    "LocalScorer",
    "RemoteScorer",
    "SchedMetrics",
    "SchedulerClient",
    "SchedulerService",
    "SchedulerThread",
]

POLICIES = ("model", "first-fit", "least-loaded")

#: Degradation histograms cover slowdowns (>= 1.0 in the common case).
DEGRADATION_BUCKETS = (1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0)

_ALL_FEATURES = tuple(Feature)


def _render_histogram(name: str, help_text: str, hist: LatencyHistogram) -> list[str]:
    """Prometheus histogram samples (cumulative ``le`` buckets)."""
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in zip(hist.buckets, hist.bucket_counts):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
    cumulative += hist.bucket_counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {hist.total}")
    lines.append(f"{name}_count {hist.count}")
    return lines


class SchedMetrics:
    """Scheduler-semantics counters exported as ``repro_sched_*``.

    Single-threaded like :class:`~repro.serve.metrics.ServingMetrics`:
    only the scheduler loop mutates it; ``/metrics`` reads a snapshot.
    """

    def __init__(self) -> None:
        self.jobs_submitted = 0
        self.placements = 0
        self.migrations = 0
        self.completions = 0
        self.requeued = 0
        self.predict_batches = 0
        self.predict_rows = 0
        #: Wall latency of one scheduling round (includes the batched
        #: predict round-trip when the model policy is active).
        self.decision_latency = LatencyHistogram()
        self.predicted_degradation = LatencyHistogram(
            buckets=DEGRADATION_BUCKETS
        )
        self.realized_degradation = LatencyHistogram(
            buckets=DEGRADATION_BUCKETS
        )
        #: Sum/count of (realized - predicted) over completed jobs that
        #: had a model prediction; the gauge is the running mean.
        self.regret_sum = 0.0
        self.regret_count = 0
        self.last_regret = 0.0

    def record_completion(
        self, realized: float, predicted: float | None
    ) -> None:
        self.completions += 1
        self.realized_degradation.observe(realized)
        if predicted is not None:
            self.last_regret = realized - predicted
            self.regret_sum += self.last_regret
            self.regret_count += 1

    @property
    def mean_regret(self) -> float:
        return self.regret_sum / self.regret_count if self.regret_count else 0.0

    def render_prometheus(self) -> str:
        counters = [
            ("jobs_submitted_total", "Jobs accepted via POST /v1/jobs.",
             self.jobs_submitted),
            ("placements_total", "Placement decisions committed.",
             self.placements),
            ("migrations_total", "Threshold-triggered job migrations.",
             self.migrations),
            ("completions_total", "Jobs run to completion.",
             self.completions),
            ("requeued_total", "Jobs explicitly requeued at drain.",
             self.requeued),
            ("predict_batches_total",
             "Batched prediction calls to the serving tier.",
             self.predict_batches),
            ("predict_rows_total",
             "Candidate rows scored by the serving tier.",
             self.predict_rows),
        ]
        lines: list[str] = []
        for name, help_text, value in counters:
            full = f"repro_sched_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {value}")
        lines.append(
            "# HELP repro_sched_regret Mean realized-minus-predicted "
            "slowdown over completed jobs."
        )
        lines.append("# TYPE repro_sched_regret gauge")
        lines.append(f"repro_sched_regret {self.mean_regret}")
        lines.append(
            "# HELP repro_sched_last_regret Realized-minus-predicted "
            "slowdown of the most recent completion."
        )
        lines.append("# TYPE repro_sched_last_regret gauge")
        lines.append(f"repro_sched_last_regret {self.last_regret}")
        lines.extend(
            _render_histogram(
                "repro_sched_decision_latency_seconds",
                "Wall latency of one scheduling round.",
                self.decision_latency,
            )
        )
        lines.extend(
            _render_histogram(
                "repro_sched_predicted_degradation",
                "Predicted slowdown of committed placements.",
                self.predicted_degradation,
            )
        )
        lines.extend(
            _render_histogram(
                "repro_sched_realized_degradation",
                "Realized slowdown of completed jobs.",
                self.realized_degradation,
            )
        )
        return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ scorers


class RemoteScorer:
    """Scores placements through the prediction tier.

    Sends every Table I feature with each row — the server selects the
    subset its resident model was trained on — so the scorer needs no
    knowledge of the served feature set.  ``predict_rows`` is the
    batched round path; ``predict_time`` adapts the same client to the
    :func:`~repro.sched.governor.select_pstate` predictor protocol.
    """

    def __init__(
        self, host: str, port: int, *, model: str, timeout: float = 30.0
    ) -> None:
        self.model = model
        self.client = PredictionClient(host, port, timeout=timeout)

    def predict_rows(self, rows: list[dict]) -> list[float]:
        """One batched predict for a whole scheduling round."""
        payload = self.client.predict_batch(rows, model=self.model)
        return [float(p) for p in payload["predictions"]]

    def predict_time(self, target_baseline, co_baselines) -> float:
        """Governor adapter: predicted co-located time for one placement."""
        values = feature_row(target_baseline, list(co_baselines), _ALL_FEATURES)
        features = {
            f.value: float(v) for f, v in zip(_ALL_FEATURES, values)
        }
        payload = self.client.predict(features, model=self.model)
        return float(payload["prediction"])

    def close(self) -> None:
        self.client.close()


class LocalScorer:
    """In-process scorer over a trained predictor (no serving tier).

    Same protocol as :class:`RemoteScorer`; used by tests and by
    deployments that co-locate the model with the scheduler.
    """

    def __init__(self, predictor) -> None:
        self.predictor = predictor
        self.features = features_for(predictor.feature_set)

    def predict_rows(self, rows: list[dict]) -> list[float]:
        X = np.array(
            [[float(row[f.value]) for f in self.features] for row in rows]
        )
        return [float(v) for v in self.predictor.predict_rows(X)]

    def predict_time(self, target_baseline, co_baselines) -> float:
        return float(
            self.predictor.predict_time(target_baseline, list(co_baselines))
        )

    def close(self) -> None:  # protocol parity
        pass


# ------------------------------------------------------------------ service


class SchedulerService(HttpServerBase):
    """Degradation-aware online scheduler over a simulated fleet.

    Parameters
    ----------
    fleet:
        Vectorized node state (``MachineConfig`` blocks expanded).
    baselines:
        One :class:`BaselineTable` (homogeneous fleet) or a dict keyed
        by processor name; must cover every submittable application at
        every P-state frequency.
    scorer:
        :class:`RemoteScorer`/:class:`LocalScorer` (anything with
        ``predict_rows``/``predict_time``).  Required for the ``model``
        policy and for the governor; baseline policies run without it.
    policy:
        ``"model"`` (contention-aware argmin over pruned candidates),
        ``"first-fit"`` (lowest-index free node) or ``"least-loaded"``
        (most free cores) — the baselines exist so one service binary
        can A/B its own decision quality.
    round_size / max_candidates:
        Jobs pulled per scheduling round × candidate nodes scored per
        job: the batched predict is at most ``round × candidates`` rows.
    migrate_threshold:
        Estimated-regret threshold (realized-so-far minus predicted
        slowdown) above which the worst running job is re-scored and
        migrated when a candidate improves on it by ``migrate_margin``.
        ``None`` disables migration.
    governor_objective:
        When set, every placement also re-selects the node's P-state via
        :func:`repro.sched.governor.select_pstate` (requires a scorer).
    engines:
        One engine per fleet block; defaults to fresh engines sharing a
        :class:`SolveCache`.
    pace_s:
        Optional sleep between scheduling rounds (0 = run flat out).
    """

    known_endpoints = (
        "/v1/jobs", "/v1/cluster", "/healthz", "/metrics",
    )
    request_span_name = "sched.request"

    def __init__(
        self,
        fleet: FleetState,
        baselines: BaselineTable | dict[str, BaselineTable],
        *,
        scorer=None,
        policy: str = "model",
        round_size: int = 32,
        max_candidates: int = 8,
        migrate_threshold: float | None = None,
        migrate_margin: float = 0.05,
        migrate_every: int = 4,
        governor_objective: GovernorObjective | None = None,
        governor_deadline_s: float | None = None,
        engines: list[SimulationEngine] | None = None,
        pace_s: float = 0.0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host=host, port=port)
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {POLICIES}")
        if policy == "model" and scorer is None:
            raise ValueError("the model policy needs a scorer")
        if governor_objective is not None and scorer is None:
            raise ValueError("the governor needs a scorer")
        if round_size < 1:
            raise ValueError("round size must be >= 1")
        if max_candidates < 1:
            raise ValueError("candidate budget must be >= 1")
        if migrate_threshold is not None and migrate_threshold <= 0.0:
            raise ValueError("migration threshold must be positive")
        if migrate_every < 1:
            raise ValueError("migration cadence must be >= 1")
        if pace_s < 0.0:
            raise ValueError("pace must be non-negative")
        self.fleet = fleet
        if isinstance(baselines, BaselineTable):
            baselines = {
                cfg.processor.name: baselines for cfg in fleet.blocks
            }
        missing = {
            cfg.processor.name for cfg in fleet.blocks
        } - set(baselines)
        if missing:
            raise ValueError(
                f"baselines missing for processors: {sorted(missing)}"
            )
        self.baselines = baselines
        if engines is None:
            cache = SolveCache()
            engines = [
                SimulationEngine(cfg.processor, cache=cache)
                for cfg in fleet.blocks
            ]
        self.scorer = scorer
        self.policy = policy
        self.round_size = round_size
        self.max_candidates = max_candidates
        self.migrate_threshold = migrate_threshold
        self.migrate_margin = migrate_margin
        self.migrate_every = migrate_every
        self.governor_objective = governor_objective
        self.governor_deadline_s = governor_deadline_s
        self.pace_s = pace_s

        self.queue = JobQueue()
        self.running = RunningSet(fleet, engines)
        self._power = [PowerModel(cfg.processor) for cfg in fleet.blocks]
        self._now = 0.0
        self._rounds = 0
        self._draining = False
        self._stop_loop = False
        self._wake = asyncio.Event()
        self._loop_task: asyncio.Task | None = None

        self.sched_metrics = SchedMetrics()
        self.metrics = ServingMetrics(prefix="repro_sched")
        self.obs_registry = install_default_sources(
            MetricsRegistry(),
            serving=self.metrics.render_prometheus,
            sched=self._render_sched_metrics,
        )

    # -------------------------------------------------------------- state

    @property
    def now_s(self) -> float:
        """Current virtual time."""
        return self._now

    def _table(self, node: int) -> BaselineTable:
        return self.baselines[self.fleet.processor(node).name]

    def _base_time(self, node: int, app: ApplicationSpec) -> float:
        """Solo time of ``app`` at the node's *current* P-state."""
        freq = self.fleet.pstate(node).frequency_ghz
        return self._table(node).get(app.name, freq).wall_time_s

    def _app_stats(self, node: int, app: ApplicationSpec) -> tuple[float, float, float]:
        """Frequency-invariant co-feature contributions of one app."""
        fmax = self.fleet.processor(node).pstates.fastest.frequency_ghz
        base = self._table(node).get(app.name, fmax)
        return (base.memory_intensity, base.cm_per_ca, base.ca_per_ins)

    def _feature_dict(self, app: ApplicationSpec, node: int) -> dict:
        """Table I feature row for placing ``app`` on ``node`` — O(1)

        thanks to the fleet's resident co-feature sums."""
        fleet = self.fleet
        fmax = fleet.processor(node).pstates.fastest.frequency_ghz
        target = self._table(node).get(app.name, fmax)
        return {
            Feature.BASE_EX_TIME.value: self._base_time(node, app),
            Feature.NUM_CO_APP.value: float(fleet.used[node]),
            Feature.CO_APP_MEM.value: float(fleet.co_mem[node]),
            Feature.TARGET_MEM.value: target.memory_intensity,
            Feature.CO_APP_CM_CA.value: float(fleet.co_cm_ca[node]),
            Feature.CO_APP_CA_INS.value: float(fleet.co_ca_ins[node]),
            Feature.TARGET_CM_CA.value: target.cm_per_ca,
            Feature.TARGET_CA_INS.value: target.ca_per_ins,
        }

    # ------------------------------------------------------------ metrics

    def _render_sched_metrics(self) -> str:
        lines = [self.sched_metrics.render_prometheus().rstrip("\n")]
        gauges = [
            ("queue_depth", "Jobs waiting for placement.",
             self.queue.pending),
            ("running_jobs", "Jobs currently executing.",
             self.running.count),
            ("fleet_free_cores", "Unoccupied cores across the fleet.",
             int(self.fleet.free_cores.sum())),
            ("fleet_busy_nodes", "Nodes with at least one resident job.",
             self.fleet.busy_nodes),
            ("virtual_time_s", "Scheduler virtual clock.", self._now),
        ]
        for name, help_text, value in gauges:
            full = f"repro_sched_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {value}")
        return "\n".join(lines) + "\n"

    def _record_request(self, endpoint: str, status: int, seconds: float) -> None:
        self.metrics.record_request(endpoint, status, seconds)

    def _record_error(self, reason: str) -> None:
        self.metrics.record_error(reason)

    def _endpoint_label(self, path: str) -> str:
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{id}"
        return super()._endpoint_label(path)

    # ---------------------------------------------------------- lifecycle

    async def _on_start(self) -> None:
        self._stop_loop = False
        self._loop_task = asyncio.create_task(self._scheduler_loop())

    async def _drain(self) -> None:
        """Finish the in-flight round, complete running work, requeue.

        Placement rounds already dispatched commit normally; jobs still
        executing run to (virtual) completion; jobs that never left the
        queue are marked ``requeued`` — every accepted job ends the
        drain either completed or explicitly requeued.
        """
        self._draining = True
        if self._loop_task is not None:
            self._stop_loop = True
            self._wake.set()
            await self._loop_task
            self._loop_task = None
        while self.running.count:
            if not self._advance_once():
                break
            await asyncio.sleep(0)
        for job in self.queue.drain_pending():
            job.status = JobStatus.REQUEUED
            self.sched_metrics.requeued += 1

    # --------------------------------------------------------------- loop

    async def _scheduler_loop(self) -> None:
        while not self._stop_loop:
            self._wake.clear()
            progressed = await self._step()
            if self._stop_loop:
                break
            if self.pace_s > 0.0:
                await asyncio.sleep(self.pace_s)
            elif progressed:
                await asyncio.sleep(0)  # stay cooperative with handlers
            else:
                await self._wake.wait()

    async def _step(self) -> bool:
        """One scheduling round; returns whether anything happened."""
        progressed = False
        placed = 0
        jobs = self.queue.take(self.round_size)
        with get_tracer().span(
            "sched.round", jobs=len(jobs), round=self._rounds
        ) as round_span:
            if jobs:
                placed = await self._place_round(jobs)
                progressed = placed > 0
            self._rounds += 1
            if (
                self.migrate_threshold is not None
                and self.scorer is not None
                and self.running.count
                and self._rounds % self.migrate_every == 0
            ):
                if await self._migrate_once():
                    progressed = True
            if self.running.count and (self.queue.pending == 0 or placed == 0):
                if self._advance_once():
                    progressed = True
            round_span.set(placed=placed, progressed=progressed)
        return progressed

    # ---------------------------------------------------------- placement

    async def _place_round(self, jobs: list[Job]) -> int:
        """Score and commit one round; unplaceable jobs rejoin the queue."""
        t0 = time.perf_counter()
        free_local = self.fleet.free_cores.copy()
        plan: list[tuple[Job, int, float | None]] = []
        unplaced: list[Job] = []
        if self.policy == "model":
            cand = self.fleet.candidates(self.max_candidates)
            if cand.size == 0:
                self.queue.put_back(jobs)
                return 0
            rows = [
                self._feature_dict(job.app, int(n))
                for job in jobs
                for n in cand
            ]
            # The sched.predict span stays open across the to_thread hop:
            # contextvars travel with it, so the blocking client inside
            # propagates this span's context to the prediction tier and
            # the tier's request spans join the scheduler's trace.
            with get_tracer().span("sched.predict", rows=len(rows)):
                preds = await asyncio.to_thread(
                    self.scorer.predict_rows, rows
                )
            self.sched_metrics.predict_batches += 1
            self.sched_metrics.predict_rows += len(rows)
            times = np.asarray(preds, dtype=float).reshape(len(jobs), cand.size)
            bases = np.array(
                [
                    [self._base_time(int(n), job.app) for n in cand]
                    for job in jobs
                ]
            )
            slowdowns = times / bases
            # The batch prices the fleet as it stood when the round
            # began; two corrections keep a burst from collapsing onto
            # the first candidate.  (1) Empty nodes are interchangeable,
            # so ``candidates()`` sends one empty representative per
            # block — jobs the argmin sends there fan out across the
            # block's other empty nodes, where the solo prediction
            # transfers exactly.  (2) Once empties run out, each node
            # already planned this round gets its score inflated by its
            # planned share of cores, so stale intra-round ties spread
            # round-robin instead of packing, while genuine mix
            # differences still decide between equally-planned nodes.
            empty_pools: dict[int, deque[int]] = {}
            for n in np.flatnonzero((self.fleet.used == 0) & (free_local > 0)):
                block = int(self.fleet.block_index[n])
                empty_pools.setdefault(block, deque()).append(int(n))
            planned: dict[int, int] = {}
            for i, job in enumerate(jobs):
                open_mask = free_local[cand] > 0
                scores = np.full(cand.size, np.inf)
                for ci, n in enumerate(cand):
                    n = int(n)
                    pool = empty_pools.get(int(self.fleet.block_index[n]))
                    if pool and self.fleet.used[n] == 0:
                        open_mask[ci] = True
                        scores[ci] = slowdowns[i][ci]
                    elif open_mask[ci]:
                        crowd = planned.get(n, 0) / int(
                            self.fleet.num_cores[n]
                        )
                        scores[ci] = slowdowns[i][ci] * (1.0 + crowd)
                if not open_mask.any():
                    unplaced.append(job)
                    continue
                pick = int(np.argmin(scores))
                node = int(cand[pick])
                pool = empty_pools.get(int(self.fleet.block_index[node]))
                if pool and self.fleet.used[node] == 0:
                    node = pool.popleft()
                free_local[node] -= 1
                planned[node] = planned.get(node, 0) + 1
                plan.append((job, node, float(slowdowns[i][pick])))
        else:
            for job in jobs:
                if self.policy == "first-fit":
                    open_nodes = np.flatnonzero(free_local > 0)
                    node = int(open_nodes[0]) if open_nodes.size else None
                else:  # least-loaded
                    node = int(np.argmax(free_local))
                    if free_local[node] <= 0:
                        node = None
                if node is None:
                    unplaced.append(job)
                    continue
                free_local[node] -= 1
                plan.append((job, node, None))
        if unplaced:
            self.queue.put_back(unplaced)
        for job, node, predicted in plan:
            await self._commit(job, node, predicted)
        if plan:
            self.sched_metrics.decision_latency.observe(
                time.perf_counter() - t0
            )
        return len(plan)

    async def _commit(
        self, job: Job, node: int, predicted_slowdown: float | None
    ) -> None:
        co_names = [r.app.name for r in self.running.jobs_on(node)]
        self.running.add(
            job.id,
            job.app,
            node,
            self._now,
            stats=self._app_stats(node, job.app),
        )
        if self.governor_objective is not None:
            table = self._table(node)
            choice, _ = await asyncio.to_thread(
                select_pstate,
                self.scorer,
                self._power[int(self.fleet.block_index[node])],
                table,
                job.app.name,
                co_names,
                objective=self.governor_objective,
                deadline_s=self.governor_deadline_s,
            )
            self.fleet.set_pstate(node, choice.pstate.index)
            self.running.mark_dirty(node)
            base = table.get(
                job.app.name, choice.pstate.frequency_ghz
            ).wall_time_s
            predicted_slowdown = choice.predicted_time_s / base
        else:
            base = self._base_time(node, job.app)
        job.status = JobStatus.RUNNING
        job.node = node
        job.node_name = self.fleet.node_name(node)
        job.pstate_ghz = self.fleet.pstate(node).frequency_ghz
        job.placed_s = self._now
        job.baseline_s = base
        job.predicted_slowdown = predicted_slowdown
        self.sched_metrics.placements += 1
        if predicted_slowdown is not None:
            self.sched_metrics.predicted_degradation.observe(
                predicted_slowdown
            )

    # ---------------------------------------------------------- migration

    async def _migrate_once(self) -> bool:
        """Re-score and move the worst-regret running job, if any."""
        with get_tracer().span("sched.migrate") as span:
            moved = await self._migrate_pick(span)
            span.set(moved=moved)
        return moved

    async def _migrate_pick(self, span) -> bool:
        worst = None
        worst_regret = self.migrate_threshold
        worst_est = 0.0
        for rj in self.running.jobs():
            job = self.queue.get(rj.job_id)
            if job is None or job.predicted_slowdown is None:
                continue
            ips = self.running.rate_of(rj.job_id)
            est_total = (self._now - rj.start_s) + (
                rj.remaining_instructions / ips
            )
            est_slowdown = est_total / job.baseline_s
            regret = est_slowdown - job.predicted_slowdown
            if regret > worst_regret:
                worst, worst_regret, worst_est = rj, regret, est_slowdown
        if worst is None:
            return False
        cand = self.fleet.candidates(self.max_candidates)
        cand = cand[cand != worst.node]
        if cand.size == 0:
            return False
        span.set(job_id=worst.job_id, regret=worst_regret)
        rows = [self._feature_dict(worst.app, int(n)) for n in cand]
        with get_tracer().span("sched.predict", rows=len(rows)):
            preds = await asyncio.to_thread(self.scorer.predict_rows, rows)
        self.sched_metrics.predict_batches += 1
        self.sched_metrics.predict_rows += len(rows)
        slowdowns = [
            float(p) / self._base_time(int(n), worst.app)
            for p, n in zip(preds, cand)
        ]
        pick = int(np.argmin(slowdowns))
        if slowdowns[pick] >= worst_est - self.migrate_margin:
            return False
        job = self.queue.get(worst.job_id)
        moved = self.running.remove(worst.job_id)
        node = int(cand[pick])
        self.running.add(
            moved.job_id,
            moved.app,
            node,
            moved.start_s,
            remaining_instructions=moved.remaining_instructions,
            stats=self._app_stats(node, moved.app),
        )
        job.node = node
        job.node_name = self.fleet.node_name(node)
        job.pstate_ghz = self.fleet.pstate(node).frequency_ghz
        job.migrations += 1
        self.sched_metrics.migrations += 1
        return True

    # --------------------------------------------------------- completion

    def _advance_once(self) -> bool:
        """Advance virtual time to the next completion."""
        t = self.running.next_completion(self._now)
        if not np.isfinite(t):
            return False
        self.running.advance_to(t, self._now)
        self._now = t
        for done in self.running.pop_finished():
            job = self.queue.get(done.job_id)
            if job is None:
                continue
            job.status = JobStatus.COMPLETED
            job.completed_s = self._now
            job.realized_slowdown = (
                (self._now - job.placed_s) / job.baseline_s
            )
            self.sched_metrics.record_completion(
                job.realized_slowdown, job.predicted_slowdown
            )
        return True

    # ------------------------------------------------------------- routes

    async def _route(self, request: Request):
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            body = {
                "status": "draining" if self._draining else "ok",
                "policy": self.policy,
                "nodes": self.fleet.n_nodes,
            }
            return 200, "application/json", json.dumps(body).encode()
        if path == "/metrics":
            self._require(method, "GET")
            text = self.obs_registry.render()
            return 200, "text/plain; version=0.0.4", text.encode()
        if path == "/v1/cluster":
            self._require(method, "GET")
            return 200, "application/json", json.dumps(
                self._cluster_body()
            ).encode()
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(request)
            self._require(method, "GET")
            return self._list_jobs(request)
        if path.startswith("/v1/jobs/"):
            self._require(method, "GET")
            return self._job_detail(path[len("/v1/jobs/"):])
        raise HTTPError(404, "not_found", f"no route for {path}")

    def _cluster_body(self) -> dict:
        m = self.sched_metrics
        body = self.fleet.summary()
        body.update(
            {
                "policy": self.policy,
                "virtual_time_s": self._now,
                "draining": self._draining,
                "counts": self.queue.counts(),
                "queue_depth": self.queue.pending,
                "running_jobs": self.running.count,
                "placements": m.placements,
                "migrations": m.migrations,
                "completions": m.completions,
                "mean_regret": m.mean_regret,
            }
        )
        return body

    def _submit(self, request: Request):
        if self._draining:
            raise HTTPError(503, "draining", "scheduler is draining")
        try:
            body = json.loads(request.body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HTTPError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise HTTPError(400, "bad_request", "body must be a JSON object")
        names: list[str] = []
        if "apps" in body:
            apps = body["apps"]
            if not isinstance(apps, list) or not all(
                isinstance(a, str) for a in apps
            ):
                raise HTTPError(
                    400, "bad_request", '"apps" must be a list of names'
                )
            names = list(apps)
        elif "app" in body:
            if not isinstance(body["app"], str):
                raise HTTPError(400, "bad_request", '"app" must be a string')
            count = body.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise HTTPError(
                    400, "bad_request", '"count" must be a positive integer'
                )
            names = [body["app"]] * count
        if not names:
            raise HTTPError(
                400, "bad_request", 'submit needs "app" or "apps"'
            )
        try:
            apps = [get_application(name) for name in names]
        except KeyError as exc:
            raise HTTPError(400, "unknown_app", str(exc.args[0])) from None
        ids = []
        for app in apps:
            job = self.queue.submit(app, self._now)
            ids.append(job.id)
            self.sched_metrics.jobs_submitted += 1
        self._wake.set()
        payload = {"ids": ids, "queue_depth": self.queue.pending}
        return 200, "application/json", json.dumps(payload).encode()

    def _list_jobs(self, request: Request):
        body: dict = {"counts": self.queue.counts()}
        wanted = request.query.get("status", [None])[0]
        if wanted is not None:
            try:
                status = JobStatus(wanted)
            except ValueError:
                raise HTTPError(
                    400, "bad_request", f"unknown status {wanted!r}"
                ) from None
            body["ids"] = [
                j.id for j in self.queue.jobs() if j.status is status
            ]
        return 200, "application/json", json.dumps(body).encode()

    def _job_detail(self, raw_id: str):
        try:
            job_id = int(raw_id)
        except ValueError:
            raise HTTPError(
                400, "bad_request", f"job id must be an integer, got {raw_id!r}"
            ) from None
        job = self.queue.get(job_id)
        if job is None:
            raise HTTPError(404, "unknown_job", f"no job {job_id}")
        return 200, "application/json", json.dumps(job.to_dict()).encode()


class SchedulerThread(ServerThreadBase):
    """Run a :class:`SchedulerService` on a background event loop."""

    thread_name = "repro-sched"

    def __init__(self, fleet, baselines, **kwargs) -> None:
        super().__init__(SchedulerService(fleet, baselines, **kwargs))


class SchedulerClient(PredictionClient):
    """Blocking client for the scheduler API (keep-alive, like predict)."""

    def submit(self, apps: list[str] | str, *, count: int = 1) -> dict:
        if isinstance(apps, str):
            body = {"app": apps, "count": count}
        else:
            body = {"apps": list(apps)}
        return self._json("POST", "/v1/jobs", body)

    def cluster(self) -> dict:
        return self._json("GET", "/v1/cluster")

    def job(self, job_id: int) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self, *, status: str | None = None) -> dict:
        path = "/v1/jobs" + (f"?status={status}" if status else "")
        return self._json("GET", path)
