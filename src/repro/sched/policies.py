"""Placement policies for multi-machine job scheduling.

Baseline policies a co-location-unaware resource manager might use, against
which the interference-aware scheduler (:mod:`repro.sched.scheduler`) is
compared.  A *placement* assigns each job to one machine; each machine then
runs all of its jobs co-located (one per core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.processor import MulticoreProcessor
from ..workloads.app import ApplicationSpec

__all__ = ["Placement", "round_robin", "pack_first", "spread_by_intensity"]


@dataclass
class Placement:
    """An assignment of jobs to machines (index-aligned with the machines)."""

    machines: tuple[MulticoreProcessor, ...]
    assignments: list[list[ApplicationSpec]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("placement needs at least one machine")
        if not self.assignments:
            self.assignments = [[] for _ in self.machines]
        if len(self.assignments) != len(self.machines):
            raise ValueError("assignments must align with machines")

    def assign(self, machine_index: int, job: ApplicationSpec) -> None:
        """Place one job, enforcing the machine's core capacity."""
        machine = self.machines[machine_index]
        group = self.assignments[machine_index]
        if len(group) >= machine.num_cores:
            raise ValueError(
                f"{machine.name} has {machine.num_cores} cores; all occupied"
            )
        group.append(job)

    def free_cores(self, machine_index: int) -> int:
        """Unoccupied cores on one machine."""
        return self.machines[machine_index].num_cores - len(
            self.assignments[machine_index]
        )

    @property
    def total_capacity(self) -> int:
        """Total cores across all machines."""
        return sum(m.num_cores for m in self.machines)

    def job_count(self) -> int:
        """Jobs placed so far."""
        return sum(len(g) for g in self.assignments)


def _check_capacity(
    jobs: list[ApplicationSpec], machines: tuple[MulticoreProcessor, ...]
) -> None:
    capacity = sum(m.num_cores for m in machines)
    if len(jobs) > capacity:
        raise ValueError(
            f"{len(jobs)} jobs exceed the {capacity} cores available"
        )


def round_robin(
    jobs: list[ApplicationSpec],
    machines: tuple[MulticoreProcessor, ...],
) -> Placement:
    """Deal jobs across machines in turn, skipping full machines."""
    placement = Placement(machines=machines)
    _check_capacity(jobs, machines)
    idx = 0
    for job in jobs:
        for _ in range(len(machines)):
            if placement.free_cores(idx) > 0:
                placement.assign(idx, job)
                idx = (idx + 1) % len(machines)
                break
            idx = (idx + 1) % len(machines)
        else:  # pragma: no cover - guarded by _check_capacity
            raise ValueError("no free cores remain")
    return placement


def pack_first(
    jobs: list[ApplicationSpec],
    machines: tuple[MulticoreProcessor, ...],
) -> Placement:
    """Fill each machine completely before starting the next.

    This is the consolidation-maximizing policy: fewest machines powered,
    worst co-location pressure — the power/performance trade-off the
    paper's introduction motivates.
    """
    placement = Placement(machines=machines)
    _check_capacity(jobs, machines)
    idx = 0
    for job in jobs:
        while placement.free_cores(idx) == 0:
            idx += 1
        placement.assign(idx, job)
    return placement


def spread_by_intensity(
    jobs: list[ApplicationSpec],
    machines: tuple[MulticoreProcessor, ...],
    llc_reference_bytes: float | None = None,
) -> Placement:
    """Heuristic: alternate memory-heavy jobs across machines.

    Sorts jobs by baseline memory intensity (descending) and deals them
    round-robin, so each machine gets a balanced intensity mix.  A
    class-information-only strategy a resource manager could run without
    any trained model (the paper's Section IV-B1 "class values" use case).
    """
    ref = llc_reference_bytes or float(machines[0].llc.size_bytes)
    ordered = sorted(
        jobs, key=lambda a: a.solo_memory_intensity(ref), reverse=True
    )
    return round_robin(ordered, machines)
