"""Job lifecycle bookkeeping for the online scheduler.

Every accepted submission gets a :class:`Job` record that lives for the
service's lifetime: queued → running → completed, or queued → requeued
when the service drains before the job could be placed.  The FIFO
discipline matches :class:`~repro.sched.cluster.ClusterSimulator`:
jobs are offered to the placement policy in submission order, and jobs
a round cannot place return to the *front* of the queue.

:func:`job_stream` is the shared pinned-seed arrival generator used by
the scheduling benches, so the service bench and the offline extension
bench replay the identical workload.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..workloads.app import ApplicationSpec

__all__ = ["JobStatus", "Job", "JobQueue", "job_stream"]


class JobStatus(enum.Enum):
    """Lifecycle of one accepted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REQUEUED = "requeued"


@dataclass
class Job:
    """One accepted job and everything the API reports about it."""

    id: int
    app: ApplicationSpec
    submitted_s: float
    status: JobStatus = JobStatus.QUEUED
    node: int | None = None
    node_name: str | None = None
    pstate_ghz: float | None = None
    placed_s: float | None = None
    completed_s: float | None = None
    baseline_s: float | None = None
    predicted_slowdown: float | None = None
    realized_slowdown: float | None = None
    migrations: int = 0

    @property
    def regret(self) -> float | None:
        """Realized minus predicted slowdown (placement-decision error)."""
        if self.predicted_slowdown is None or self.realized_slowdown is None:
            return None
        return self.realized_slowdown - self.predicted_slowdown

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "app": self.app.name,
            "status": self.status.value,
            "node": self.node_name,
            "pstate_ghz": self.pstate_ghz,
            "submitted_s": self.submitted_s,
            "placed_s": self.placed_s,
            "completed_s": self.completed_s,
            "baseline_s": self.baseline_s,
            "predicted_slowdown": self.predicted_slowdown,
            "realized_slowdown": self.realized_slowdown,
            "regret": self.regret,
            "migrations": self.migrations,
        }


class JobQueue:
    """FIFO queue plus a permanent registry of accepted jobs."""

    def __init__(self) -> None:
        self._jobs: dict[int, Job] = {}
        self._pending: deque[int] = deque()
        self._next_id = 0

    def submit(self, app: ApplicationSpec, now_s: float) -> Job:
        job = Job(id=self._next_id, app=app, submitted_s=now_s)
        self._next_id += 1
        self._jobs[job.id] = job
        self._pending.append(job.id)
        return job

    def take(self, n: int) -> list[Job]:
        """Pop up to ``n`` jobs in submission order."""
        out: list[Job] = []
        while self._pending and len(out) < n:
            out.append(self._jobs[self._pending.popleft()])
        return out

    def put_back(self, jobs: list[Job]) -> None:
        """Return unplaced jobs to the front, preserving FIFO order."""
        for job in reversed(jobs):
            self._pending.appendleft(job.id)

    def get(self, job_id: int) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    @property
    def pending(self) -> int:
        return len(self._pending)

    def pending_jobs(self) -> list[Job]:
        return [self._jobs[jid] for jid in self._pending]

    def drain_pending(self) -> list[Job]:
        """Empty the queue (drain path); caller marks them requeued."""
        out = self.pending_jobs()
        self._pending.clear()
        return out

    def counts(self) -> dict[str, int]:
        out = {status.value: 0 for status in JobStatus}
        for job in self._jobs.values():
            out[job.status.value] += 1
        return out

    def __len__(self) -> int:
        return len(self._jobs)


def job_stream(
    apps: list[ApplicationSpec],
    n_jobs: int,
    *,
    mean_gap_s: float = 20.0,
    seed: int = 12,
) -> list[tuple[ApplicationSpec, float]]:
    """Pinned-seed arrival stream shared by the scheduling benches.

    Returns ``(app, arrival_s)`` pairs with exponential inter-arrival
    gaps and a uniform job mix — deterministic for a given seed, so
    policies are compared on the *identical* workload.
    """
    if not apps:
        raise ValueError("need at least one application")
    if n_jobs < 0:
        raise ValueError("job count must be non-negative")
    rng = np.random.default_rng(seed)
    now = 0.0
    stream: list[tuple[ApplicationSpec, float]] = []
    for _ in range(n_jobs):
        now += float(rng.exponential(mean_gap_s))
        stream.append((apps[int(rng.integers(len(apps)))], round(now, 3)))
    return stream
