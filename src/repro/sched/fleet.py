"""Vectorized fleet occupancy + the shared running-set physics.

The online scheduler (:mod:`repro.sched.service`) and the event-driven
cluster simulator (:mod:`repro.sched.cluster`) share one simulation
core, split into two pieces:

* :class:`FleetState` — the *decision-time* view of up to thousands of
  nodes.  Declared as a few :class:`MachineConfig` blocks (processor ×
  count), held as flat numpy arrays (cores, occupancy, P-state index,
  resident co-feature sums), never as per-node Python objects.  Scoring
  a scheduling round is array arithmetic plus one batched model call.
* :class:`RunningSet` — the *physics*: per-job progress at the analytic
  engine's steady-state rates, re-solved lazily per node whenever that
  node's membership or P-state changes.  This is the same
  event-advancing discipline :class:`~repro.sched.cluster.ClusterSimulator`
  always used, extracted so the service and the simulator cannot drift.

Co-feature sums mirror the paper's Table I co-application features
(sum of co-runner memory intensities, CM/CA, CA/INS), so a candidate
node's feature row for the served model is O(1) to assemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.processor import MulticoreProcessor
from ..machine.pstates import PState
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec

__all__ = ["MachineConfig", "FleetState", "RunningJob", "RunningSet"]


@dataclass(frozen=True)
class MachineConfig:
    """One homogeneous block of identical nodes.

    ``count == 1`` nodes are named exactly ``name_prefix``; larger blocks
    get ``{prefix}-0000`` style suffixes.  The default prefix is derived
    from the processor name.
    """

    processor: MulticoreProcessor
    count: int = 1
    name_prefix: str | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("machine count must be >= 1")

    @property
    def prefix(self) -> str:
        if self.name_prefix:
            return self.name_prefix
        return self.processor.name.lower().replace(" ", "-")


class FleetState:
    """Occupancy of ``N`` nodes as flat arrays.

    Nodes are addressed by integer index; :meth:`node_name` /
    :meth:`index_of` translate to the human-facing names policies and
    APIs use.  The state a placement decision needs — free cores,
    current P-state, resident co-feature sums — lives in numpy arrays so
    candidate pruning over thousands of nodes is vectorized.
    """

    def __init__(self, configs: list[MachineConfig] | tuple[MachineConfig, ...]) -> None:
        if not configs:
            raise ValueError("need at least one machine block")
        self.blocks = tuple(configs)
        names: list[str] = []
        block_index: list[int] = []
        cores: list[int] = []
        for b, cfg in enumerate(self.blocks):
            for i in range(cfg.count):
                if cfg.count == 1:
                    names.append(cfg.prefix)
                else:
                    names.append(f"{cfg.prefix}-{i:04d}")
                block_index.append(b)
                cores.append(cfg.processor.num_cores)
        if len(set(names)) != len(names):
            raise ValueError("fleet node names must be unique")
        self.names = names
        self._index = {name: i for i, name in enumerate(names)}
        self.block_index = np.asarray(block_index, dtype=np.int64)
        self.num_cores = np.asarray(cores, dtype=np.int64)
        self.used = np.zeros(len(names), dtype=np.int64)
        self.pstate_index = np.zeros(len(names), dtype=np.int64)
        self.co_mem = np.zeros(len(names), dtype=np.float64)
        self.co_cm_ca = np.zeros(len(names), dtype=np.float64)
        self.co_ca_ins = np.zeros(len(names), dtype=np.float64)

    @classmethod
    def single_nodes(
        cls, machines: list[tuple[str, MulticoreProcessor]]
    ) -> "FleetState":
        """One explicitly named node per entry (the simulator's shape)."""
        return cls(
            [
                MachineConfig(processor=proc, count=1, name_prefix=name)
                for name, proc in machines
            ]
        )

    # ------------------------------------------------------------- queries

    @property
    def n_nodes(self) -> int:
        return len(self.names)

    @property
    def total_cores(self) -> int:
        return int(self.num_cores.sum())

    @property
    def free_cores(self) -> np.ndarray:
        return self.num_cores - self.used

    @property
    def busy_nodes(self) -> int:
        return int(np.count_nonzero(self.used))

    def processor(self, node: int) -> MulticoreProcessor:
        return self.blocks[int(self.block_index[node])].processor

    def pstate(self, node: int) -> PState:
        return self.processor(node).pstates[int(self.pstate_index[node])]

    def node_name(self, node: int) -> str:
        return self.names[node]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    # ----------------------------------------------------------- mutation

    def place(
        self, node: int, stats: tuple[float, float, float] = (0.0, 0.0, 0.0)
    ) -> None:
        """Occupy one core; ``stats`` = (memory intensity, CM/CA, CA/INS)."""
        if self.used[node] >= self.num_cores[node]:
            raise ValueError(f"node {self.names[node]!r} is full")
        self.used[node] += 1
        self.co_mem[node] += stats[0]
        self.co_cm_ca[node] += stats[1]
        self.co_ca_ins[node] += stats[2]

    def remove(
        self, node: int, stats: tuple[float, float, float] = (0.0, 0.0, 0.0)
    ) -> None:
        if self.used[node] <= 0:
            raise ValueError(f"node {self.names[node]!r} is empty")
        self.used[node] -= 1
        # Clamp at zero: repeated float subtraction may drift slightly.
        self.co_mem[node] = max(0.0, self.co_mem[node] - stats[0])
        self.co_cm_ca[node] = max(0.0, self.co_cm_ca[node] - stats[1])
        self.co_ca_ins[node] = max(0.0, self.co_ca_ins[node] - stats[2])

    def set_pstate(self, node: int, index: int) -> None:
        ladder = self.processor(node).pstates
        if not 0 <= index < len(ladder):
            raise ValueError(f"P-state index {index} out of range")
        self.pstate_index[node] = index

    # --------------------------------------------------------- candidates

    def candidates(self, k: int = 8) -> np.ndarray:
        """Pruned candidate nodes for one scheduling round (sorted indices).

        Empty nodes within a block are interchangeable, so only the
        lowest-index empty node per block represents them; the remaining
        slots go to the least-contended occupied nodes (lowest resident
        memory-intensity sum, then fewest residents, then index).  Keeps
        the batched model call at ``O(round × k)`` rows regardless of
        fleet size.
        """
        if k < 1:
            raise ValueError("candidate budget must be >= 1")
        free = self.free_cores
        eligible = np.flatnonzero(free > 0)
        if eligible.size <= k:
            return eligible
        picks: list[int] = []
        empty = eligible[self.used[eligible] == 0]
        for b in range(len(self.blocks)):
            block_empty = empty[self.block_index[empty] == b]
            if block_empty.size:
                picks.append(int(block_empty[0]))
        occupied = eligible[self.used[eligible] > 0]
        if occupied.size and len(picks) < k:
            order = np.lexsort(
                (occupied, self.used[occupied], self.co_mem[occupied])
            )
            for idx in occupied[order[: k - len(picks)]]:
                picks.append(int(idx))
        return np.unique(np.asarray(picks[:k], dtype=np.int64))

    def summary(self) -> dict:
        return {
            "nodes": self.n_nodes,
            "cores": self.total_cores,
            "used_cores": int(self.used.sum()),
            "busy_nodes": self.busy_nodes,
            "blocks": [
                {
                    "processor": cfg.processor.name,
                    "count": cfg.count,
                    "cores_per_node": cfg.processor.num_cores,
                }
                for cfg in self.blocks
            ],
        }


@dataclass
class RunningJob:
    """One job currently executing on a node."""

    job_id: int
    app: ApplicationSpec
    node: int
    start_s: float
    remaining_instructions: float
    stats: tuple[float, float, float] = (0.0, 0.0, 0.0)


class RunningSet:
    """Per-job progress at engine steady-state rates, lazily re-solved.

    Rates for a node are recomputed only when that node's membership or
    P-state changes (``mark_dirty``); between events they are reused, so
    advancing virtual time costs one solve per *dirty* node, memoized
    further by the engine's :class:`~repro.sim.solve_cache.SolveCache`.
    """

    def __init__(
        self, fleet: FleetState, engines: list[SimulationEngine]
    ) -> None:
        if len(engines) != len(fleet.blocks):
            raise ValueError("need exactly one engine per machine block")
        for cfg, engine in zip(fleet.blocks, engines):
            if engine.processor != cfg.processor:
                raise ValueError(
                    f"engine processor {engine.processor.name!r} does not "
                    f"match block processor {cfg.processor.name!r}"
                )
        self.fleet = fleet
        self.engines = list(engines)
        self._jobs: dict[int, RunningJob] = {}
        self._by_node: dict[int, list[int]] = {}
        self._rates: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------ queries

    @property
    def count(self) -> int:
        return len(self._jobs)

    def get(self, job_id: int) -> RunningJob:
        return self._jobs[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def jobs_on(self, node: int) -> list[RunningJob]:
        return [self._jobs[jid] for jid in self._by_node.get(node, [])]

    def jobs(self) -> list[RunningJob]:
        return list(self._jobs.values())

    # ----------------------------------------------------------- mutation

    def add(
        self,
        job_id: int,
        app: ApplicationSpec,
        node: int,
        now_s: float,
        *,
        remaining_instructions: float | None = None,
        stats: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> RunningJob:
        """Place a job: occupies a fleet core and dirties the node."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} is already running")
        self.fleet.place(node, stats)
        job = RunningJob(
            job_id=job_id,
            app=app,
            node=node,
            start_s=now_s,
            remaining_instructions=(
                app.instructions
                if remaining_instructions is None
                else remaining_instructions
            ),
            stats=stats,
        )
        self._jobs[job_id] = job
        self._by_node.setdefault(node, []).append(job_id)
        self.mark_dirty(node)
        return job

    def remove(self, job_id: int) -> RunningJob:
        """Take a job off its node (completion or migration)."""
        job = self._jobs.pop(job_id)
        self._by_node[job.node].remove(job_id)
        if not self._by_node[job.node]:
            del self._by_node[job.node]
        self.fleet.remove(job.node, job.stats)
        self.mark_dirty(job.node)
        return job

    def mark_dirty(self, node: int) -> None:
        """Invalidate cached rates (membership or P-state changed)."""
        self._rates.pop(node, None)

    # ------------------------------------------------------------ physics

    def _node_rates(self, node: int) -> np.ndarray:
        rates = self._rates.get(node)
        if rates is None:
            ids = self._by_node[node]
            engine = self.engines[int(self.fleet.block_index[node])]
            state = engine.solve_steady_state(
                tuple(self._jobs[jid].app for jid in ids),
                pstate=self.fleet.pstate(node),
            )
            rates = state.instructions_per_second
            self._rates[node] = rates
        return rates

    def rate_of(self, job_id: int) -> float:
        """Current steady-state IPS of one running job."""
        job = self._jobs[job_id]
        ids = self._by_node[job.node]
        return float(self._node_rates(job.node)[ids.index(job_id)])

    def next_completion(self, now_s: float) -> float:
        """Absolute time of the earliest completion (inf when idle)."""
        next_t = np.inf
        for node, ids in self._by_node.items():
            rates = self._node_rates(node)
            for jid, ips in zip(ids, rates):
                t = now_s + self._jobs[jid].remaining_instructions / float(ips)
                next_t = min(next_t, t)
        return next_t

    def advance_to(self, t: float, now_s: float) -> None:
        """Progress every running job from ``now_s`` to ``t``."""
        dt = t - now_s
        if dt < 0.0:
            raise ValueError("cannot advance backwards")
        for node, ids in self._by_node.items():
            rates = self._node_rates(node)
            for jid, ips in zip(ids, rates):
                self._jobs[jid].remaining_instructions -= float(ips) * dt

    def pop_finished(self, *, epsilon: float = 1e-3) -> list[RunningJob]:
        """Remove and return every job at (or within ``epsilon`` of) zero."""
        finished: list[RunningJob] = []
        for node in sorted(self._by_node):
            for jid in list(self._by_node[node]):
                if self._jobs[jid].remaining_instructions <= epsilon:
                    finished.append(self.remove(jid))
        return finished
