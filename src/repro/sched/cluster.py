"""Online cluster simulation: jobs arriving over time.

The static scheduler (:mod:`repro.sched.scheduler`) places a fixed batch;
real clusters receive a *stream* of jobs.  This module simulates that
stream event-by-event on top of the analytic engine: between events every
machine's resident jobs progress at their current steady-state rates
(re-solved whenever membership changes — the same physics as
:mod:`repro.sim.timesliced`, lifted to many machines), jobs that finish
free their cores, and arriving or queued jobs are placed by a pluggable
policy.

Policies are online: they see one job and the current cluster state, and
return a machine (or ``None`` to leave the job queued).  The
model-driven policy consults trained predictors exactly as the paper
envisions — using only baseline profiles, never the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..core.methodology import PerformancePredictor
from ..harness.baselines import BaselineTable
from ..machine.processor import MulticoreProcessor
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec
from .fleet import FleetState, RunningSet

__all__ = [
    "JobRequest",
    "JobRecord",
    "ClusterState",
    "ClusterTrace",
    "ClusterSimulator",
    "first_fit_policy",
    "least_loaded_policy",
    "model_driven_policy",
]


@dataclass(frozen=True)
class JobRequest:
    """One job submission."""

    app: ApplicationSpec
    arrival_s: float
    job_id: int = 0

    def __post_init__(self) -> None:
        if self.arrival_s < 0.0:
            raise ValueError("arrival time must be non-negative")


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one completed job."""

    request: JobRequest
    machine_name: str
    start_s: float
    end_s: float
    baseline_s: float

    @property
    def wait_s(self) -> float:
        """Queueing delay before the job started."""
        return self.start_s - self.request.arrival_s

    @property
    def run_s(self) -> float:
        """Wall time on the machine."""
        return self.end_s - self.start_s

    @property
    def slowdown(self) -> float:
        """Execution stretch from interference (run time over solo time)."""
        return self.run_s / self.baseline_s

    @property
    def response_s(self) -> float:
        """Arrival-to-completion latency (wait + run)."""
        return self.end_s - self.request.arrival_s


@dataclass
class ClusterState:
    """What a placement policy may inspect at decision time."""

    now_s: float
    resident: dict[str, tuple[ApplicationSpec, ...]]
    free_cores: dict[str, int]


class PlacementPolicy(Protocol):
    """Online placement decision."""

    def __call__(
        self, job: ApplicationSpec, state: ClusterState
    ) -> str | None: ...


@dataclass(frozen=True)
class ClusterTrace:
    """Result of one cluster simulation."""

    records: tuple[JobRecord, ...]
    makespan_s: float

    @property
    def mean_slowdown(self) -> float:
        """Average execution stretch across completed jobs."""
        return float(np.mean([r.slowdown for r in self.records]))

    @property
    def mean_response_s(self) -> float:
        """Average arrival-to-completion latency."""
        return float(np.mean([r.response_s for r in self.records]))

    @property
    def mean_wait_s(self) -> float:
        """Average queueing delay."""
        return float(np.mean([r.wait_s for r in self.records]))

    def by_machine(self) -> dict[str, int]:
        """Completed-job counts per machine."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.machine_name] = out.get(r.machine_name, 0) + 1
        return out


# ----------------------------------------------------------------- policies


def first_fit_policy(job: ApplicationSpec, state: ClusterState) -> str | None:
    """Place on the first machine with a free core (consolidating)."""
    for name, free in state.free_cores.items():
        if free > 0:
            return name
    return None


def least_loaded_policy(job: ApplicationSpec, state: ClusterState) -> str | None:
    """Place on the machine with the most free cores (spreading)."""
    best, best_free = None, 0
    for name, free in state.free_cores.items():
        if free > best_free:
            best, best_free = name, free
    return best


def model_driven_policy(
    predictors: dict[str, PerformancePredictor],
    baselines: dict[str, BaselineTable],
    machines: dict[str, MulticoreProcessor],
) -> PlacementPolicy:
    """Greedy interference-aware online policy.

    Scores every machine with a free core by the *predicted* marginal
    slowdown of adding the job — the job's own predicted stretch plus the
    predicted worsening of the residents — and picks the minimum.
    """

    def profile(name: str, app: ApplicationSpec):
        fmax = machines[name].pstates.fastest.frequency_ghz
        return baselines[name].get(app.name, fmax)

    def group_cost(name: str, group: list[ApplicationSpec]) -> float:
        if not group:
            return 0.0
        predictor = predictors[name]
        total = 0.0
        for i, app in enumerate(group):
            co = [profile(name, a) for j, a in enumerate(group) if j != i]
            if co:
                total += predictor.predict_slowdown(profile(name, app), co)
            else:
                total += 1.0
        return total

    def policy(job: ApplicationSpec, state: ClusterState) -> str | None:
        best, best_cost = None, np.inf
        for name, free in state.free_cores.items():
            if free <= 0:
                continue
            group = list(state.resident[name])
            cost = group_cost(name, group + [job]) - group_cost(name, group)
            if cost < best_cost:
                best, best_cost = name, cost
        return best

    return policy


# ---------------------------------------------------------------- simulator


class ClusterSimulator:
    """Event-driven multi-machine co-location simulator.

    Parameters
    ----------
    engines:
        One engine per machine, keyed by machine name.  Machine names
        must be unique (use :meth:`repro.machine.Server.placement_domains`
        for identical sockets).
    baselines:
        Per-machine baseline tables (for slowdown normalization).
    policy:
        Online placement policy; jobs it declines (or that find no free
        core) wait in a FIFO queue and are re-offered on every completion.
    """

    def __init__(
        self,
        engines: dict[str, SimulationEngine],
        baselines: dict[str, BaselineTable],
        policy: PlacementPolicy,
    ) -> None:
        if not engines:
            raise ValueError("need at least one machine")
        missing = set(engines) - set(baselines)
        if missing:
            raise ValueError(f"baselines missing for machines: {sorted(missing)}")
        self.engines = dict(engines)
        self.baselines = dict(baselines)
        self.policy = policy

    # ------------------------------------------------------------ helpers

    def _state(
        self, now: float, fleet: FleetState, running: RunningSet
    ) -> ClusterState:
        resident = {
            name: tuple(j.app for j in running.jobs_on(i))
            for i, name in enumerate(fleet.names)
        }
        free = {
            name: int(fleet.free_cores[i])
            for i, name in enumerate(fleet.names)
        }
        return ClusterState(now_s=now, resident=resident, free_cores=free)

    def _stats(
        self, machine_name: str, app: ApplicationSpec
    ) -> tuple[float, float, float]:
        fmax = self.engines[machine_name].processor.pstates.fastest.frequency_ghz
        base = self.baselines[machine_name].get(app.name, fmax)
        return (base.memory_intensity, base.cm_per_ca, base.ca_per_ins)

    def _baseline_s(self, machine_name: str, app: ApplicationSpec) -> float:
        fmax = self.engines[machine_name].processor.pstates.fastest.frequency_ghz
        return self.baselines[machine_name].get(app.name, fmax).wall_time_s

    # ---------------------------------------------------------------- run

    def run(self, jobs: list[JobRequest], *, max_events: int = 100_000) -> ClusterTrace:
        """Simulate one job stream to completion.

        Events are arrivals and job completions; between consecutive
        events, every machine's membership is constant, so its rates are
        one steady-state solve.  Raises when the event budget is exhausted
        (a pathological policy that never places anything).
        """
        if not jobs:
            raise ValueError("need at least one job")
        pending = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        arrivals = list(reversed(pending))  # pop() = earliest
        queue: list[JobRequest] = []
        fleet = FleetState.single_nodes(
            [(name, engine.processor) for name, engine in self.engines.items()]
        )
        running = RunningSet(fleet, [self.engines[n] for n in fleet.names])
        requests: dict[int, JobRequest] = {}
        records: list[JobRecord] = []
        placed_seq = iter(range(len(pending)))
        now = 0.0

        def try_place(job: JobRequest) -> bool:
            state = self._state(now, fleet, running)
            choice = self.policy(job.app, state)
            if choice is None:
                return False
            if choice not in state.free_cores:
                raise ValueError(f"policy chose unknown machine {choice!r}")
            if state.free_cores[choice] <= 0:
                raise ValueError(
                    f"policy placed a job on full machine {choice!r}"
                )
            key = next(placed_seq)
            requests[key] = job
            running.add(
                key,
                job.app,
                fleet.index_of(choice),
                now,
                stats=self._stats(choice, job.app),
            )
            return True

        for _ in range(max_events):
            if not arrivals and not queue and running.count == 0:
                break
            next_completion = running.next_completion(now)
            next_arrival = arrivals[-1].arrival_s if arrivals else np.inf
            next_time = min(next_completion, next_arrival)
            if not np.isfinite(next_time):
                raise RuntimeError(
                    "deadlock: jobs queued but nothing is running or arriving"
                )

            # Advance all running jobs to the event time.
            running.advance_to(next_time, now)
            now = next_time

            # Handle completions (all jobs that reached zero).
            finished = running.pop_finished()
            for done in finished:
                name = fleet.node_name(done.node)
                records.append(
                    JobRecord(
                        request=requests.pop(done.job_id),
                        machine_name=name,
                        start_s=done.start_s,
                        end_s=now,
                        baseline_s=self._baseline_s(name, done.app),
                    )
                )

            # Handle the arrival landing exactly now.
            while arrivals and arrivals[-1].arrival_s <= now + 1e-12:
                queue.append(arrivals.pop())

            # Drain the queue FIFO as far as the policy allows.
            if finished or queue:
                still_waiting: list[JobRequest] = []
                for job in queue:
                    if not try_place(job):
                        still_waiting.append(job)
                queue = still_waiting
        else:
            raise RuntimeError(f"exceeded {max_events} events")

        return ClusterTrace(
            records=tuple(sorted(records, key=lambda r: r.request.job_id)),
            makespan_s=now,
        )
