"""Interference-aware scheduling (paper, Sections I and VI).

"The information gained from accurate co-location performance degradation
could be integrated into intelligent application scheduling" — this module
closes that loop: a greedy scheduler that places each job on the machine
where the trained :class:`~repro.core.methodology.PerformancePredictor`
expects the least added slowdown (for the job *and* for the jobs already
there), plus an evaluator that measures any placement's true outcome on the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.methodology import PerformancePredictor
from ..harness.baselines import BaselineTable
from ..machine.processor import MulticoreProcessor
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec
from .policies import Placement, _check_capacity

__all__ = ["PlacementOutcome", "evaluate_placement", "interference_aware"]


@dataclass(frozen=True)
class PlacementOutcome:
    """Simulated ground-truth result of one placement.

    ``slowdowns`` maps each job (by machine, slot) to its achieved
    normalized execution time; summary statistics aggregate them.
    """

    slowdowns: tuple[tuple[float, ...], ...]
    times_s: tuple[tuple[float, ...], ...]

    @property
    def mean_slowdown(self) -> float:
        """Average normalized execution time across all jobs."""
        flat = [s for group in self.slowdowns for s in group]
        return float(np.mean(flat)) if flat else 1.0

    @property
    def worst_slowdown(self) -> float:
        """Worst job's normalized execution time."""
        flat = [s for group in self.slowdowns for s in group]
        return float(max(flat)) if flat else 1.0

    @property
    def makespan_s(self) -> float:
        """Longest job execution time across the system."""
        flat = [t for group in self.times_s for t in group]
        return float(max(flat)) if flat else 0.0


def evaluate_placement(
    placement: Placement,
    engines: dict[str, SimulationEngine],
    baselines: dict[str, BaselineTable],
) -> PlacementOutcome:
    """Measure a placement's true per-job slowdowns on the simulator.

    Each machine runs its assigned jobs co-located; each job's time is
    taken from one steady-state solve with the others as co-runners, and
    normalized by its solo baseline at the machine's fastest P-state.
    """
    slowdowns: list[tuple[float, ...]] = []
    times: list[tuple[float, ...]] = []
    for machine, group in zip(placement.machines, placement.assignments):
        if not group:
            slowdowns.append(())
            times.append(())
            continue
        engine = engines[machine.name]
        table = baselines[machine.name]
        fmax = machine.pstates.fastest.frequency_ghz
        group_slow = []
        group_time = []
        for i, job in enumerate(group):
            co = [a for j, a in enumerate(group) if j != i]
            run = engine.run(job, co)
            base = table.get(job.name, fmax).wall_time_s
            group_time.append(run.target.execution_time_s)
            group_slow.append(run.target.execution_time_s / base)
        slowdowns.append(tuple(group_slow))
        times.append(tuple(group_time))
    return PlacementOutcome(slowdowns=tuple(slowdowns), times_s=tuple(times))


def interference_aware(
    jobs: list[ApplicationSpec],
    machines: tuple[MulticoreProcessor, ...],
    predictors: dict[str, PerformancePredictor],
    baselines: dict[str, BaselineTable],
) -> Placement:
    """Greedy model-driven placement.

    Jobs are placed most-memory-intensive first (they are the hardest to
    co-locate).  For each job, every machine with a free core is scored by
    the *predicted* total slowdown of that machine's group with the job
    added — the candidate's own predicted slowdown plus the predicted
    worsening of the jobs already there — and the best machine wins.

    Only baseline profiles and trained predictors are consulted; the
    simulator is never queried (that would be cheating — the paper's
    premise is prediction *before* running).
    """
    placement = Placement(machines=machines)
    _check_capacity(jobs, machines)

    def baseline_profile(machine: MulticoreProcessor, app: ApplicationSpec):
        fmax = machine.pstates.fastest.frequency_ghz
        return baselines[machine.name].get(app.name, fmax)

    def predicted_group_slowdown(
        machine: MulticoreProcessor, group: list[ApplicationSpec]
    ) -> float:
        """Sum of predicted normalized times over a machine's group."""
        if not group:
            return 0.0
        predictor = predictors[machine.name]
        total = 0.0
        for i, job in enumerate(group):
            co = [baseline_profile(machine, a) for j, a in enumerate(group) if j != i]
            target = baseline_profile(machine, job)
            if co:
                total += predictor.predict_slowdown(target, co)
            else:
                total += 1.0
        return total

    ref = float(machines[0].llc.size_bytes)
    ordered = sorted(
        jobs, key=lambda a: a.solo_memory_intensity(ref), reverse=True
    )
    for job in ordered:
        best_idx = None
        best_cost = np.inf
        for idx, machine in enumerate(placement.machines):
            if placement.free_cores(idx) == 0:
                continue
            group = placement.assignments[idx]
            before = predicted_group_slowdown(machine, group)
            after = predicted_group_slowdown(machine, group + [job])
            cost = after - before  # marginal predicted slowdown added
            if cost < best_cost:
                best_cost = cost
                best_idx = idx
        assert best_idx is not None  # capacity checked up front
        placement.assign(best_idx, job)
    return placement
