"""Interference-aware scheduling built on the trained predictors."""

from .cluster import (
    ClusterSimulator,
    ClusterState,
    ClusterTrace,
    JobRecord,
    JobRequest,
    first_fit_policy,
    least_loaded_policy,
    model_driven_policy,
)
from .fleet import FleetState, MachineConfig, RunningJob, RunningSet
from .governor import GovernorObjective, PStateChoice, select_pstate
from .policies import Placement, pack_first, round_robin, spread_by_intensity
from .queue import Job, JobQueue, JobStatus, job_stream
from .scheduler import PlacementOutcome, evaluate_placement, interference_aware
from .service import (
    LocalScorer,
    RemoteScorer,
    SchedulerClient,
    SchedulerService,
    SchedulerThread,
)

__all__ = [
    "ClusterSimulator",
    "ClusterState",
    "ClusterTrace",
    "FleetState",
    "GovernorObjective",
    "Job",
    "JobQueue",
    "JobRecord",
    "JobRequest",
    "JobStatus",
    "LocalScorer",
    "MachineConfig",
    "PStateChoice",
    "Placement",
    "PlacementOutcome",
    "RemoteScorer",
    "RunningJob",
    "RunningSet",
    "SchedulerClient",
    "SchedulerService",
    "SchedulerThread",
    "evaluate_placement",
    "first_fit_policy",
    "interference_aware",
    "job_stream",
    "least_loaded_policy",
    "model_driven_policy",
    "pack_first",
    "round_robin",
    "select_pstate",
    "spread_by_intensity",
]
