"""Interference-aware scheduling built on the trained predictors."""

from .cluster import (
    ClusterSimulator,
    ClusterState,
    ClusterTrace,
    JobRecord,
    JobRequest,
    first_fit_policy,
    least_loaded_policy,
    model_driven_policy,
)
from .governor import GovernorObjective, PStateChoice, select_pstate
from .policies import Placement, pack_first, round_robin, spread_by_intensity
from .scheduler import PlacementOutcome, evaluate_placement, interference_aware

__all__ = [
    "ClusterSimulator",
    "ClusterState",
    "ClusterTrace",
    "GovernorObjective",
    "JobRecord",
    "JobRequest",
    "PStateChoice",
    "Placement",
    "PlacementOutcome",
    "evaluate_placement",
    "first_fit_policy",
    "interference_aware",
    "least_loaded_policy",
    "model_driven_policy",
    "pack_first",
    "round_robin",
    "select_pstate",
    "spread_by_intensity",
]
