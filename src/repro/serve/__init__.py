"""Online prediction serving: registry, micro-batching, HTTP, metrics.

The paper's models exist to be consumed by a resource manager deciding
placements *online*; this package turns trained artifacts into a
long-running, observable prediction service:

* :mod:`~repro.serve.registry` — a versioned on-disk model registry
  (``name@version``) with content-hash integrity checking;
* :mod:`~repro.serve.batcher` — a micro-batching queue that coalesces
  concurrent requests into one vectorized predict call;
* :mod:`~repro.serve.server` — an asyncio HTTP server exposing
  ``/v1/predict``, ``/v1/models``, ``/healthz``, and ``/metrics``;
* :mod:`~repro.serve.metrics` — request/error counters and latency and
  batch-size histograms in Prometheus text exposition format;
* :mod:`~repro.serve.client` — a small blocking client for tests and
  load generators, with a label-aware Prometheus parser.

The server threads through :mod:`repro.obs`: each
:class:`~repro.serve.server.PredictionServer` owns a merged metrics
registry (serving + engine + fitting + batcher backlog behind one
``GET /metrics``), requests carry/echo ``X-Request-Id`` and become
``serve.request`` trace spans, and the micro-batcher records per-phase
latencies (queue, batch_wait, predict, serialize).

Everything here is standard library + existing ``repro`` modules; there
are no third-party serving dependencies.
"""

from .batcher import BatcherStats, MicroBatcher
from .client import ClientError, PredictionClient, parse_prometheus
from .metrics import LatencyHistogram, ServingMetrics
from .registry import ModelManifest, ModelRegistry, RegistryError
from .server import PredictionServer, ServerThread

__all__ = [
    "BatcherStats",
    "ClientError",
    "LatencyHistogram",
    "MicroBatcher",
    "ModelManifest",
    "ModelRegistry",
    "PredictionClient",
    "PredictionServer",
    "RegistryError",
    "ServerThread",
    "ServingMetrics",
    "parse_prometheus",
]
