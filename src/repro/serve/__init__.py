"""Online prediction serving: registry, micro-batching, HTTP, metrics.

The paper's models exist to be consumed by a resource manager deciding
placements *online*; this package turns trained artifacts into a
long-running, observable prediction service:

* :mod:`~repro.serve.registry` — compatibility shim for the versioned
  model registry, which now lives in :mod:`repro.registry` (local
  store, HTTP artifact service, cached remote backend);
* :mod:`~repro.serve.batcher` — a micro-batching queue that coalesces
  concurrent requests into one vectorized predict call, with optional
  admission control (shed with 429 once the backlog bound is hit);
* :mod:`~repro.serve.http` — the shared stdlib asyncio HTTP plumbing
  (keep-alive, graceful drain, request ids, error mapping) used by both
  the prediction server and the registry server;
* :mod:`~repro.serve.server` — an asyncio HTTP server exposing
  ``/v1/predict``, ``/v1/models``, ``/healthz``, and ``/metrics``; it
  serves from any registry backend (local directory or remote registry
  service) and can hot-reload newly pushed versions;
* :mod:`~repro.serve.metrics` — request/error counters and latency and
  batch-size histograms in Prometheus text exposition format;
* :mod:`~repro.serve.client` — a small blocking client for tests and
  load generators, with a label-aware Prometheus parser;
* :mod:`~repro.serve.shard`, :mod:`~repro.serve.worker`, and
  :mod:`~repro.serve.router` — the multi-process serving tier:
  consistent model-name sharding, spawned worker processes with a
  graceful drain protocol, and a front router with canary/shadow
  splitting, machine-metadata routing, and one merged ``/metrics``
  scrape for the whole tier (``repro serve --workers N``).

The server threads through :mod:`repro.obs`: each
:class:`~repro.serve.server.PredictionServer` owns a merged metrics
registry (serving + engine + fitting + batcher backlog behind one
``GET /metrics``), requests carry/echo ``X-Request-Id`` and become
``serve.request`` trace spans, and the micro-batcher records per-phase
latencies (queue, batch_wait, predict, serialize).

Everything here is standard library + existing ``repro`` modules; there
are no third-party serving dependencies.
"""

from .batcher import BacklogFullError, BatcherStats, MicroBatcher
from .client import ClientError, PredictionClient, parse_prometheus
from .metrics import LatencyHistogram, ServingMetrics, merge_prometheus_texts
from .registry import ModelManifest, ModelRegistry, RegistryError, TombstoneError
from .router import (
    CanarySpec,
    RouterServer,
    ServingTier,
    ShadowSpec,
    parse_canary,
    parse_shadow,
)
from .server import PredictionServer, ServerThread
from .shard import ShardMap, shard_for
from .worker import BackendSpec, WorkerProcess, backend_spec_for

__all__ = [
    "BackendSpec",
    "BacklogFullError",
    "BatcherStats",
    "CanarySpec",
    "ClientError",
    "LatencyHistogram",
    "MicroBatcher",
    "ModelManifest",
    "ModelRegistry",
    "PredictionClient",
    "PredictionServer",
    "RegistryError",
    "RouterServer",
    "ServerThread",
    "ServingMetrics",
    "ServingTier",
    "ShadowSpec",
    "ShardMap",
    "TombstoneError",
    "WorkerProcess",
    "backend_spec_for",
    "merge_prometheus_texts",
    "parse_canary",
    "parse_prometheus",
    "parse_shadow",
    "shard_for",
]
