"""Front router for the multi-worker serving tier.

``repro serve --workers N`` runs N :class:`~repro.serve.server.PredictionServer`
worker processes (:mod:`repro.serve.worker`) behind one
:class:`RouterServer`.  The router owns the listening port; every
``/v1/predict`` is dispatched over a pooled keep-alive loopback
connection to the worker whose shard owns the model
(:mod:`repro.serve.shard`), so each model name stays resident on exactly
one worker and its micro-batcher still coalesces across all clients.

    clients ──▶ RouterServer ──┬──▶ worker 0 (PredictionServer)
                 │  shard by   ├──▶ worker 1
                 │  model name └──▶ worker N-1
                 └─ canary / shadow / machine routing

Routing features beyond the shard map:

* **Request-metadata routing.**  A body with ``"machine": "e5649"`` and
  no ``"model"`` resolves to the newest live artifact whose manifest was
  trained for that processor, then routes by the resolved name.
* **Canary splitting.**  ``canary=("band@2:10",)`` sends 10% of the
  bare-``band`` traffic to ``band@2`` (deterministic fraction
  accumulator — exactly 1 request in 10, not a coin flip) and pins the
  remainder to the newest live version *older* than the canary.  Bare
  names normally float to the latest version, so without that pin,
  pushing a candidate would flip 100% of traffic onto it; with it, the
  push + canary flow ramps exactly the configured fraction.  Requests
  that pin an explicit ``name@version`` are never rerouted.
* **Shadow traffic.**  ``shadow=("band@2",)`` mirrors every ``band``
  request to ``band@2`` on the same worker, diffs the predictions, and
  exports the divergence as the ``repro_serve_shadow_divergence``
  histogram (bucket ``le="0.0"`` counts bit-identical agreement).  The
  client always receives the primary response, byte for byte.

``GET /metrics`` on the router scrapes every worker and merges the
expositions (:func:`~repro.serve.metrics.merge_prometheus_texts`) with
the router's own, so one scrape aggregates the whole tier.  Request IDs
are stitched across the hop: the router forwards its effective
``X-Request-Id`` to the worker, so the router's ``route.request`` span
and the worker's ``serve.request`` span share one correlation id.

:class:`ServingTier` is the synchronous orchestrator (spawn workers,
run the router on a background loop, drain everything on ``stop()``)
used by the CLI, the tests, and the throughput bench.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from urllib.parse import urlencode

from ..obs.adapters import install_default_sources
from ..obs.registry import MetricsRegistry
from ..obs.trace import current_span
from ..registry.local import RegistryError, parse_ref
from .http import HTTPError, HttpServerBase, Request, ServerThreadBase
from .metrics import (
    LatencyHistogram,
    ServingMetrics,
    merge_prometheus_texts,
    render_labels,
)
from .shard import ShardMap
from .worker import BackendSpec, WorkerProcess, backend_spec_for, open_backend

__all__ = [
    "CanarySpec",
    "RouterServer",
    "ServingTier",
    "ShadowSpec",
    "parse_canary",
    "parse_shadow",
]

#: Absolute-difference buckets for the shadow divergence histogram; the
#: 0.0 bucket counts shadow predictions that agreed bit for bit.
SHADOW_DIVERGENCE_BUCKETS = (
    0.0, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Headers a worker response may pass through the router unchanged.
_FORWARDED_HEADERS = ("retry-after",)


@dataclass(frozen=True)
class CanarySpec:
    """Send ``fraction`` of bare-``name`` requests to ``name@version``."""

    name: str
    version: int
    fraction: float

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass(frozen=True)
class ShadowSpec:
    """Mirror ``name`` requests to ``name@version`` and diff predictions."""

    name: str
    version: int

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"


def parse_canary(text: str) -> CanarySpec:
    """Parse the CLI form ``name@version:percent`` (e.g. ``band@2:10``)."""
    ref, sep, percent_text = text.rpartition(":")
    if not sep:
        raise ValueError(
            f"canary spec must be name@version:percent (got {text!r})"
        )
    name, version = parse_ref(ref)
    if version is None:
        raise ValueError(
            f"canary needs an explicit name@version (got {text!r})"
        )
    try:
        percent = float(percent_text)
    except ValueError:
        raise ValueError(
            f"canary percent must be a number in (0, 100]; got "
            f"{percent_text!r}"
        ) from None
    if not 0.0 < percent <= 100.0:
        raise ValueError(
            f"canary percent must be in (0, 100]; got {percent}"
        )
    return CanarySpec(name=name, version=version, fraction=percent / 100.0)


def parse_shadow(text: str) -> ShadowSpec:
    """Parse the CLI form ``name@version``."""
    name, version = parse_ref(text)
    if version is None:
        raise ValueError(
            f"shadow needs an explicit name@version (got {text!r})"
        )
    return ShadowSpec(name=name, version=version)


class _WorkerChannel:
    """Pooled keep-alive loopback connections to one worker process.

    The pool holds up to ``pool_size`` persistent connections; a request
    checks one out, writes one HTTP/1.1 exchange, and returns it.  A
    connection that died between requests (worker restart, idle reset)
    is replaced and the exchange retried once.
    """

    def __init__(self, host: str, port: int, *, pool_size: int = 32) -> None:
        self.host = host
        self.port = port
        self._slots: asyncio.Queue = asyncio.Queue()
        for _ in range(pool_size):
            self._slots.put_nowait(None)  # placeholder: connect lazily
        self._open: list[asyncio.StreamWriter] = []

    async def _acquire(self):
        slot = await self._slots.get()
        if slot is not None:
            return slot
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except BaseException:
            # The placeholder must go back or the pool shrinks by one on
            # every refused connection — with a dead worker under load
            # that drains the whole pool and later requests hang forever.
            self._slots.put_nowait(None)
            raise
        self._open.append(writer)
        return reader, writer

    def _release(self, conn, *, broken: bool = False) -> None:
        if broken:
            _reader, writer = conn
            writer.close()
            if writer in self._open:
                self._open.remove(writer)
            self._slots.put_nowait(None)
        else:
            self._slots.put_nowait(conn)

    async def request(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, str, bytes, dict[str, str]]:
        """One proxied exchange -> (status, content type, body, headers)."""
        head_lines = [f"{method} {target} HTTP/1.1", f"Host: {self.host}"]
        for name, value in (headers or {}).items():
            head_lines.append(f"{name}: {value}")
        head_lines.append(f"Content-Length: {len(body)}")
        head_lines.append("Connection: keep-alive")
        payload = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + body
        last_error: Exception | None = None
        for attempt in (0, 1):
            try:
                conn = await self._acquire()
            except OSError as exc:
                # Connect refused/reset: the worker is down (draining on
                # SIGTERM, crashed).  Surface it as 502 below, not a 500.
                last_error = exc
                continue
            reader, writer = conn
            try:
                writer.write(payload)
                await writer.drain()
                response = await self._read_response(reader)
            except (
                ConnectionError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ) as exc:
                # Stale keep-alive connection; replace it and retry once.
                self._release(conn, broken=True)
                last_error = exc
                continue
            except BaseException:
                # Cancellation (server stop) or an unexpected failure
                # mid-exchange: the connection state is unknown, drop it
                # but always give the slot back.
                self._release(conn, broken=True)
                raise
            keep_alive = (
                response[3].get("connection", "keep-alive").lower() != "close"
            )
            self._release(conn, broken=not keep_alive)
            return response
        raise HTTPError(
            502,
            "worker_unreachable",
            f"worker at {self.host}:{self.port} is unreachable: {last_error}",
        )

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, str, bytes, dict[str, str]]:
        head = await reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise asyncio.IncompleteReadError(head, None)
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            key, _sep, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return (
            status,
            headers.get("content-type", "application/json"),
            body,
            headers,
        )

    def close(self) -> None:
        """Close every pooled connection (router shutdown)."""
        for writer in self._open:
            writer.close()
        self._open = []


class RouterServer(HttpServerBase):
    """Shard-routing front server for a fleet of prediction workers.

    Parameters
    ----------
    worker_ports:
        Loopback ports of the running workers, in shard order.
    backend:
        The router's own registry backend handle — used for
        ``/v1/models``, machine-metadata resolution, and ``/healthz``
        inventory.  Workers hold their own instances.
    canary, shadow:
        :class:`CanarySpec` / :class:`ShadowSpec` sequences (at most one
        per model name each).
    machine_cache_s:
        TTL of the machine -> newest-compatible-artifact resolution
        cache.
    """

    known_endpoints = ("/v1/predict", "/v1/models", "/healthz", "/metrics")
    request_span_name = "route.request"

    def __init__(
        self,
        worker_ports: list[int],
        backend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_host: str = "127.0.0.1",
        canary: tuple[CanarySpec, ...] = (),
        shadow: tuple[ShadowSpec, ...] = (),
        pool_size: int = 32,
        machine_cache_s: float = 2.0,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if not worker_ports:
            raise ValueError("a router needs at least one worker port")
        super().__init__(host=host, port=port)
        self.backend = backend
        self.shards = ShardMap(len(worker_ports))
        self.channels = [
            _WorkerChannel(worker_host, p, pool_size=pool_size)
            for p in worker_ports
        ]
        self.canaries = {spec.name: spec for spec in canary}
        self.shadows = {spec.name: spec for spec in shadow}
        self.machine_cache_s = machine_cache_s
        self.metrics = metrics if metrics is not None else ServingMetrics(
            prefix="repro_router"
        )
        self.obs_registry = install_default_sources(
            MetricsRegistry(), serving=self.metrics.render_prometheus
        )
        self.obs_registry.register_source("router", self._render_router_metrics)
        from ..registry.local import ModelRegistry

        self._offload_backend = not isinstance(backend, ModelRegistry)
        self._canary_acc: dict[str, float] = {}
        self._canary_sent: dict[str, int] = {}
        self._shadow_sent: dict[str, int] = {}
        self._shadow_errors: dict[str, int] = {}
        self._shadow_divergence: dict[str, LatencyHistogram] = {}
        self._machine_cache: dict[str, tuple[float, str]] = {}
        self._baseline_cache: dict[str, tuple[float, str]] = {}

    # ------------------------------------------------------------- metrics
    def _record_request(self, endpoint: str, status: int, seconds: float) -> None:
        self.metrics.record_request(endpoint, status, seconds)

    def _record_error(self, reason: str) -> None:
        self.metrics.record_error(reason)

    def _render_router_metrics(self) -> str:
        """Tier shape, canary routing, and shadow divergence families."""
        lines = [
            "# HELP repro_serve_workers Worker processes behind this router.",
            "# TYPE repro_serve_workers gauge",
            f"repro_serve_workers {len(self.channels)}",
            "# HELP repro_serve_canary_requests_total Requests routed to a "
            "canary version instead of the latest.",
            "# TYPE repro_serve_canary_requests_total counter",
        ]
        for name, spec in sorted(self.canaries.items()):
            lines.append(
                "repro_serve_canary_requests_total"
                f"{render_labels(model=name, ref=spec.ref)} "
                f"{self._canary_sent.get(name, 0)}"
            )
        lines.append(
            "# HELP repro_serve_shadow_requests_total Requests mirrored to "
            "a shadow version."
        )
        lines.append("# TYPE repro_serve_shadow_requests_total counter")
        for name, spec in sorted(self.shadows.items()):
            lines.append(
                "repro_serve_shadow_requests_total"
                f"{render_labels(model=name, ref=spec.ref)} "
                f"{self._shadow_sent.get(name, 0)}"
            )
        lines.append(
            "# HELP repro_serve_shadow_errors_total Shadow requests that "
            "failed (primary responses were unaffected)."
        )
        lines.append("# TYPE repro_serve_shadow_errors_total counter")
        for name in sorted(self.shadows):
            lines.append(
                "repro_serve_shadow_errors_total"
                f"{render_labels(model=name)} "
                f"{self._shadow_errors.get(name, 0)}"
            )
        lines.append(
            "# HELP repro_serve_shadow_divergence Absolute difference "
            "between primary and shadow predictions (le=\"0.0\" counts "
            "bit-identical agreement)."
        )
        lines.append("# TYPE repro_serve_shadow_divergence histogram")
        for name in sorted(self._shadow_divergence):
            hist = self._shadow_divergence[name]
            lines.extend(
                ServingMetrics._histogram_samples(
                    "repro_serve_shadow_divergence", hist, model=name
                )
            )
        return "\n".join(lines)

    # ------------------------------------------------------------ lifecycle
    async def stop(self, *, drain_timeout_s: float = 5.0) -> None:
        await super().stop(drain_timeout_s=drain_timeout_s)
        for channel in self.channels:
            channel.close()

    # -------------------------------------------------------------- routes
    async def _route(self, request: Request):
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            return await self._healthz()
        if path == "/metrics":
            self._require(method, "GET")
            return await self._merged_metrics()
        if path == "/v1/models":
            self._require(method, "GET")
            manifests = await self._backend_call(self.backend.list)
            body = {"models": [m.to_dict() for m in manifests]}
            return 200, "application/json", json.dumps(body).encode()
        if path == "/v1/predict":
            self._require(method, "POST")
            return await self._predict(request)
        raise HTTPError(404, "not_found", f"no route for {path}")

    async def _backend_call(self, fn, *args):
        if self._offload_backend:
            return await asyncio.to_thread(fn, *args)
        return fn(*args)

    async def _healthz(self):
        workers = []
        status = "ok"
        for index, channel in enumerate(self.channels):
            try:
                worker_status, _ctype, payload, _headers = await channel.request(
                    "GET", "/healthz"
                )
                entry = {"index": index, "status": "ok"}
                if worker_status != 200:
                    entry["status"] = f"http {worker_status}"
                    status = "degraded"
                else:
                    entry.update(json.loads(payload.decode()))
                    entry["status"] = "ok"
            except HTTPError:
                entry = {"index": index, "status": "unreachable"}
                status = "degraded"
            workers.append(entry)
        body = {"status": status, "workers": workers}
        return 200, "application/json", json.dumps(body).encode()

    async def _merged_metrics(self):
        """One scrape: the router's exposition + every worker's, merged."""
        scrapes = await asyncio.gather(
            *(
                channel.request("GET", "/metrics")
                for channel in self.channels
            ),
            return_exceptions=True,
        )
        texts = [self.obs_registry.render()]
        unreachable = 0
        for scraped in scrapes:
            if isinstance(scraped, BaseException):
                unreachable += 1
                continue
            status, _ctype, payload, _headers = scraped
            if status == 200:
                texts.append(payload.decode())
            else:
                unreachable += 1
        merged = merge_prometheus_texts(texts)
        if unreachable:
            merged += (
                "# HELP repro_serve_worker_scrape_errors Workers whose "
                "/metrics scrape failed this pass.\n"
                "# TYPE repro_serve_worker_scrape_errors gauge\n"
                f"repro_serve_worker_scrape_errors {unreachable}\n"
            )
        return 200, "text/plain; version=0.0.4", merged.encode()

    # ------------------------------------------------------------- predict
    async def _predict(self, request: Request):
        try:
            body = json.loads(request.body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HTTPError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise HTTPError(400, "bad_request", "body must be a JSON object")
        ref = body.get("model")
        machine = body.get("machine")
        if ref is None and isinstance(machine, str) and machine:
            ref = await self._resolve_machine(machine)
        if not isinstance(ref, str) or not ref:
            raise HTTPError(
                400, "bad_request", "body needs a 'model' reference "
                "('name' or 'name@version') or a 'machine' to route by"
            )
        try:
            name, version = parse_ref(ref)
        except RegistryError as exc:
            raise HTTPError(404, "unknown_model", str(exc)) from None
        routed_ref = ref
        canary = self.canaries.get(name)
        if canary is not None and version is None:
            if self._take_canary(name, canary.fraction):
                routed_ref = canary.ref
                self._canary_sent[name] = self._canary_sent.get(name, 0) + 1
            else:
                routed_ref = await self._canary_baseline(name, canary)
        payload = request.body
        if routed_ref != body.get("model"):
            body["model"] = routed_ref
            payload = json.dumps(body, separators=(",", ":")).encode()
        target = "/v1/predict"
        if request.query:
            target += "?" + urlencode(request.query, doseq=True)
        headers = self._forward_headers(request)
        channel = self.channels[self.shards.worker_for(name)]
        shadow = self.shadows.get(name)
        if shadow is not None and routed_ref != shadow.ref:
            shadow_body = dict(body)
            shadow_body["model"] = shadow.ref
            primary, mirrored = await asyncio.gather(
                channel.request("POST", target, payload, headers),
                channel.request(
                    "POST",
                    target,
                    json.dumps(shadow_body, separators=(",", ":")).encode(),
                    headers,
                ),
                return_exceptions=True,
            )
            if isinstance(primary, BaseException):
                raise primary
            self._shadow_sent[name] = self._shadow_sent.get(name, 0) + 1
            self._record_shadow(name, primary, mirrored)
            response = primary
        else:
            response = await channel.request("POST", target, payload, headers)
        status, content_type, response_body, response_headers = response
        extra = {
            header: response_headers[header]
            for header in _FORWARDED_HEADERS
            if header in response_headers
        }
        if status >= 400:
            # Count the upstream refusal in the router's error ledger too
            # (the worker already recorded its own reason).
            self._record_error(f"worker_{status}")
        return status, content_type, response_body, extra

    def _take_canary(self, name: str, fraction: float) -> bool:
        """Deterministic fraction accumulator: exact splits, no RNG."""
        acc = self._canary_acc.get(name, 0.0) + fraction
        take = acc >= 1.0 - 1e-9
        if take:
            acc -= 1.0
        self._canary_acc[name] = acc
        return take

    async def _canary_baseline(self, name: str, canary: CanarySpec) -> str:
        """Where non-canary bare traffic goes: the newest live version
        older than the canary (TTL-cached), or the bare name when the
        canary is the only version."""
        cached = self._baseline_cache.get(name)
        now = time.monotonic()
        if cached is not None and now - cached[0] < self.machine_cache_s:
            return cached[1]
        manifests = await self._backend_call(self.backend.list)
        best: int | None = None
        for manifest in manifests:
            if manifest.name != name or manifest.version >= canary.version:
                continue
            if best is not None and manifest.version <= best:
                continue
            try:
                blocked = await self._backend_call(
                    self.backend.tombstone_reason, name, manifest.version
                )
            except Exception:  # noqa: BLE001 - can't check; treat as live
                blocked = None
            if blocked is None:
                best = manifest.version
        baseline = name if best is None else f"{name}@{best}"
        self._baseline_cache[name] = (now, baseline)
        return baseline

    @staticmethod
    def _forward_headers(request: Request) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        # The dispatch layer stamped the effective correlation id back
        # into the request headers; forwarding it stitches the router
        # span and the worker span onto one id.
        request_id = request.headers.get("x-request-id")
        if request_id:
            headers["X-Request-Id"] = request_id
        # Full span-context propagation: the worker's serve.request span
        # becomes a *child* of this route.request span, so a collector
        # sees one tree across the hop (not two sibling traces).
        span = current_span()
        if span is not None and span.trace_id:
            headers["X-Trace-Context"] = f"{span.trace_id}/{span.span_id}"
        return headers

    # ------------------------------------------------------------- shadow
    def _record_shadow(self, name: str, primary, mirrored) -> None:
        if isinstance(mirrored, BaseException):
            self._shadow_errors[name] = self._shadow_errors.get(name, 0) + 1
            return
        primary_status, _pc, primary_body, _ph = primary
        shadow_status, _sc, shadow_body, _sh = mirrored
        if primary_status != 200 or shadow_status != 200:
            if shadow_status != 200:
                self._shadow_errors[name] = (
                    self._shadow_errors.get(name, 0) + 1
                )
            return
        primary_values = self._predictions(primary_body)
        shadow_values = self._predictions(shadow_body)
        if primary_values is None or shadow_values is None or (
            len(primary_values) != len(shadow_values)
        ):
            self._shadow_errors[name] = self._shadow_errors.get(name, 0) + 1
            return
        hist = self._shadow_divergence.get(name)
        if hist is None:
            hist = self._shadow_divergence[name] = LatencyHistogram(
                buckets=SHADOW_DIVERGENCE_BUCKETS
            )
        for expected, mirrored_value in zip(primary_values, shadow_values):
            hist.observe(abs(expected - mirrored_value))

    @staticmethod
    def _predictions(payload: bytes) -> list[float] | None:
        try:
            data = json.loads(payload.decode())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if "prediction" in data:
            return [float(data["prediction"])]
        values = data.get("predictions")
        if isinstance(values, list):
            return [float(v) for v in values]
        return None

    # ------------------------------------------------------------- machine
    async def _resolve_machine(self, machine: str) -> str:
        """Newest live artifact trained for ``machine`` (TTL-cached)."""
        cached = self._machine_cache.get(machine)
        now = time.monotonic()
        if cached is not None and now - cached[0] < self.machine_cache_s:
            return cached[1]
        manifests = await self._backend_call(self.backend.list)
        best = None
        for manifest in manifests:
            if manifest.processor_name != machine:
                continue
            try:
                blocked = await self._backend_call(
                    self.backend.tombstone_reason,
                    manifest.name,
                    manifest.version,
                )
            except Exception:  # noqa: BLE001 - can't check; treat as live
                blocked = None
            if blocked is not None:
                continue
            key = (manifest.created_at, manifest.version)
            if best is None or key > best[0]:
                best = (key, manifest.ref)
        if best is None:
            known = sorted(
                {
                    m.processor_name
                    for m in manifests
                    if m.processor_name is not None
                }
            )
            raise HTTPError(
                404,
                "unknown_model",
                f"no live artifact trained for machine {machine!r}; "
                f"known machines: {known}",
            )
        self._machine_cache[machine] = (now, best[1])
        return best[1]


class _RouterThread(ServerThreadBase):
    thread_name = "repro-router"


class ServingTier:
    """Spawn N workers + a router; one handle for the whole tier.

    Synchronous orchestrator for the CLI, tests, and benches::

        with ServingTier(registry, workers=4, port=8391) as tier:
            client = PredictionClient("127.0.0.1", tier.port)
            ...

    ``start()`` spawns the worker processes (clean ``spawn``
    interpreters), waits for each to report its bound port, and runs the
    router on a background event loop.  ``stop()`` drains the router
    (in-flight requests finish), then runs each worker's drain protocol
    and records its exit code in :attr:`worker_exitcodes`.

    Extra keyword arguments (``max_batch``, ``max_wait_ms``,
    ``max_backlog``, ``hot_reload_s``, ``model_cache_size``) configure
    every worker's :class:`~repro.serve.server.PredictionServer`.

    ``trace_stream`` points the tier at a span collector
    (``http://host:port``): every worker installs a streaming tracer on
    startup and ships its spans there, so together with the router
    process's own streaming tracer one collector holds the whole tier's
    trace (the CLI spawns a
    :class:`~repro.obs.collector.CollectorThread` for ``--trace``).
    """

    def __init__(
        self,
        backend,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        canary: tuple[CanarySpec, ...] = (),
        shadow: tuple[ShadowSpec, ...] = (),
        pool_size: int = 32,
        machine_cache_s: float = 2.0,
        trace_stream: str | None = None,
        **worker_config,
    ) -> None:
        if workers < 1:
            raise ValueError(f"a tier needs at least 1 worker; got {workers}")
        if trace_stream:
            worker_config["trace_stream"] = trace_stream
        self.spec = (
            backend
            if isinstance(backend, BackendSpec)
            else backend_spec_for(backend)
        )
        self.host = host
        self._requested_port = port
        self.canary = tuple(canary)
        self.shadow = tuple(shadow)
        self.pool_size = pool_size
        self.machine_cache_s = machine_cache_s
        worker_config.setdefault("worker_id", None)
        worker_config.pop("worker_id")
        self.worker_config = worker_config
        self.workers = [
            WorkerProcess(i, self.spec, {**worker_config, "worker_id": i})
            for i in range(workers)
        ]
        self.worker_exitcodes: list[int | None] = []
        self.router: RouterServer | None = None
        self._thread: _RouterThread | None = None

    @property
    def port(self) -> int:
        """The router's bound port (after :meth:`start`)."""
        if self.router is None:
            return self._requested_port
        return self.router.port

    def start(self) -> "ServingTier":
        """Spawn every worker, then start the router in front of them."""
        if self._thread is not None:
            raise RuntimeError("serving tier is already running")
        try:
            for worker in self.workers:
                worker.start()
        except Exception:
            for worker in self.workers:
                worker.terminate()
            raise
        self.router = RouterServer(
            [w.port for w in self.workers],
            open_backend(self.spec),
            host=self.host,
            port=self._requested_port,
            canary=self.canary,
            shadow=self.shadow,
            pool_size=self.pool_size,
            machine_cache_s=self.machine_cache_s,
        )
        self._thread = _RouterThread(self.router)
        try:
            self._thread.start()
        except Exception:
            self._thread = None
            for worker in self.workers:
                worker.terminate()
            raise
        return self

    def stop(self) -> None:
        """Drain the router, then run every worker's drain protocol."""
        if self._thread is not None:
            self._thread.stop()
            self._thread = None
        self.worker_exitcodes = [worker.stop() for worker in self.workers]

    def __enter__(self) -> "ServingTier":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()
