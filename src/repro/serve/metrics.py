"""Request-path observability for the prediction service.

Mirrors the :class:`~repro.sim.solve_cache.EngineStats` pattern — a plain
mutable record with ``record_*`` methods, ``merge``/``reset``, and a
human-readable ``summary()`` — extended with the serving-specific parts:
per-endpoint/status request counters, error counters, batch-size and
latency histograms with p50/p95/p99, and the model-cache hit rate.

:meth:`ServingMetrics.render_prometheus` renders everything in the
Prometheus text exposition format (version 0.0.4), so ``GET /metrics``
can be scraped by a stock Prometheus server; no client library is needed
for the text format.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from ..obs.registry import escape_label_value

__all__ = [
    "LatencyHistogram",
    "ServingMetrics",
    "merge_prometheus_texts",
    "render_labels",
]

#: Request phases recorded by the server, in pipeline order.
REQUEST_PHASES = ("queue", "batch_wait", "predict", "serialize")

#: Bucket upper bounds (seconds) for the latency histogram exposition.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Bucket upper bounds (requests) for the batch-size histogram.
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class LatencyHistogram:
    """Streaming histogram with exact percentiles over retained samples.

    Counters (``count``/``total``/bucket counts) are exact for the full
    stream; percentile queries sort the retained sample window (the most
    recent ``max_samples``), which covers any bounded serving test or
    bench run while capping memory for long-lived servers.
    """

    buckets: tuple[float, ...] = LATENCY_BUCKETS_S
    max_samples: int = 100_000
    count: int = 0
    total: float = 0.0
    bucket_counts: list[int] = field(default_factory=list)
    _samples: list[float] = field(default_factory=list)
    _next_slot: int = 0

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation (seconds, batch size, ...)."""
        value = float(value)
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:  # ring buffer: keep the most recent window
            self._samples[self._next_slot] = value
            self._next_slot = (self._next_slot + 1) % self.max_samples

    @property
    def mean(self) -> float:
        """Arithmetic mean of the full stream (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained window.

        ``p`` in [0, 100]; returns ``nan`` when nothing was observed.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (with identical buckets) into this one."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        self.count += other.count
        self.total += other.total
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        for v in other._samples:
            if len(self._samples) < self.max_samples:
                self._samples.append(v)
            else:
                self._samples[self._next_slot] = v
                self._next_slot = (self._next_slot + 1) % self.max_samples

    def reset(self) -> None:
        """Zero every counter and drop retained samples."""
        self.count = 0
        self.total = 0.0
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._samples = []
        self._next_slot = 0


def _fmt(value: float) -> str:
    """Prometheus-friendly float formatting (no exponent surprises)."""
    if value != value:  # NaN
        return "NaN"
    return repr(float(value))


def _labels(**labels: str) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


#: Public alias: other serving modules (the router) render label sets
#: with the same canonical sorted-key form the core families use.
render_labels = _labels

#: Series whose bare name matches this are point-in-time percentile
#: gauges; merging across workers takes the max (worst worker), because
#: summing percentiles is meaningless.
_PERCENTILE_NAME = re.compile(r"_p\d+$")


def _merge_family_of(bare_name: str, known: set[str]) -> str:
    """The metric family a sample line belongs to.

    Histogram samples (``X_bucket``/``X_sum``/``X_count``) roll up to
    ``X`` when ``X`` declared itself via ``# TYPE``; everything else is
    its own family.
    """
    for suffix in ("_bucket", "_sum", "_count"):
        if bare_name.endswith(suffix) and bare_name[: -len(suffix)] in known:
            return bare_name[: -len(suffix)]
    return bare_name


def merge_prometheus_texts(texts: list[str]) -> str:
    """Merge several Prometheus text expositions into one.

    The router uses this to answer ``GET /metrics`` for the whole tier:
    one scrape of the router returns its own exposition merged with a
    fresh scrape of every worker.  Merge rules:

    * counters, histogram ``_bucket``/``_sum``/``_count`` samples, and
      plain gauges **sum** across texts (identical series keys combine;
      series distinguished by labels — e.g. ``worker="0"`` — stay
      distinct lines);
    * percentile gauges (bare name matching ``_p\\d+$``) take the
      **max** — the worst worker's tail — skipping ``NaN`` from workers
      that saw no samples;
    * ``# HELP``/``# TYPE`` metadata and family ordering follow the
      first text that mentioned each family, and every family's samples
      stay grouped under its metadata as the exposition format requires.
    """
    meta: dict[str, list[str]] = {}        # family -> HELP/TYPE lines
    family_order: list[str] = []
    family_keys: dict[str, list[str]] = {}  # family -> series keys, ordered
    values: dict[str, float] = {}
    int_valued: dict[str, bool] = {}

    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    family = parts[2]
                    if family not in meta:
                        meta[family] = []
                        family_order.append(family)
                        family_keys.setdefault(family, [])
                    if not any(
                        existing.split(None, 3)[1] == parts[1]
                        for existing in meta[family]
                    ):
                        meta[family].append(line)
                continue
            key, _sep, value_text = line.rpartition(" ")
            if not _sep:
                continue
            try:
                value = float(value_text)
            except ValueError:
                continue
            bare = key.partition("{")[0]
            family = _merge_family_of(bare, set(meta))
            if family not in family_keys:
                family_order.append(family)
                family_keys[family] = []
            if key not in values:
                family_keys[family].append(key)
                values[key] = value
                int_valued[key] = "." not in value_text and value_text.isdigit()
            elif _PERCENTILE_NAME.search(bare):
                prior = values[key]
                if math.isnan(prior) or (
                    not math.isnan(value) and value > prior
                ):
                    values[key] = value
                int_valued[key] = False
            else:
                values[key] = values[key] + value
                int_valued[key] = int_valued[key] and (
                    "." not in value_text and value_text.isdigit()
                )

    lines: list[str] = []
    for family in family_order:
        lines.extend(meta.get(family, []))
        for key in family_keys.get(family, []):
            value = values[key]
            if int_valued[key]:
                lines.append(f"{key} {int(value)}")
            else:
                lines.append(f"{key} {_fmt(value)}")
    return "\n".join(lines) + "\n"


class ServingMetrics:
    """All request-path counters and histograms for one server.

    Single-threaded by design: the server mutates it only from its event
    loop, so no locking is needed.  The blocking client may *read* a
    rendered snapshot at any time via ``GET /metrics``.

    ``prefix`` names the exported metric family: the prediction server
    keeps the default ``repro_serve``, the registry artifact server uses
    ``repro_registry`` — same schema, distinct namespaces, so one scraper
    configuration covers both services.
    """

    def __init__(self, *, prefix: str = "repro_serve") -> None:
        self.prefix = prefix
        #: (endpoint, status code) -> served request count.
        self.requests_total: dict[tuple[str, int], int] = {}
        #: error reason -> count (bad_request, unknown_model, internal, ...).
        self.errors_total: dict[str, int] = {}
        #: predictions returned (a batch body counts each instance).
        self.predictions_total = 0
        #: resident-model cache hits / misses on /v1/predict.
        self.model_cache_hits = 0
        self.model_cache_misses = 0
        #: end-to-end request handling latency, seconds.
        self.latency = LatencyHistogram()
        #: rows per flushed micro-batch.
        self.batch_sizes = LatencyHistogram(buckets=tuple(float(b) for b in BATCH_BUCKETS))
        #: request phase -> time spent in that phase, seconds (see
        #: :data:`REQUEST_PHASES` for the pipeline order).
        self.phase_latency: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------ record
    def record_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Count one handled HTTP request and its wall latency."""
        key = (endpoint, int(status))
        self.requests_total[key] = self.requests_total.get(key, 0) + 1
        self.latency.observe(seconds)

    def record_error(self, reason: str) -> None:
        """Count one failed request by reason."""
        self.errors_total[reason] = self.errors_total.get(reason, 0) + 1

    def record_predictions(self, n: int) -> None:
        """Count ``n`` prediction values returned to clients."""
        self.predictions_total += int(n)

    def record_batch(self, size: int) -> None:
        """Count one flushed micro-batch of ``size`` rows."""
        self.batch_sizes.observe(float(size))

    def record_phase(self, phase: str, seconds: float) -> None:
        """Record time one request spent in one pipeline phase."""
        hist = self.phase_latency.get(phase)
        if hist is None:
            hist = self.phase_latency[phase] = LatencyHistogram()
        hist.observe(seconds)

    def record_model_cache(self, hit: bool) -> None:
        """Count one resident-model cache lookup."""
        if hit:
            self.model_cache_hits += 1
        else:
            self.model_cache_misses += 1

    # ------------------------------------------------------- derived
    @property
    def request_count(self) -> int:
        """Total HTTP requests across endpoints and statuses."""
        return sum(self.requests_total.values())

    @property
    def model_cache_hit_rate(self) -> float:
        """Fraction of model lookups served from memory (0.0 when idle)."""
        total = self.model_cache_hits + self.model_cache_misses
        return self.model_cache_hits / total if total else 0.0

    def merge(self, other: "ServingMetrics") -> None:
        """Fold another record (e.g. a drained worker's) into this one."""
        for key, n in other.requests_total.items():
            self.requests_total[key] = self.requests_total.get(key, 0) + n
        for key, n in other.errors_total.items():
            self.errors_total[key] = self.errors_total.get(key, 0) + n
        self.predictions_total += other.predictions_total
        self.model_cache_hits += other.model_cache_hits
        self.model_cache_misses += other.model_cache_misses
        self.latency.merge(other.latency)
        self.batch_sizes.merge(other.batch_sizes)
        for phase, hist in other.phase_latency.items():
            mine = self.phase_latency.get(phase)
            if mine is None:
                mine = self.phase_latency[phase] = LatencyHistogram()
            mine.merge(hist)

    def reset(self) -> None:
        """Zero every counter and histogram."""
        self.requests_total = {}
        self.errors_total = {}
        self.predictions_total = 0
        self.model_cache_hits = 0
        self.model_cache_misses = 0
        self.latency.reset()
        self.batch_sizes.reset()
        self.phase_latency = {}

    # ------------------------------------------------------ rendering
    def render_prometheus(self) -> str:
        """The Prometheus text exposition for ``GET /metrics``."""
        p = self.prefix
        lines: list[str] = []

        lines.append(f"# HELP {p}_requests_total HTTP requests handled.")
        lines.append(f"# TYPE {p}_requests_total counter")
        for (endpoint, status), n in sorted(self.requests_total.items()):
            lines.append(
                f"{p}_requests_total"
                f"{_labels(endpoint=endpoint, status=str(status))} {n}"
            )

        lines.append(f"# HELP {p}_errors_total Failed requests by reason.")
        lines.append(f"# TYPE {p}_errors_total counter")
        for reason, n in sorted(self.errors_total.items()):
            lines.append(f"{p}_errors_total{_labels(reason=reason)} {n}")

        lines.append(
            f"# HELP {p}_predictions_total Prediction values returned."
        )
        lines.append(f"# TYPE {p}_predictions_total counter")
        lines.append(f"{p}_predictions_total {self.predictions_total}")

        lines.append(
            f"# HELP {p}_model_cache_hits_total Resident-model cache hits."
        )
        lines.append(f"# TYPE {p}_model_cache_hits_total counter")
        lines.append(f"{p}_model_cache_hits_total {self.model_cache_hits}")
        lines.append(
            f"# HELP {p}_model_cache_misses_total Resident-model cache misses."
        )
        lines.append(f"# TYPE {p}_model_cache_misses_total counter")
        lines.append(
            f"{p}_model_cache_misses_total {self.model_cache_misses}"
        )

        lines.extend(
            self._render_histogram(
                f"{p}_request_latency_seconds",
                "End-to-end request handling latency.",
                self.latency,
            )
        )
        lines.extend(
            self._render_histogram(
                f"{p}_batch_size",
                "Rows per flushed micro-batch.",
                self.batch_sizes,
            )
        )
        lines.extend(self._render_phases())
        return "\n".join(lines) + "\n"

    def _render_phases(self) -> list[str]:
        """The per-phase latency family (one histogram per phase label)."""
        name = f"{self.prefix}_phase_latency_seconds"
        lines = [
            f"# HELP {name} Time each request spent per pipeline phase "
            "(queue, batch_wait, predict, serialize).",
            f"# TYPE {name} histogram",
        ]
        phases = sorted(self.phase_latency)
        for phase in phases:
            lines.extend(
                self._histogram_samples(
                    name, self.phase_latency[phase], phase=phase
                )
            )
        for p, label in ((50, "p50"), (95, "p95"), (99, "p99")):
            lines.append(
                f"# HELP {name}_{label} Phase latency percentile "
                f"(over the retained sample window)."
            )
            lines.append(f"# TYPE {name}_{label} gauge")
            for phase in phases:
                value = self.phase_latency[phase].percentile(p)
                lines.append(f"{name}_{label}{_labels(phase=phase)} {_fmt(value)}")
        return lines

    @classmethod
    def _render_histogram(
        cls, name: str, help_text: str, hist: LatencyHistogram
    ) -> list[str]:
        lines = [
            f"# HELP {name} {help_text}",
            f"# TYPE {name} histogram",
        ]
        lines.extend(cls._histogram_samples(name, hist))
        # Quantile gauges (summary-style convenience for dashboards/tests).
        for p, label in ((50, "p50"), (95, "p95"), (99, "p99")):
            lines.append(
                f"# HELP {name}_{label} Percentile of {name} "
                f"(over the retained sample window)."
            )
            lines.append(f"# TYPE {name}_{label} gauge")
            lines.append(
                f"{name}_{label} {_fmt(hist.percentile(p))}"
            )
        return lines

    @staticmethod
    def _histogram_samples(
        name: str, hist: LatencyHistogram, **labels: str
    ) -> list[str]:
        """Bucket/sum/count sample lines for one (possibly labelled) series."""
        lines = []
        cumulative = 0
        for bound, n in zip(hist.buckets, hist.bucket_counts):
            cumulative += n
            lines.append(
                f"{name}_bucket{_labels(le=_fmt(bound), **labels)} {cumulative}"
            )
        lines.append(f'{name}_bucket{_labels(le="+Inf", **labels)} {hist.count}')
        lines.append(f"{name}_sum{_labels(**labels)} {_fmt(hist.total)}")
        lines.append(f"{name}_count{_labels(**labels)} {hist.count}")
        return lines

    def summary(self) -> str:
        """Human-readable one-stop summary (EngineStats style)."""
        errors = sum(self.errors_total.values())
        lines = [
            f"serving stats: {self.request_count} requests, "
            f"{self.predictions_total} predictions, {errors} errors, "
            f"{100.0 * self.model_cache_hit_rate:.1f}% model cache hit rate"
        ]
        if self.latency.count:
            lines.append(
                "request latency: "
                f"p50 {1e3 * self.latency.percentile(50):.3f} ms | "
                f"p95 {1e3 * self.latency.percentile(95):.3f} ms | "
                f"p99 {1e3 * self.latency.percentile(99):.3f} ms"
            )
        if self.batch_sizes.count:
            lines.append(
                f"micro-batches: {self.batch_sizes.count} flushed, "
                f"mean size {self.batch_sizes.mean:.2f}, "
                f"max bucket p99 {self.batch_sizes.percentile(99):.0f}"
            )
        return "\n".join(lines)
