"""Versioned on-disk model registry.

A resource manager retrains as new co-location observations arrive; the
serving layer must be able to roll forward (and back) between model
versions without ambiguity about *which* artifact produced a prediction.
The registry stores each pushed artifact under ``<root>/<name>/<version>/``
as two files:

* ``model.json`` — the artifact, in the
  :mod:`~repro.core.persistence` JSON format (version-2: single
  predictors and bootstrap ensembles);
* ``manifest.json`` — provenance: the SHA-256 of the model bytes,
  artifact/model kind, feature set, processor, training-set size, and
  creation time.

Versions are integers assigned by ``push`` (1, 2, ...); ``name@version``
references are resolved by ``get``; a bare ``name`` means the latest
version.  Every load re-hashes the payload and rejects tampered or
corrupted artifacts with a descriptive :class:`RegistryError` — the
registry may live on shared storage, and a scheduler acting on a silently
corrupted model is worse than one that fails loudly.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from ..core.ensemble import EnsemblePredictor
from ..core.methodology import PerformancePredictor
from ..core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    artifact_from_dict,
    artifact_to_dict,
)

__all__ = ["ModelManifest", "ModelRegistry", "RegistryError"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

Artifact = PerformancePredictor | EnsemblePredictor


class RegistryError(ValueError):
    """Raised for unknown references, tampered or corrupted artifacts."""


@dataclass(frozen=True)
class ModelManifest:
    """Provenance record stored next to each registered artifact."""

    name: str
    version: int
    artifact: str            # "predictor" | "ensemble"
    kind: str                # "linear" | "neural"
    feature_set: str         # "A".."F"
    processor_name: str | None
    content_hash: str        # sha256 hex of model.json bytes
    format_version: int
    train_size: int | None
    created_at: str          # ISO-8601 UTC

    @property
    def ref(self) -> str:
        """The canonical ``name@version`` reference."""
        return f"{self.name}@{self.version}"

    def to_dict(self) -> dict:
        """JSON-ready manifest payload."""
        return {
            "name": self.name,
            "version": self.version,
            "artifact": self.artifact,
            "kind": self.kind,
            "feature_set": self.feature_set,
            "processor_name": self.processor_name,
            "content_hash": self.content_hash,
            "format_version": self.format_version,
            "train_size": self.train_size,
            "created_at": self.created_at,
        }

    @staticmethod
    def from_dict(data: dict) -> "ModelManifest":
        """Rebuild a manifest, rejecting malformed payloads."""
        try:
            return ModelManifest(
                name=str(data["name"]),
                version=int(data["version"]),
                artifact=str(data["artifact"]),
                kind=str(data["kind"]),
                feature_set=str(data["feature_set"]),
                processor_name=(
                    str(data["processor_name"])
                    if data.get("processor_name") is not None
                    else None
                ),
                content_hash=str(data["content_hash"]),
                format_version=int(data["format_version"]),
                train_size=(
                    int(data["train_size"])
                    if data.get("train_size") is not None
                    else None
                ),
                created_at=str(data["created_at"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed manifest: {exc}") from None


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class ModelRegistry:
    """Push, list, and integrity-checked retrieval of trained artifacts.

    The registry directory is created lazily on the first ``push``; a
    missing or empty directory reads as an empty registry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------ refs
    @staticmethod
    def parse_ref(ref: str) -> tuple[str, int | None]:
        """Split ``name`` or ``name@version`` into its parts."""
        name, sep, version = ref.partition("@")
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}; use letters, digits, '.', "
                f"'_', '-' (must start alphanumeric)"
            )
        if not sep:
            return name, None
        try:
            number = int(version)
        except ValueError:
            raise RegistryError(
                f"invalid version {version!r} in reference {ref!r}; "
                f"expected an integer"
            ) from None
        if number < 1:
            raise RegistryError(f"versions start at 1; got {number}")
        return name, number

    def _dir(self, name: str, version: int) -> Path:
        return self.root / name / str(version)

    def _versions(self, name: str) -> list[int]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return sorted(
            int(p.name)
            for p in model_dir.iterdir()
            if p.is_dir() and p.name.isdigit()
        )

    def names(self) -> list[str]:
        """Distinct model names with at least one version, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and self._versions(p.name)
        )

    # ------------------------------------------------------------ push
    def push(
        self,
        name: str,
        artifact: Artifact,
        *,
        created_at: str | None = None,
    ) -> ModelManifest:
        """Store a fitted artifact as the next version of ``name``.

        Returns the written manifest.  The artifact's JSON bytes are
        hashed at push time; every later load re-verifies that hash.
        """
        parsed, version = self.parse_ref(name)
        if version is not None:
            raise RegistryError(
                f"push takes a bare name; versions are assigned by the "
                f"registry (got {name!r})"
            )
        try:
            data = artifact_to_dict(artifact)
        except PersistenceError as exc:
            raise RegistryError(f"cannot push {parsed!r}: {exc}") from None
        payload = json.dumps(data, indent=2).encode()
        versions = self._versions(parsed)
        next_version = (versions[-1] + 1) if versions else 1
        manifest = ModelManifest(
            name=parsed,
            version=next_version,
            artifact=data["artifact"],
            kind=data["kind"],
            feature_set=data["feature_set"],
            processor_name=data.get("processor_name"),
            content_hash=_sha256(payload),
            format_version=FORMAT_VERSION,
            train_size=data.get("train_size"),
            created_at=created_at
            or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
        target = self._dir(parsed, next_version)
        target.mkdir(parents=True)
        (target / "model.json").write_bytes(payload)
        (target / "manifest.json").write_text(
            json.dumps(manifest.to_dict(), indent=2)
        )
        return manifest

    # ------------------------------------------------------------- get
    def resolve(self, ref: str) -> ModelManifest:
        """Resolve ``name`` / ``name@version`` to a stored manifest."""
        name, version = self.parse_ref(ref)
        versions = self._versions(name)
        if not versions:
            known = self.names()
            detail = (
                f"registry at {self.root} has models {known}"
                if known
                else f"registry at {self.root} is empty"
            )
            raise RegistryError(f"unknown model {name!r}: {detail}")
        if version is None:
            version = versions[-1]
        elif version not in versions:
            raise RegistryError(
                f"unknown version {version} of {name!r}; available: "
                f"{versions}"
            )
        return self.manifest(name, version)

    def manifest(self, name: str, version: int) -> ModelManifest:
        """Read one stored manifest (no payload verification)."""
        path = self._dir(name, version) / "manifest.json"
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise RegistryError(
                f"missing manifest for {name}@{version} under {self.root}"
            ) from None
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"manifest for {name}@{version} is not valid JSON: {exc}"
            ) from None
        manifest = ModelManifest.from_dict(data)
        if manifest.name != name or manifest.version != version:
            raise RegistryError(
                f"manifest under {name}@{version} claims to be "
                f"{manifest.ref}; registry layout was tampered with"
            )
        return manifest

    def latest(self, name: str) -> ModelManifest:
        """Manifest of the newest version of ``name``."""
        return self.resolve(name)

    def get(self, ref: str) -> tuple[Artifact, ModelManifest]:
        """Load an artifact by reference, verifying its content hash.

        Returns ``(artifact, manifest)``.  Raises :class:`RegistryError`
        for unknown references, hash mismatches (tampering), and
        corrupted payloads.
        """
        manifest = self.resolve(ref)
        path = self._dir(manifest.name, manifest.version) / "model.json"
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise RegistryError(
                f"missing model payload for {manifest.ref} under {self.root}"
            ) from None
        digest = _sha256(payload)
        if digest != manifest.content_hash:
            raise RegistryError(
                f"content hash mismatch for {manifest.ref}: manifest "
                f"records {manifest.content_hash[:12]}... but model.json "
                f"hashes to {digest[:12]}...; the artifact was modified "
                f"after push"
            )
        try:
            artifact = artifact_from_dict(json.loads(payload.decode()))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RegistryError(
                f"corrupted payload for {manifest.ref}: not valid JSON "
                f"({exc})"
            ) from None
        except PersistenceError as exc:
            raise RegistryError(
                f"corrupted payload for {manifest.ref}: {exc}"
            ) from None
        return artifact, manifest

    # ------------------------------------------------------------ list
    def list(self) -> list[ModelManifest]:
        """Every stored manifest, sorted by (name, version)."""
        return [
            self.manifest(name, version)
            for name in self.names()
            for version in self._versions(name)
        ]
