"""Compatibility shim: the model registry moved to :mod:`repro.registry`.

The versioned on-disk registry began life here, next to the prediction
server.  It is now the *local backend* of the ``repro.registry``
subsystem (which adds a remote HTTP backend, tombstones, and GC), and
lives in :mod:`repro.registry.local`.  This module re-exports the public
names so existing imports — ``from repro.serve.registry import
ModelRegistry`` — keep working unchanged.

New code should import from :mod:`repro.registry` directly.
"""

from __future__ import annotations

# Direct submodule import (not the package __init__) so that
# ``repro.registry`` importing back into ``repro.serve`` cannot cycle.
from ..registry.local import (
    GCReport,
    LocalBackend,
    ModelManifest,
    ModelRegistry,
    RegistryError,
    TombstoneError,
    parse_ref,
)

__all__ = [
    "GCReport",
    "LocalBackend",
    "ModelManifest",
    "ModelRegistry",
    "RegistryError",
    "TombstoneError",
    "parse_ref",
]
