"""Micro-batching for the prediction hot path.

One HTTP request carries one (or a few) feature rows, but the underlying
models are vectorized: predicting 32 rows in one call costs barely more
than predicting one.  The :class:`MicroBatcher` exploits that by queueing
concurrent requests for the same model and flushing them as a single
``(n, k)`` matrix through one predict call, whichever comes first of

* the batch reaching ``max_batch`` rows, or
* the oldest queued row waiting ``max_wait_ms`` milliseconds.

Correctness contract: because the serving predictors reduce each row with
shape-stable kernels (``predict_stable``), a row's prediction is
bit-identical whether it is flushed alone or with 63 neighbours — batching
changes throughput, never results.  ``tests/serve/test_batcher.py`` pins
that with exact float equality.

The batcher is event-loop-confined: all methods must be called from the
loop that created it (the server guarantees this); the synchronous predict
function runs inline on the loop, which is fine at model sizes where a
batched call is tens of microseconds.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs.trace import current_span, get_tracer

__all__ = ["BacklogFullError", "BatcherStats", "MicroBatcher"]

#: predict_fn: (n, k) matrix -> (n,) array, or a tuple of (n,) arrays
#: (ensembles return (means, stds)).
PredictFn = Callable[[np.ndarray], "np.ndarray | tuple[np.ndarray, ...]"]


class BacklogFullError(RuntimeError):
    """A row was shed because the batcher's backlog bound was hit.

    The server maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` of :attr:`retry_after_s` seconds (one deadline
    flush is guaranteed to run within ``max_wait_ms``, so the backlog
    will have drained by then).
    """

    def __init__(self, message: str, *, retry_after_s: int = 1) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass
class BatcherStats:
    """Flush accounting for one batcher (merged into /metrics)."""

    rows: int = 0
    batches: int = 0
    size_flushes: int = 0      # flushed because the batch filled up
    deadline_flushes: int = 0  # flushed because max_wait_ms elapsed
    drain_flushes: int = 0     # flushed by shutdown drain
    #: Rows rejected by admission control (``max_backlog``); exported as
    #: ``repro_serve_shed_total``.
    shed: int = 0
    flush_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Average rows per flush (0.0 before the first flush)."""
        return self.rows / self.batches if self.batches else 0.0

    def record_flush(self, size: int, reason: str) -> None:
        """Count one flush of ``size`` rows for ``reason``."""
        self.rows += size
        self.batches += 1
        if reason == "size":
            self.size_flushes += 1
        elif reason == "deadline":
            self.deadline_flushes += 1
        elif reason == "drain":
            self.drain_flushes += 1
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    def record_shed(self, rows: int = 1) -> None:
        """Count rows rejected by admission control."""
        self.shed += int(rows)


class MicroBatcher:
    """Coalesce concurrent predict calls into vectorized batches.

    Parameters
    ----------
    predict_fn:
        Vectorized prediction over an ``(n, k)`` matrix.  May return one
        array (point predictors) or a tuple of arrays (ensembles return
        means and stds); :meth:`submit` resolves to the row's scalar or
        tuple of scalars respectively.
    max_batch:
        Flush as soon as this many rows are queued.  ``1`` disables
        coalescing (every request is its own batch) — the baseline the
        throughput bench compares against.
    max_wait_ms:
        Deadline for the *oldest* queued row; bounds the latency cost a
        lone request pays waiting for company.
    max_backlog:
        Admission bound: a :meth:`submit` arriving while this many rows
        are already queued is shed with :class:`BacklogFullError`
        (counted in :attr:`BatcherStats.shed`) instead of growing the
        queue.  ``None`` (default) never sheds.
    on_flush:
        Optional callback ``(batch_size, reason)`` — the server uses it
        to feed the batch-size histogram.
    on_phase:
        Optional callback ``(phase, seconds)`` — fed one ``"batch_wait"``
        observation per flushed row (submit to flush start) and one
        ``"predict"`` observation per flush (the vectorized call itself).
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_backlog: int | None = None,
        on_flush: Callable[[int, str], None] | None = None,
        on_phase: Callable[[str, float], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 (or None)")
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_backlog = max_backlog
        self.on_flush = on_flush
        self.on_phase = on_phase
        self.stats = BatcherStats()
        # (row, future, submit perf_counter time, submitting request span).
        self._pending: list[tuple[np.ndarray, asyncio.Future, float, object]] = []
        self._timer: asyncio.TimerHandle | None = None

    @property
    def pending(self) -> int:
        """Rows currently queued and not yet flushed."""
        return len(self._pending)

    async def submit(self, row: np.ndarray):
        """Queue one feature row; resolves to its prediction.

        Returns a float for point predictors, or a tuple of floats for
        tuple-returning predict functions (e.g. ``(mean, std)``).
        Exceptions raised by ``predict_fn`` propagate to every request in
        the affected batch.  Raises :class:`BacklogFullError` without
        queueing when ``max_backlog`` is set and already reached.
        """
        row = np.asarray(row, dtype=float)
        if row.ndim != 1:
            raise ValueError(f"submit takes one 1-D feature row; got {row.shape}")
        if (
            self.max_backlog is not None
            and len(self._pending) >= self.max_backlog
        ):
            self.stats.record_shed(1)
            # The drain horizon: the oldest queued row flushes within
            # max_wait_ms, so the backlog has space again by then.
            # ceil, not int()+1 — a 60 s deadline means retry after 60 s,
            # not 61; floor of 1 s because Retry-After is whole seconds.
            retry_after_s = max(1, math.ceil(self.max_wait_ms / 1000.0))
            raise BacklogFullError(
                f"backlog full: {len(self._pending)} row(s) already queued "
                f"(max_backlog={self.max_backlog}); retry after "
                f"{retry_after_s}s",
                retry_after_s=retry_after_s,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        parent = current_span() if get_tracer().enabled else None
        self._pending.append((row, future, time.perf_counter(), parent))
        if len(self._pending) >= self.max_batch:
            self._flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_ms / 1000.0, self._flush, "deadline"
            )
        return await future

    def _flush(self, reason: str) -> None:
        """Run one batch through ``predict_fn`` and resolve its futures."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        rows = np.stack([row for row, _future, _t, _span in batch])
        self.stats.record_flush(len(batch), reason)
        if self.on_flush is not None:
            self.on_flush(len(batch), reason)
        tracer = get_tracer()
        flush_started = time.perf_counter()
        if self.on_phase is not None:
            for _row, _future, submitted, _span in batch:
                self.on_phase("batch_wait", flush_started - submitted)
        if tracer.enabled:
            # Each row's wait is only known now — record it retroactively,
            # parented to the request span that submitted the row.
            for _row, _future, submitted, span in batch:
                tracer.record_span(
                    "serve.batch_wait",
                    start=submitted,
                    end=flush_started,
                    parent=span,
                    reason=reason,
                )
        try:
            result = self.predict_fn(rows)
        except Exception as exc:  # noqa: BLE001 - forwarded to awaiters
            for _row, future, _t, _span in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        predict_done = time.perf_counter()
        if self.on_phase is not None:
            self.on_phase("predict", predict_done - flush_started)
        if tracer.enabled:
            # One vectorized call serves the whole batch; the span joins
            # the first submitter's trace and carries the batch size.
            tracer.record_span(
                "serve.predict",
                start=flush_started,
                end=predict_done,
                parent=batch[0][3],
                batch_size=len(batch),
                reason=reason,
            )
        for i, (_row, future, _t, _span) in enumerate(batch):
            if future.done():  # cancelled awaiter; nothing to deliver
                continue
            if isinstance(result, tuple):
                future.set_result(tuple(float(part[i]) for part in result))
            else:
                future.set_result(float(result[i]))

    async def drain(self) -> None:
        """Flush anything pending immediately (graceful shutdown)."""
        self._flush("drain")
        # Give resolved futures a tick so awaiters observe their results
        # before the server closes connections.
        await asyncio.sleep(0)
