"""Asyncio HTTP server for online placement predictions.

Built on the shared stdlib HTTP plumbing in :mod:`repro.serve.http`.
Endpoints:

* ``POST /v1/predict`` — single (``{"model", "features"}``) and batch
  (``{"model", "instances"}``) bodies; ``?interval=1`` (or
  ``"interval": true``) returns mean ± disagreement band from a served
  ensemble;
* ``GET /v1/models`` — every registered manifest;
* ``GET /healthz`` — liveness;
* ``GET /metrics`` — Prometheus text exposition
  (:mod:`~repro.serve.metrics`).

Requests for the same model are coalesced by a per-model
:class:`~repro.serve.batcher.MicroBatcher`; loaded artifacts are kept in
a small LRU so the registry (and its integrity hashing) is only touched
on first use per version.  ``stop()`` is graceful: the listener closes,
queued batches drain, and in-flight requests finish before connections
are torn down.

The server reads artifacts through the
:class:`~repro.registry.backend.RegistryBackend` protocol, so the same
process serves from a local directory
(:class:`~repro.registry.local.ModelRegistry`) or from a remote registry
service (:class:`~repro.registry.client.HttpBackend`) unchanged.  Remote
backends are resolved off the event loop (``asyncio.to_thread``) so a
slow registry never stalls in-flight predictions.

Two production behaviours are optional:

* **Admission control** (``max_backlog``): once a model's micro-batcher
  queue passes the bound, further rows are shed with ``429 Too Many
  Requests`` + ``Retry-After`` instead of growing the queue without
  limit; sheds are counted in ``repro_serve_shed_total``.
* **Hot-reload** (``hot_reload_s``): a background task polls the backend
  for new latest versions, pre-warms them into the resident-model LRU
  (so the first request after a push never pays the artifact load), and
  evicts residents whose version was tombstoned.  Backends with a change
  cursor (``changed_models``) are polled incrementally — one
  ``?since=<cursor>`` round-trip per tick, touching only changed names;
  cursor-less backends and old registry servers fall back to the
  original full scan.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict

import numpy as np

from ..obs.adapters import install_default_sources
from ..obs.registry import MetricsRegistry, escape_label_value
from ..registry.local import ModelRegistry, RegistryError, parse_ref
from .batcher import BacklogFullError, MicroBatcher
from .http import HTTPError, HttpServerBase, Request, ServerThreadBase
from .http import header_safe as _header_safe  # noqa: F401  (compat re-export)
from .metrics import ServingMetrics
from .registry import ModelManifest  # noqa: F401  (compat re-export)

__all__ = ["PredictionServer", "ServerThread"]


class _ResidentModel:
    """One loaded artifact with its manifest and micro-batcher."""

    def __init__(self, artifact, manifest, batcher: MicroBatcher):
        self.artifact = artifact
        self.manifest = manifest
        self.batcher = batcher
        self.feature_names = tuple(
            f.value for f in artifact.feature_set.features
        )
        self.feature_name_set = frozenset(self.feature_names)

    @property
    def is_ensemble(self) -> bool:
        return self.manifest.artifact == "ensemble"


class PredictionServer(HttpServerBase):
    """Serve predictions from any :class:`~repro.registry.backend.RegistryBackend`.

    Parameters
    ----------
    registry:
        Source of artifacts; resolved lazily per request.  A local
        :class:`~repro.registry.local.ModelRegistry` or a remote
        :class:`~repro.registry.client.HttpBackend`.
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    max_batch, max_wait_ms:
        Micro-batching knobs, applied to every served model.
    max_backlog:
        Per-model admission bound: rows queued beyond this are shed with
        429 + ``Retry-After``.  ``None`` (default) disables shedding.
    model_cache_size:
        Resident-model LRU capacity (distinct ``name@version`` entries).
    hot_reload_s:
        Poll the backend for new latest versions every this-many seconds,
        pre-warming the LRU and evicting tombstoned residents.  ``None``
        (default) disables the poller.
    worker_id:
        Set when this server is one worker of a routed tier
        (:mod:`repro.serve.router`): exported as the
        ``repro_serve_worker_up{worker="N"}`` gauge so the merged scrape
        shows which shards answered.  ``None`` (default) for standalone
        servers.
    metrics:
        Optional shared :class:`~repro.serve.metrics.ServingMetrics`.
    """

    known_endpoints = ("/v1/predict", "/v1/models", "/healthz", "/metrics")
    request_span_name = "serve.request"

    def __init__(
        self,
        registry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_backlog: int | None = None,
        model_cache_size: int = 8,
        hot_reload_s: float | None = None,
        worker_id: int | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if model_cache_size < 1:
            raise ValueError("model_cache_size must be >= 1")
        if hot_reload_s is not None and hot_reload_s <= 0.0:
            raise ValueError("hot_reload_s must be positive (or None)")
        super().__init__(host=host, port=port)
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_backlog = max_backlog
        self.model_cache_size = model_cache_size
        self.hot_reload_s = hot_reload_s
        self.worker_id = worker_id
        self.metrics = metrics if metrics is not None else ServingMetrics()
        # Per-server metrics registry: one GET /metrics scrape merges the
        # request-path metrics with the process-wide engine and fitting
        # aggregates plus the per-model batcher backlog.  Private (not the
        # obs default) so several servers in one process stay independent.
        self.obs_registry = install_default_sources(
            MetricsRegistry(), serving=self.metrics.render_prometheus
        )
        self.obs_registry.register_source("batcher", self._render_batcher_metrics)
        self._resident: OrderedDict[str, _ResidentModel] = OrderedDict()
        # Remote backends block on sockets; resolve them off the loop.
        # The local directory backend stays inline (a stat + cached dict
        # lookup is cheaper than a thread-pool hop).
        self._offload_registry = not isinstance(registry, ModelRegistry)
        self._reload_task: asyncio.Task | None = None
        self._reload_stop: asyncio.Event | None = None
        self._hot_reload_loads = 0
        self._hot_reload_evictions = 0
        # Change-cursor state for the poller: the last cursor returned by
        # the backend's ``changed_models``, and whether that surface is
        # usable at all (None = not probed yet; False = backend or server
        # lacks it, full scans for the rest of this server's life).
        self._reload_cursor: str | None = None
        self._reload_cursor_supported: bool | None = None

    # ----------------------------------------------------------- lifecycle
    async def _on_start(self) -> None:
        if self.hot_reload_s is not None:
            self._reload_stop = asyncio.Event()
            self._reload_task = asyncio.get_running_loop().create_task(
                self._hot_reload_loop()
            )

    async def stop(self, *, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: stop the poller, drain batches, finish work.

        The poller is stopped *cooperatively* and waited for BEFORE the
        drain begins.  Cancelling it is not enough: a poll blocked inside
        ``asyncio.to_thread`` keeps running in its executor thread after
        the cancel, and could install a model into the LRU (or keep
        touching the registry backend) after the batchers have drained.
        Setting the stop event and awaiting the task means any in-flight
        backend call finishes first and the poll then observes the event
        and discards its work instead of installing it.
        """
        if self._reload_task is not None:
            task, self._reload_task = self._reload_task, None
            if self._reload_stop is not None:
                self._reload_stop.set()
            try:
                # Bounded wait: a poll stuck in a hung backend call must
                # not wedge shutdown forever; past the bound we fall back
                # to cancellation (the stop event still guards installs).
                await asyncio.wait_for(asyncio.shield(task), timeout=10.0)
            except asyncio.TimeoutError:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        await super().stop(drain_timeout_s=drain_timeout_s)

    async def _drain(self) -> None:
        for resident in list(self._resident.values()):
            await resident.batcher.drain()

    # ------------------------------------------------------------- metrics
    def _record_request(self, endpoint: str, status: int, seconds: float) -> None:
        self.metrics.record_request(endpoint, status, seconds)

    def _record_error(self, reason: str) -> None:
        self.metrics.record_error(reason)

    def _render_batcher_metrics(self) -> str:
        """Backlog gauge, shed counter, and hot-reload counters."""
        lines = [
            "# HELP repro_serve_batcher_backlog Rows queued in each "
            "resident model's micro-batcher, sampled at scrape time.",
            "# TYPE repro_serve_batcher_backlog gauge",
        ]
        shed = 0
        for key, resident in self._resident.items():
            lines.append(
                "repro_serve_batcher_backlog"
                f'{{model="{escape_label_value(key)}"}} '
                f"{resident.batcher.pending}"
            )
            shed += resident.batcher.stats.shed
        lines.append(
            "# HELP repro_serve_shed_total Rows rejected by admission "
            "control (--max-backlog) with 429 responses."
        )
        lines.append("# TYPE repro_serve_shed_total counter")
        lines.append(f"repro_serve_shed_total {shed}")
        lines.append(
            "# HELP repro_serve_hot_reload_loads_total Artifacts pre-warmed "
            "into the resident LRU by the hot-reload poller."
        )
        lines.append("# TYPE repro_serve_hot_reload_loads_total counter")
        lines.append(f"repro_serve_hot_reload_loads_total {self._hot_reload_loads}")
        lines.append(
            "# HELP repro_serve_hot_reload_evictions_total Residents evicted "
            "because their version was tombstoned."
        )
        lines.append("# TYPE repro_serve_hot_reload_evictions_total counter")
        lines.append(
            f"repro_serve_hot_reload_evictions_total {self._hot_reload_evictions}"
        )
        if self.worker_id is not None:
            lines.append(
                "# HELP repro_serve_worker_up Serving-tier workers that "
                "answered this scrape."
            )
            lines.append("# TYPE repro_serve_worker_up gauge")
            lines.append(
                "repro_serve_worker_up"
                f'{{worker="{escape_label_value(str(self.worker_id))}"}} 1'
            )
        return "\n".join(lines)

    # ------------------------------------------------------------- models
    def _install_resident(self, key: str, artifact, manifest) -> _ResidentModel:
        """Wrap a loaded artifact and place it in the LRU (evicting)."""
        existing = self._resident.get(key)
        if existing is not None:  # concurrent load raced us; keep the first
            self._resident.move_to_end(key)
            return existing
        batcher = MicroBatcher(
            artifact.predict_rows,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            max_backlog=self.max_backlog,
            on_flush=lambda size, _reason: self.metrics.record_batch(size),
            on_phase=self.metrics.record_phase,
        )
        resident = _ResidentModel(artifact, manifest, batcher)
        self._resident[key] = resident
        while len(self._resident) > self.model_cache_size:
            _evicted_key, evicted = self._resident.popitem(last=False)
            evicted.batcher._flush("drain")  # resolve any queued rows
        return resident

    def _resolve_key(self, ref: str) -> str:
        """Pin a reference to ``name@version`` via the backend."""
        name, version = parse_ref(ref)
        if version is None:
            # A bare name floats with the registry: resolve the current
            # latest version (the backend caches this), then hit the
            # resident cache on its pin.
            version = self.registry.latest_version(name)
        return f"{name}@{version}"

    def _resident_model(self, ref: str) -> _ResidentModel:
        """Resolve a reference to a loaded model, LRU-caching residents."""
        key = self._resolve_key(ref)
        resident = self._resident.get(key)
        if resident is not None:
            self._resident.move_to_end(key)
            self.metrics.record_model_cache(hit=True)
            return resident
        self.metrics.record_model_cache(hit=False)
        artifact, manifest = self.registry.get(key)
        return self._install_resident(key, artifact, manifest)

    async def _resident_model_async(self, ref: str) -> _ResidentModel:
        """Like :meth:`_resident_model`, but remote backends run off-loop."""
        if not self._offload_registry:
            return self._resident_model(ref)
        key = await asyncio.to_thread(self._resolve_key, ref)
        resident = self._resident.get(key)
        if resident is not None:
            self._resident.move_to_end(key)
            self.metrics.record_model_cache(hit=True)
            return resident
        self.metrics.record_model_cache(hit=False)
        artifact, manifest = await asyncio.to_thread(self.registry.get, key)
        return self._install_resident(key, artifact, manifest)

    # --------------------------------------------------------- hot reload
    def _reload_stopping(self) -> bool:
        """True once shutdown asked the poller to discard in-flight work."""
        return (
            self._closing
            or (self._reload_stop is not None and self._reload_stop.is_set())
        )

    async def _hot_reload_loop(self) -> None:
        stop = self._reload_stop
        while not stop.is_set():
            try:
                await self.hot_reload_once()
            except Exception:  # noqa: BLE001 - backend outage: retry next tick
                pass
            try:
                await asyncio.wait_for(stop.wait(), timeout=self.hot_reload_s)
            except asyncio.TimeoutError:
                pass

    async def _changed_names(self) -> list[str] | None:
        """Names changed since the last poll, or ``None`` for a full scan.

        Uses the backend's optional change cursor
        (:meth:`~repro.registry.local.ModelRegistry.changed_models`).  A
        backend without the method — or an HTTP backend whose server
        predates cursors (it reports that by returning ``None``) —
        disables the cursor path for this server's lifetime, and every
        poll falls back to the full ``names()`` scan.
        """
        if self._reload_cursor_supported is False:
            return None
        changed_models = getattr(self.registry, "changed_models", None)
        if changed_models is None:
            self._reload_cursor_supported = False
            return None
        result = await asyncio.to_thread(changed_models, self._reload_cursor)
        if result is None:
            self._reload_cursor_supported = False
            return None
        changed, self._reload_cursor = result
        self._reload_cursor_supported = True
        return list(changed)

    async def hot_reload_once(self) -> None:
        """One poll: pre-warm new latest versions, evict tombstoned ones.

        When the backend offers a change cursor, each poll asks only for
        the names that changed since the previous one — O(changes)
        instead of a full listing per tick — and restricts the tombstone
        sweep to residents of those names.  The cursor advances even
        when a warm fails (outage mid-poll): pre-warming is an
        optimization, and the per-request lazy-load path still serves
        the model; the next change re-warms it.

        Checks the shutdown stop event between every backend call and
        before every install/evict, so a poll overlapping ``stop()``
        finishes its in-flight call and then discards the result instead
        of mutating the LRU (or issuing further backend calls) after the
        drain has begun.
        """
        changed = await self._changed_names()
        if self._reload_stopping():
            return
        if changed is None:
            names = await asyncio.to_thread(self.registry.names)
            changed_names = None
        else:
            names = changed
            changed_names = set(changed)
        for name in names:
            if self._reload_stopping():
                return
            try:
                manifest = await asyncio.to_thread(self.registry.latest, name)
            except RegistryError:
                continue  # empty/blocked name; nothing to warm
            if manifest.ref in self._resident:
                continue
            if self._reload_stopping():
                return
            try:
                artifact, manifest = await asyncio.to_thread(
                    self.registry.get, manifest.ref
                )
            except RegistryError:
                continue
            if self._reload_stopping():
                return
            self._install_resident(manifest.ref, artifact, manifest)
            self._hot_reload_loads += 1
        for key, resident in list(self._resident.items()):
            if (
                changed_names is not None
                and resident.manifest.name not in changed_names
            ):
                continue  # untouched since the cursor: tombstone unchanged
            if self._reload_stopping():
                return
            try:
                reason = await asyncio.to_thread(
                    self.registry.tombstone_reason,
                    resident.manifest.name,
                    resident.manifest.version,
                )
            except Exception:  # noqa: BLE001 - can't check now; keep serving
                continue
            if self._reload_stopping():
                return
            if reason is not None:
                evicted = self._resident.pop(key, None)
                if evicted is not None:
                    evicted.batcher._flush("drain")
                    self._hot_reload_evictions += 1

    # ------------------------------------------------------------ requests
    async def _route(self, request: Request):
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            body = {"status": "ok", "models": len(self.registry.names())}
            return 200, "application/json", json.dumps(body).encode()
        if path == "/metrics":
            self._require(method, "GET")
            # The merged registry: serving + engine + fitting + batcher
            # backlog, one scrape (the serving source is this server's own
            # ServingMetrics).
            text = self.obs_registry.render()
            return 200, "text/plain; version=0.0.4", text.encode()
        if path == "/v1/models":
            self._require(method, "GET")
            body = {"models": [m.to_dict() for m in self.registry.list()]}
            return 200, "application/json", json.dumps(body).encode()
        if path == "/v1/predict":
            self._require(method, "POST")
            return await self._predict(request)
        raise HTTPError(404, "not_found", f"no route for {path}")

    # ------------------------------------------------------------- predict
    async def _predict(self, request: Request):
        entered = time.perf_counter()
        try:
            body = json.loads(request.body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HTTPError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise HTTPError(400, "bad_request", "body must be a JSON object")
        ref = body.get("model")
        if not isinstance(ref, str) or not ref:
            raise HTTPError(
                400, "bad_request", "body needs a 'model' reference "
                "('name' or 'name@version')"
            )
        single = "features" in body
        if single == ("instances" in body):
            raise HTTPError(
                400, "bad_request",
                "body needs exactly one of 'features' (single) or "
                "'instances' (batch)",
            )
        interval = bool(body.get("interval")) or (
            request.query.get("interval", ["0"])[0] not in ("", "0", "false")
        )
        try:
            resident = await self._resident_model_async(ref)
        except RegistryError as exc:
            raise HTTPError(404, "unknown_model", str(exc)) from None
        if interval and not resident.is_ensemble:
            raise HTTPError(
                400, "bad_request",
                f"{resident.manifest.ref} is a point predictor; "
                f"intervals need an ensemble artifact",
            )
        instances = [body["features"]] if single else body["instances"]
        if not isinstance(instances, list) or not instances:
            raise HTTPError(
                400, "bad_request", "'instances' must be a non-empty list"
            )
        rows = [self._feature_row(resident, inst) for inst in instances]
        # Phase breakdown: "queue" is everything before the batcher sees
        # the rows (parse, validate, model resolve); the batcher itself
        # records "batch_wait" and "predict"; "serialize" follows below.
        self.metrics.record_phase("queue", time.perf_counter() - entered)
        try:
            results = await self._submit_rows(resident.batcher, rows)
        except BacklogFullError as exc:
            raise HTTPError(
                429, "backlog_full", str(exc),
                headers={"Retry-After": str(exc.retry_after_s)},
            ) from None
        serialize_started = time.perf_counter()
        self.metrics.record_predictions(len(results))
        payload: dict = {"model": resident.manifest.ref}
        if resident.is_ensemble:
            means = [r[0] for r in results]
            stds = [r[1] for r in results]
            if single:
                payload["prediction"] = means[0]
                if interval:
                    payload["std"] = stds[0]
                    payload["interval"] = [
                        means[0] - 2.0 * stds[0], means[0] + 2.0 * stds[0]
                    ]
            else:
                payload["predictions"] = means
                if interval:
                    payload["stds"] = stds
                    payload["intervals"] = [
                        [m - 2.0 * s, m + 2.0 * s]
                        for m, s in zip(means, stds)
                    ]
        else:
            if single:
                payload["prediction"] = results[0]
            else:
                payload["predictions"] = list(results)
        encoded = json.dumps(payload, separators=(",", ":")).encode()
        self.metrics.record_phase(
            "serialize", time.perf_counter() - serialize_started
        )
        return 200, "application/json", encoded

    @staticmethod
    async def _submit_rows(batcher: MicroBatcher, rows: list[np.ndarray]):
        """Queue all rows; a shed anywhere rejects the whole request."""
        if len(rows) == 1:
            return [await batcher.submit(rows[0])]
        gathered = await asyncio.gather(
            *(batcher.submit(row) for row in rows), return_exceptions=True
        )
        for result in gathered:
            if isinstance(result, BaseException):
                raise result
        return list(gathered)

    @staticmethod
    def _feature_row(resident: _ResidentModel, features) -> np.ndarray:
        if not isinstance(features, dict):
            raise HTTPError(
                400, "bad_request",
                "each instance must be an object of feature name -> value",
            )
        names = resident.feature_names
        unknown = sorted(set(features) - resident.feature_name_set)
        if unknown:
            raise HTTPError(
                400, "bad_request",
                f"unknown feature(s) {unknown}; model "
                f"{resident.manifest.ref} expects {list(names)}",
            )
        values = []
        for name in names:
            if name not in features:
                raise HTTPError(
                    400, "bad_request",
                    f"missing feature {name!r}; model "
                    f"{resident.manifest.ref} expects {list(names)}",
                )
            value = features[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise HTTPError(
                    400, "bad_request",
                    f"feature {name!r} must be a number; got {value!r}",
                )
            values.append(float(value))
        return np.array(values)


class ServerThread(ServerThreadBase):
    """Run a :class:`PredictionServer` on a background event loop.

    For synchronous callers — tests, the throughput bench — that need a
    live server next to blocking client code::

        with ServerThread(registry, max_batch=32) as handle:
            client = PredictionClient("127.0.0.1", handle.port)
            ...

    Exit performs the graceful ``stop()`` (drains batches) and joins the
    thread.
    """

    thread_name = "repro-serve"

    def __init__(self, registry, **server_kwargs) -> None:
        super().__init__(PredictionServer(registry, **server_kwargs))
