"""Asyncio HTTP server for online placement predictions.

A deliberately small HTTP/1.1 implementation on ``asyncio`` streams — no
third-party web framework, matching the repo's stdlib+numpy/scipy
dependency budget.  Endpoints:

* ``POST /v1/predict`` — single (``{"model", "features"}``) and batch
  (``{"model", "instances"}``) bodies; ``?interval=1`` (or
  ``"interval": true``) returns mean ± disagreement band from a served
  ensemble;
* ``GET /v1/models`` — every registered manifest;
* ``GET /healthz`` — liveness;
* ``GET /metrics`` — Prometheus text exposition
  (:mod:`~repro.serve.metrics`).

Requests for the same model are coalesced by a per-model
:class:`~repro.serve.batcher.MicroBatcher`; loaded artifacts are kept in
a small LRU so the registry (and its integrity hashing) is only touched
on first use per version.  ``stop()`` is graceful: the listener closes,
queued batches drain, and in-flight requests finish before connections
are torn down.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..obs.adapters import install_default_sources
from ..obs.registry import MetricsRegistry, escape_label_value
from ..obs.trace import get_tracer
from .batcher import MicroBatcher
from .metrics import ServingMetrics
from .registry import ModelManifest, ModelRegistry, RegistryError

__all__ = ["PredictionServer", "ServerThread"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Endpoints that get their own metrics label; anything else is "other"
#: so a scanner cannot blow up label cardinality.
_KNOWN_ENDPOINTS = ("/v1/predict", "/v1/models", "/healthz", "/metrics")


class _HTTPError(Exception):
    """Internal: maps a handler failure to (status, reason, message)."""

    def __init__(self, status: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes


class _ResidentModel:
    """One loaded artifact with its manifest and micro-batcher."""

    def __init__(self, artifact, manifest: ModelManifest, batcher: MicroBatcher):
        self.artifact = artifact
        self.manifest = manifest
        self.batcher = batcher
        self.feature_names = tuple(
            f.value for f in artifact.feature_set.features
        )
        self.feature_name_set = frozenset(self.feature_names)

    @property
    def is_ensemble(self) -> bool:
        return self.manifest.artifact == "ensemble"


class PredictionServer:
    """Serve predictions from a :class:`~repro.serve.registry.ModelRegistry`.

    Parameters
    ----------
    registry:
        Source of artifacts; resolved lazily per request.
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    max_batch, max_wait_ms:
        Micro-batching knobs, applied to every served model.
    model_cache_size:
        Resident-model LRU capacity (distinct ``name@version`` entries).
    metrics:
        Optional shared :class:`~repro.serve.metrics.ServingMetrics`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        model_cache_size: int = 8,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if model_cache_size < 1:
            raise ValueError("model_cache_size must be >= 1")
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.model_cache_size = model_cache_size
        self.metrics = metrics if metrics is not None else ServingMetrics()
        # Per-server metrics registry: one GET /metrics scrape merges the
        # request-path metrics with the process-wide engine and fitting
        # aggregates plus the per-model batcher backlog.  Private (not the
        # obs default) so several servers in one process stay independent.
        self.obs_registry = install_default_sources(
            MetricsRegistry(), serving=self.metrics.render_prometheus
        )
        self.obs_registry.register_source("batcher", self._render_batcher_metrics)
        self._server: asyncio.AbstractServer | None = None
        self._resident: OrderedDict[str, _ResidentModel] = OrderedDict()
        # Bare-name -> (dir mtime_ns, version): skips re-listing the
        # registry per request while still seeing new pushes (a push
        # creates a version dir, which bumps the name dir's mtime).
        self._latest: dict[str, tuple[int, int]] = {}
        self._active_requests = 0
        self._closing = False
        self._writers: set[asyncio.StreamWriter] = set()

    # ----------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._closing = False
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def stop(self, *, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: drain queued batches, finish in-flight work."""
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        for resident in list(self._resident.values()):
            await resident.batcher.drain()
        deadline = time.monotonic() + drain_timeout_s
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # graceful exit path
            pass

    # ------------------------------------------------------------- metrics
    def _render_batcher_metrics(self) -> str:
        """Backlog gauge and shed counter across resident models."""
        lines = [
            "# HELP repro_serve_batcher_backlog Rows queued in each "
            "resident model's micro-batcher, sampled at scrape time.",
            "# TYPE repro_serve_batcher_backlog gauge",
        ]
        shed = 0
        for key, resident in self._resident.items():
            lines.append(
                "repro_serve_batcher_backlog"
                f'{{model="{escape_label_value(key)}"}} '
                f"{resident.batcher.pending}"
            )
            shed += resident.batcher.stats.shed
        lines.append(
            "# HELP repro_serve_shed_total Rows rejected by admission "
            "control (always 0 until load shedding lands)."
        )
        lines.append("# TYPE repro_serve_shed_total counter")
        lines.append(f"repro_serve_shed_total {shed}")
        return "\n".join(lines)

    # ------------------------------------------------------------- models
    def _resident_model(self, ref: str) -> _ResidentModel:
        """Resolve a reference to a loaded model, LRU-caching residents."""
        name, version = self.registry.parse_ref(ref)
        if version is None:
            # A bare name floats with the registry: resolve the current
            # latest version, then hit the resident cache on its pin.
            version = self._latest_version(name)
        key = f"{name}@{version}"
        resident = self._resident.get(key)
        if resident is not None:
            self._resident.move_to_end(key)
            self.metrics.record_model_cache(hit=True)
            return resident
        self.metrics.record_model_cache(hit=False)
        artifact, manifest = self.registry.get(key)
        if manifest.artifact == "ensemble":
            predict_fn = artifact.predict_rows          # (means, stds)
        else:
            predict_fn = artifact.predict_rows          # (n,) array
        batcher = MicroBatcher(
            predict_fn,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            on_flush=lambda size, _reason: self.metrics.record_batch(size),
            on_phase=self.metrics.record_phase,
        )
        resident = _ResidentModel(artifact, manifest, batcher)
        self._resident[key] = resident
        while len(self._resident) > self.model_cache_size:
            _evicted_key, evicted = self._resident.popitem(last=False)
            evicted.batcher._flush("drain")  # resolve any queued rows
        return resident

    def _latest_version(self, name: str) -> int:
        """Latest version of ``name``, cached against the name dir's mtime."""
        try:
            mtime_ns = os.stat(self.registry.root / name).st_mtime_ns
        except OSError:
            self._latest.pop(name, None)
            return self.registry.resolve(name).version  # raises RegistryError
        cached = self._latest.get(name)
        if cached is not None and cached[0] == mtime_ns:
            return cached[1]
        version = self.registry.resolve(name).version
        self._latest[name] = (mtime_ns, version)
        return version

    # ------------------------------------------------------------ requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._active_requests += 1
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise
        if len(head) > _MAX_HEADER_BYTES:
            raise asyncio.LimitOverrunError("header section too large", 0)
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(head, None)
        method, target, _version = parts
        split = urlsplit(target)
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            key, _sep, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise asyncio.LimitOverrunError("body too large", 0)
        body = await reader.readexactly(length) if length else b""
        return _Request(
            method=method.upper(),
            path=split.path,
            query=parse_qs(split.query) if split.query else {},
            headers=headers,
            body=body,
        )

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        started = time.perf_counter()
        endpoint = request.path if request.path in _KNOWN_ENDPOINTS else "other"
        # Accept a client-supplied correlation id; mint one otherwise.  The
        # id is echoed in the response and stamped on the request span, so
        # a client, the trace, and the logs can all meet on one value.
        request_id = (
            request.headers.get("x-request-id", "").strip()
            or os.urandom(8).hex()
        )
        with get_tracer().span(
            "serve.request",
            endpoint=endpoint,
            method=request.method,
            request_id=request_id,
        ) as span:
            try:
                status, content_type, payload = await self._route(request)
            except _HTTPError as exc:
                status = exc.status
                content_type = "application/json"
                payload = json.dumps({"error": exc.message}).encode()
                self.metrics.record_error(exc.reason)
            except Exception as exc:  # noqa: BLE001 - report, don't kill the loop
                status = 500
                content_type = "application/json"
                payload = json.dumps({"error": f"internal error: {exc}"}).encode()
                self.metrics.record_error("internal")
            span.set(status=status)
            keep_alive = (
                request.headers.get("connection", "keep-alive").lower() != "close"
                and not self._closing
            )
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"X-Request-Id: {_header_safe(request_id)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                f"\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        self.metrics.record_request(
            endpoint, status, time.perf_counter() - started
        )
        return keep_alive

    async def _route(self, request: _Request) -> tuple[int, str, bytes]:
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            body = {"status": "ok", "models": len(self.registry.names())}
            return 200, "application/json", json.dumps(body).encode()
        if path == "/metrics":
            self._require(method, "GET")
            # The merged registry: serving + engine + fitting + batcher
            # backlog, one scrape (the serving source is this server's own
            # ServingMetrics).
            text = self.obs_registry.render()
            return 200, "text/plain; version=0.0.4", text.encode()
        if path == "/v1/models":
            self._require(method, "GET")
            body = {"models": [m.to_dict() for m in self.registry.list()]}
            return 200, "application/json", json.dumps(body).encode()
        if path == "/v1/predict":
            self._require(method, "POST")
            return await self._predict(request)
        raise _HTTPError(404, "not_found", f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(
                405, "method_not_allowed", f"use {expected} for this endpoint"
            )

    # ------------------------------------------------------------- predict
    async def _predict(self, request: _Request) -> tuple[int, str, bytes]:
        entered = time.perf_counter()
        try:
            body = json.loads(request.body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HTTPError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "bad_request", "body must be a JSON object")
        ref = body.get("model")
        if not isinstance(ref, str) or not ref:
            raise _HTTPError(
                400, "bad_request", "body needs a 'model' reference "
                "('name' or 'name@version')"
            )
        single = "features" in body
        if single == ("instances" in body):
            raise _HTTPError(
                400, "bad_request",
                "body needs exactly one of 'features' (single) or "
                "'instances' (batch)",
            )
        interval = bool(body.get("interval")) or (
            request.query.get("interval", ["0"])[0] not in ("", "0", "false")
        )
        try:
            resident = self._resident_model(ref)
        except RegistryError as exc:
            raise _HTTPError(404, "unknown_model", str(exc)) from None
        if interval and not resident.is_ensemble:
            raise _HTTPError(
                400, "bad_request",
                f"{resident.manifest.ref} is a point predictor; "
                f"intervals need an ensemble artifact",
            )
        instances = [body["features"]] if single else body["instances"]
        if not isinstance(instances, list) or not instances:
            raise _HTTPError(
                400, "bad_request", "'instances' must be a non-empty list"
            )
        rows = [self._feature_row(resident, inst) for inst in instances]
        # Phase breakdown: "queue" is everything before the batcher sees
        # the rows (parse, validate, model resolve); the batcher itself
        # records "batch_wait" and "predict"; "serialize" follows below.
        self.metrics.record_phase("queue", time.perf_counter() - entered)
        if len(rows) == 1:
            results = [await resident.batcher.submit(rows[0])]
        else:
            results = await asyncio.gather(
                *(resident.batcher.submit(row) for row in rows)
            )
        serialize_started = time.perf_counter()
        self.metrics.record_predictions(len(results))
        payload: dict = {"model": resident.manifest.ref}
        if resident.is_ensemble:
            means = [r[0] for r in results]
            stds = [r[1] for r in results]
            if single:
                payload["prediction"] = means[0]
                if interval:
                    payload["std"] = stds[0]
                    payload["interval"] = [
                        means[0] - 2.0 * stds[0], means[0] + 2.0 * stds[0]
                    ]
            else:
                payload["predictions"] = means
                if interval:
                    payload["stds"] = stds
                    payload["intervals"] = [
                        [m - 2.0 * s, m + 2.0 * s]
                        for m, s in zip(means, stds)
                    ]
        else:
            if single:
                payload["prediction"] = results[0]
            else:
                payload["predictions"] = list(results)
        encoded = json.dumps(payload, separators=(",", ":")).encode()
        self.metrics.record_phase(
            "serialize", time.perf_counter() - serialize_started
        )
        return 200, "application/json", encoded

    @staticmethod
    def _feature_row(resident: _ResidentModel, features) -> np.ndarray:
        if not isinstance(features, dict):
            raise _HTTPError(
                400, "bad_request",
                "each instance must be an object of feature name -> value",
            )
        names = resident.feature_names
        unknown = sorted(set(features) - resident.feature_name_set)
        if unknown:
            raise _HTTPError(
                400, "bad_request",
                f"unknown feature(s) {unknown}; model "
                f"{resident.manifest.ref} expects {list(names)}",
            )
        values = []
        for name in names:
            if name not in features:
                raise _HTTPError(
                    400, "bad_request",
                    f"missing feature {name!r}; model "
                    f"{resident.manifest.ref} expects {list(names)}",
                )
            value = features[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise _HTTPError(
                    400, "bad_request",
                    f"feature {name!r} must be a number; got {value!r}",
                )
            values.append(float(value))
        return np.array(values)


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _header_safe(value: str, max_len: int = 128) -> str:
    """A client-supplied value made safe to echo in a response header."""
    cleaned = "".join(c for c in value if 32 <= ord(c) < 127)
    return cleaned[:max_len] or "invalid"


class ServerThread:
    """Run a :class:`PredictionServer` on a background event loop.

    For synchronous callers — tests, the throughput bench — that need a
    live server next to blocking client code::

        with ServerThread(registry, max_batch=32) as handle:
            client = PredictionClient("127.0.0.1", handle.port)
            ...

    Exit performs the graceful ``stop()`` (drains batches) and joins the
    thread.
    """

    def __init__(self, registry: ModelRegistry, **server_kwargs) -> None:
        self.server = PredictionServer(registry, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        """Start the loop thread and wait until the server is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread is already running")
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - report to starter
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        started.wait(timeout=10.0)
        if failure:
            self._thread.join(timeout=1.0)
            self._thread = None
            raise failure[0]
        return self

    def stop(self) -> None:
        """Gracefully stop the server and join the loop thread."""
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        try:
            future.result(timeout=10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()
