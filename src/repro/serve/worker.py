"""Worker processes for the multi-process serving tier.

Each worker is a full :class:`~repro.serve.server.PredictionServer` in
its own process — its own event loop, resident-model LRU, micro-batchers,
and (when enabled) hot-reload poller — bound to an ephemeral loopback
port that it reports back to the parent over a pipe.  The router
(:mod:`repro.serve.router`) dispatches each request to the worker that
owns the model's shard.

Workers are spawned with the ``spawn`` start method: a clean interpreter
per worker, no inherited event loop or thread state, which keeps the
tier safe to start from threaded parents (pytest, the bench harness).
Because the child re-imports this module, everything the worker needs
travels as a picklable :class:`BackendSpec` + plain config dict.

**Drain protocol.**  A worker stops on any of three signals — a
``"stop"`` message on its control pipe, ``SIGTERM``, or the pipe
reaching EOF (the parent died) — and each triggers the same graceful
sequence: the listener closes, the hot-reload poller (if any) is stopped
*before* the batchers drain, queued rows flush, in-flight requests
finish, and the process exits 0.  In-flight requests are never dropped;
the integration tests pin that under concurrent load.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import signal
import threading

__all__ = ["BackendSpec", "WorkerProcess", "backend_spec_for", "open_backend"]

#: How long the parent waits for a spawned worker to report its port.
_READY_TIMEOUT_S = 60.0
#: How long a graceful stop may take before the parent escalates.
_STOP_TIMEOUT_S = 15.0


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """A picklable recipe for opening a registry backend in a worker.

    ``kind`` is ``"local"`` (``root`` names the registry directory) or
    ``"http"`` (``url``/``cache``/``token`` configure an
    :class:`~repro.registry.client.HttpBackend`).  Every worker opens its
    *own* backend instance from the spec, so per-worker hot-reload
    pollers and latest-version caches never share mutable state; HTTP
    workers share only the on-disk content-addressed cache, whose writes
    are atomic per process.
    """

    kind: str
    root: str | None = None
    url: str | None = None
    cache: str | None = None
    token: str | None = None


def backend_spec_for(backend) -> BackendSpec:
    """Derive the :class:`BackendSpec` that recreates ``backend``."""
    from ..registry.client import HttpBackend
    from ..registry.local import ModelRegistry

    if isinstance(backend, ModelRegistry):
        return BackendSpec(kind="local", root=str(backend.root))
    if isinstance(backend, HttpBackend):
        return BackendSpec(
            kind="http",
            url=backend.base_url,
            cache=str(backend.cache_dir),
            token=backend.token,
        )
    raise TypeError(
        f"cannot derive a worker backend spec from {type(backend).__name__}; "
        f"pass a ModelRegistry, an HttpBackend, or a BackendSpec"
    )


def open_backend(spec: BackendSpec):
    """Open a fresh backend instance from a spec (runs in the worker)."""
    if spec.kind == "local":
        from ..registry.local import ModelRegistry

        return ModelRegistry(spec.root)
    if spec.kind == "http":
        from ..registry.client import HttpBackend

        return HttpBackend(spec.url, spec.cache, token=spec.token)
    raise ValueError(f"unknown backend spec kind {spec.kind!r}")


async def _serve(spec: BackendSpec, config: dict, conn) -> None:
    """The worker's event loop body: serve until told to stop, drain, exit."""
    from .server import PredictionServer

    config = dict(config)
    trace_stream = config.pop("trace_stream", None)
    tracer = None
    if trace_stream:
        # Stream this worker's spans (serve.request, batcher waits,
        # predicts) to the tier's collector; resource attributes let the
        # export tell the workers apart.
        import os

        from ..obs.stream import SpanSender, StreamingTracer
        from ..obs.trace import set_tracer

        worker_id = config.get("worker_id")
        tracer = StreamingTracer(
            SpanSender(
                trace_stream,
                resource={
                    "service": f"serve-worker-{worker_id}",
                    "worker": worker_id,
                    "pid": os.getpid(),
                },
            )
        )
        set_tracer(tracer)
    server = PredictionServer(
        open_backend(spec), host="127.0.0.1", port=0, **config
    )
    await server.start()
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    loop.add_signal_handler(signal.SIGTERM, stopping.set)
    # The parent's SIGINT (^C at the CLI) reaches the whole process
    # group; the parent coordinates the drain, so workers ignore it and
    # wait for the pipe/SIGTERM.
    loop.add_signal_handler(signal.SIGINT, lambda: None)

    def watch_pipe() -> None:
        # Blocking reader thread: a "stop" message or EOF (parent died)
        # both end the worker gracefully.
        try:
            while True:
                message = conn.recv()
                if message == "stop":
                    break
        except (EOFError, OSError):
            pass
        loop.call_soon_threadsafe(stopping.set)

    watcher = threading.Thread(
        target=watch_pipe, name="repro-worker-control", daemon=True
    )
    watcher.start()
    conn.send(("ready", server.port))
    await stopping.wait()
    await server.stop()
    if tracer is not None:
        # Ship whatever the sender still holds before the process exits;
        # without this the last batch of spans dies with the worker.
        await asyncio.to_thread(tracer.close)
    try:
        conn.send(("stopped", server.metrics.request_count))
    except (BrokenPipeError, OSError):
        pass


def worker_main(spec: BackendSpec, config: dict, conn) -> None:
    """Entry point of a spawned worker process."""
    try:
        asyncio.run(_serve(spec, config, conn))
    except Exception as exc:  # noqa: BLE001 - report startup failures upward
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        raise SystemExit(1) from exc
    finally:
        conn.close()


class WorkerProcess:
    """Parent-side handle for one spawned serving worker.

    ``start()`` spawns the process and blocks until the worker reports
    the port it bound; ``stop()`` runs the graceful drain protocol
    (pipe message, then SIGTERM, then kill) and records the exit code.
    """

    def __init__(self, index: int, spec: BackendSpec, config: dict) -> None:
        self.index = index
        self.spec = spec
        self.config = dict(config)
        self.port: int | None = None
        self.exitcode: int | None = None
        #: HTTP requests the worker reported handling when it stopped
        #: (the integration tests balance this against client successes).
        self.final_request_count: int | None = None
        self._process: multiprocessing.process.BaseProcess | None = None
        self._conn = None

    def start(self) -> "WorkerProcess":
        """Spawn the worker and wait for its ``("ready", port)`` report."""
        if self._process is not None:
            raise RuntimeError(f"worker {self.index} is already running")
        ctx = multiprocessing.get_context("spawn")
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=worker_main,
            args=(self.spec, self.config, child_conn),
            name=f"repro-serve-worker-{self.index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        if not self._conn.poll(_READY_TIMEOUT_S):
            self.terminate()
            raise RuntimeError(
                f"worker {self.index} did not report ready within "
                f"{_READY_TIMEOUT_S:.0f}s"
            )
        kind, value = self._conn.recv()
        if kind != "ready":
            self.terminate()
            raise RuntimeError(f"worker {self.index} failed to start: {value}")
        self.port = int(value)
        return self

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def stop(self, timeout_s: float = _STOP_TIMEOUT_S) -> int | None:
        """Graceful drain: pipe message -> SIGTERM -> kill; returns exit code."""
        process = self._process
        if process is None:
            return self.exitcode
        try:
            self._conn.send("stop")
        except (BrokenPipeError, OSError):
            pass
        process.join(timeout=timeout_s)
        if process.is_alive():
            process.terminate()  # SIGTERM: the worker drains on this too
            process.join(timeout=timeout_s)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        try:
            while self._conn.poll(0):
                message = self._conn.recv()
                if (
                    isinstance(message, tuple)
                    and len(message) == 2
                    and message[0] == "stopped"
                ):
                    self.final_request_count = int(message[1])
        except (EOFError, OSError):
            pass
        self.exitcode = process.exitcode
        self._conn.close()
        self._process = None
        return self.exitcode

    def terminate(self) -> None:
        """Hard stop (startup failures only; skips the drain protocol)."""
        process = self._process
        if process is None:
            return
        process.kill()
        process.join(timeout=5.0)
        self.exitcode = process.exitcode
        self._conn.close()
        self._process = None
