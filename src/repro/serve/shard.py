"""Consistent model-to-worker sharding for the serving tier.

The router (:mod:`repro.serve.router`) keeps each model name resident on
exactly one worker process, so every version of a name shares one
micro-batcher and one artifact cache — canary and shadow versions of the
same name always land on the same worker and batch together.

The assignment uses rendezvous (highest-random-weight) hashing over the
SHA-256 of ``"{name}|{worker}"``:

* **Deterministic across processes.**  Any router (or test) computes the
  identical assignment from ``(name, n_workers)`` alone — no shared
  state, no coordination.
* **Minimal movement.**  Growing the tier from ``n`` to ``n + 1`` workers
  reassigns only the names whose new worker wins the rendezvous —
  about ``1/(n + 1)`` of them — instead of reshuffling everything the
  way ``hash(name) % n`` would.
* **Version-agnostic.**  Hashing the bare *name* (never ``name@version``)
  pins all versions of a model to one shard.
"""

from __future__ import annotations

import hashlib

__all__ = ["ShardMap", "shard_for"]


def _weight(name: str, worker: int) -> bytes:
    """The rendezvous weight of ``worker`` for ``name`` (big-endian cmp)."""
    return hashlib.sha256(f"{name}|{worker}".encode()).digest()


def shard_for(name: str, n_workers: int) -> int:
    """The worker index owning model ``name`` in an ``n_workers`` tier."""
    if n_workers < 1:
        raise ValueError(f"a tier needs at least 1 worker; got {n_workers}")
    if n_workers == 1:
        return 0
    return max(range(n_workers), key=lambda worker: _weight(name, worker))


class ShardMap:
    """Memoized name -> worker assignment for one tier size.

    The router resolves the shard on every request; the memo keeps that
    at one dict hit per request after a name's first appearance.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(
                f"a tier needs at least 1 worker; got {n_workers}"
            )
        self.n_workers = n_workers
        self._assignment: dict[str, int] = {}

    def worker_for(self, name: str) -> int:
        """The worker index owning model ``name``."""
        worker = self._assignment.get(name)
        if worker is None:
            worker = self._assignment[name] = shard_for(name, self.n_workers)
        return worker

    def assignment(self, names: list[str]) -> dict[str, int]:
        """The full name -> worker map for a set of names."""
        return {name: self.worker_for(name) for name in names}

    def names_on(self, worker: int, names: list[str]) -> list[str]:
        """The subset of ``names`` assigned to ``worker``, sorted."""
        return sorted(n for n in names if self.worker_for(n) == worker)
