"""Shared asyncio HTTP/1.1 plumbing for the repro services.

A deliberately small HTTP implementation on ``asyncio`` streams — no
third-party web framework, matching the repo's stdlib+numpy/scipy
dependency budget.  :class:`HttpServerBase` carries everything that is
identical between the prediction server (:mod:`repro.serve.server`) and
the registry artifact server (:mod:`repro.registry.server`):

* connection handling with keep-alive and bounded header/body sizes;
* request parsing into :class:`Request`;
* dispatch with ``X-Request-Id`` echo/minting, a ``serve.request``-style
  trace span per request, and error mapping (:class:`HTTPError` ->
  status + JSON body, unexpected exceptions -> 500 without killing the
  loop);
* graceful ``stop()``: the listener closes, a subclass drain hook runs,
  in-flight requests finish, then connections are torn down.

Subclasses implement ``_route`` (returning ``(status, content_type,
payload)`` or ``(status, content_type, payload, extra_headers)``) and
may override the ``_record_request``/``_record_error`` hooks to feed
their metrics.  :class:`ServerThreadBase` runs any such server on a
background event loop for synchronous callers (tests, benches, the CLI).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from ..obs.trace import NullTracer, get_tracer

#: Shared disabled tracer for servers that opt out of request spans.
_NULL_TRACER = NullTracer()

__all__ = [
    "HTTPError",
    "HttpServerBase",
    "Request",
    "ServerThreadBase",
    "header_safe",
]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """Maps a handler failure to (status, reason, message[, headers])."""

    def __init__(
        self,
        status: int,
        reason: str,
        message: str,
        *,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes


def header_safe(value: str, max_len: int = 128) -> str:
    """A client-supplied value made safe to echo in a response header."""
    cleaned = "".join(c for c in value if 32 <= ord(c) < 127)
    return cleaned[:max_len] or "invalid"


class HttpServerBase:
    """Lifecycle + request plumbing shared by the repro HTTP services."""

    #: Endpoints that get their own metrics label; anything else is
    #: "other" so a scanner cannot blow up label cardinality.
    known_endpoints: tuple[str, ...] = ()

    #: Name of the per-request trace span.
    request_span_name = "serve.request"

    #: Whether requests get a trace span.  The span collector turns this
    #: off: tracing its own ingest requests while the host process
    #: streams spans to it would feed the collector forever.
    trace_requests = True

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._active_requests = 0
        self._closing = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()

    # ----------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._closing = False
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        await self._on_start()

    async def stop(self, *, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: drain queued work, finish in-flight requests."""
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        await self._drain()
        deadline = time.monotonic() + drain_timeout_s
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        # Reap the per-connection tasks before returning: the caller may
        # stop the event loop right after stop(), and a handler still
        # suspended at an await would then be garbage-collected mid-frame
        # ("coroutine ignored GeneratorExit" unraisables).  Closed writers
        # end the handlers promptly; anything still stuck gets cancelled.
        tasks = [task for task in self._conn_tasks if not task.done()]
        if tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*tasks, return_exceptions=True),
                    timeout=drain_timeout_s,
                )
            except asyncio.TimeoutError:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
        self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # graceful exit path
            pass

    # ------------------------------------------------------------ hooks
    async def _on_start(self) -> None:
        """Subclass hook run after the listener binds."""

    async def _drain(self) -> None:
        """Subclass hook: flush queued work before connections close."""

    def _record_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Subclass hook: one handled request and its wall latency."""

    def _record_error(self, reason: str) -> None:
        """Subclass hook: one failed request by reason."""

    async def _route(self, request: Request):
        """Subclass hook: ``(status, content_type, payload[, headers])``."""
        raise NotImplementedError

    def _endpoint_label(self, path: str) -> str:
        """Metrics label for one request path.

        Anything outside ``known_endpoints`` is "other" so a scanner
        cannot blow up label cardinality; services with dynamic paths
        (the registry's ``/v1/models/{ref}``) override this to bucket
        them.
        """
        return path if path in self.known_endpoints else "other"

    # ------------------------------------------------------------ requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._active_requests += 1
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)

    async def _read_request(self, reader: asyncio.StreamReader) -> Request | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise
        if len(head) > _MAX_HEADER_BYTES:
            raise asyncio.LimitOverrunError("header section too large", 0)
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(head, None)
        method, target, _version = parts
        split = urlsplit(target)
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            key, _sep, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise asyncio.LimitOverrunError("body too large", 0)
        body = await reader.readexactly(length) if length else b""
        return Request(
            method=method.upper(),
            path=split.path,
            query=parse_qs(split.query) if split.query else {},
            headers=headers,
            body=body,
        )

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        started = time.perf_counter()
        endpoint = self._endpoint_label(request.path)
        # Accept a client-supplied correlation id; mint one otherwise.  The
        # id is echoed in the response and stamped on the request span, so
        # a client, the trace, and the logs can all meet on one value.
        request_id = (
            request.headers.get("x-request-id", "").strip()
            or os.urandom(8).hex()
        )
        # Stamp the effective id back onto the request so handlers that
        # proxy the call (the router) can forward it: the router span and
        # the worker span then share one correlation id across the hop.
        request.headers["x-request-id"] = request_id
        tracer = get_tracer() if self.trace_requests else _NULL_TRACER
        # A client that is itself inside a span propagates its context as
        # "X-Trace-Context: <trace_id>/<span_id>"; the request span here
        # then joins that trace as a child, so one trace covers the
        # router -> worker hop (and scheduler -> tier) end to end.
        context = request.headers.get("x-trace-context", "")
        if context and tracer.enabled:
            remote_trace, _sep, remote_parent = context.partition("/")
            span_cm = tracer.child_span(
                self.request_span_name,
                trace_id=remote_trace.strip(),
                parent_id=remote_parent.strip() or None,
                endpoint=endpoint,
                method=request.method,
                request_id=request_id,
            )
        else:
            span_cm = tracer.span(
                self.request_span_name,
                endpoint=endpoint,
                method=request.method,
                request_id=request_id,
            )
        with span_cm as span:
            extra_headers: dict[str, str] = {}
            try:
                routed = await self._route(request)
                if len(routed) == 4:
                    status, content_type, payload, extra_headers = routed
                else:
                    status, content_type, payload = routed
            except HTTPError as exc:
                status = exc.status
                content_type = "application/json"
                payload = json.dumps({"error": exc.message}).encode()
                extra_headers = exc.headers
                self._record_error(exc.reason)
            except Exception as exc:  # noqa: BLE001 - report, don't kill the loop
                status = 500
                content_type = "application/json"
                payload = json.dumps({"error": f"internal error: {exc}"}).encode()
                self._record_error("internal")
            span.set(status=status)
        # The span closes *before* the response bytes go out: a client
        # that has read the response can rely on the request span (and
        # the metrics below) being recorded.
        keep_alive = (
            request.headers.get("connection", "keep-alive").lower() != "close"
            and not self._closing
        )
        header_lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"X-Request-Id: {header_safe(request_id)}",
        ]
        header_lines.extend(
            f"{name}: {header_safe(str(value))}"
            for name, value in extra_headers.items()
        )
        header_lines.append(
            f"Connection: {'keep-alive' if keep_alive else 'close'}"
        )
        self._record_request(endpoint, status, time.perf_counter() - started)
        head = "\r\n".join(header_lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        return keep_alive

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HTTPError(
                405, "method_not_allowed", f"use {expected} for this endpoint"
            )


class ServerThreadBase:
    """Run an :class:`HttpServerBase` on a background event loop.

    For synchronous callers — tests, benches, blocking clients — that
    need a live server next to blocking code.  Exit performs the graceful
    ``stop()`` (drains queued work) and joins the thread.
    """

    #: Thread name, overridden per service for debuggability.
    thread_name = "repro-http"

    def __init__(self, server: HttpServerBase) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThreadBase":
        """Start the loop thread and wait until the server is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread is already running")
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - report to starter
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name=self.thread_name, daemon=True
        )
        self._thread.start()
        started.wait(timeout=10.0)
        if failure:
            self._thread.join(timeout=1.0)
            self._thread = None
            raise failure[0]
        return self

    def stop(self) -> None:
        """Gracefully stop the server and join the loop thread."""
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        try:
            future.result(timeout=10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ServerThreadBase":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()
