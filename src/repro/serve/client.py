"""Blocking HTTP client for the prediction service.

Used by the test suite and the closed-loop load generator
(``benchmarks/bench_serve_throughput.py``); a resource manager embedding
the models in-process should call
:meth:`~repro.core.methodology.PerformancePredictor.predict_time`
directly instead.  Built on :mod:`http.client` with a persistent
keep-alive connection per client instance, so each worker thread owns one
client and one TCP connection — the standard closed-loop load-generator
shape.

:meth:`PredictionClient.metrics` parses the Prometheus text exposition
with a real label-aware parser (:func:`parse_prometheus`): label values
may contain commas, ``=``, and escaped quotes, so the historical
"split on last space" shortcut mis-keyed such samples.  Keys are
canonical — labels sorted by name, values re-escaped — which matches the
order the server renders, so existing lookups keep working.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any

from ..obs.trace import current_span

__all__ = ["ClientError", "PredictionClient", "parse_prometheus"]

_ESCAPES = {"n": "\n", "\\": "\\", '"': '"'}


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _parse_sample(line: str) -> tuple[str, dict[str, str], float] | None:
    """One exposition sample line -> (name, labels, value), or ``None``."""
    brace = line.find("{")
    if brace == -1:
        name, _sep, rest = line.partition(" ")
        fields = rest.split()
        if not name or not fields:
            return None
        try:
            return name, {}, float(fields[0])
        except ValueError:
            return None
    name = line[:brace]
    labels: dict[str, str] = {}
    i = brace + 1
    try:
        while line[i] != "}":
            eq = line.index("=", i)
            key = line[i:eq].strip().lstrip(",").strip()
            i = eq + 1
            while line[i] == " ":
                i += 1
            if line[i] != '"':
                return None
            i += 1
            value_chars: list[str] = []
            while line[i] != '"':
                if line[i] == "\\":
                    i += 1
                    value_chars.append(_ESCAPES.get(line[i], line[i]))
                else:
                    value_chars.append(line[i])
                i += 1
            i += 1  # past the closing quote
            labels[key] = "".join(value_chars)
            while line[i] == " ":
                i += 1
            if line[i] == ",":
                i += 1
        fields = line[i + 1 :].split()
        if not name or not fields:
            return None
        return name, labels, float(fields[0])
    except (IndexError, ValueError):
        return None


def parse_prometheus(text: str) -> dict[str, float]:
    """Exposition text -> ``{'name{labels}': value}`` with canonical keys.

    Labels are sorted by name and values re-escaped, so a sample's key is
    identical however the server happened to order or escape it.  Comment
    and malformed lines are skipped.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parsed = _parse_sample(line)
        if parsed is None:
            continue
        name, labels, value = parsed
        if labels:
            body = ",".join(
                f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
            )
            samples[name + "{" + body + "}"] = value
        else:
            samples[name] = value
    return samples


class ClientError(RuntimeError):
    """Raised when the server answers with a non-2xx status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class PredictionClient:
    """One keep-alive connection to a :class:`~repro.serve.server.PredictionServer`.

    Not thread-safe: give each worker thread its own instance.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: ``X-Request-Id`` echoed by the server on the last call (the
        #: client-sent id when one was passed, a server-minted one else).
        self.last_request_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------ plumbing
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Small keep-alive POSTs must not sit in Nagle's buffer.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        payload = json.dumps(body).encode() if body is not None else None
        send_headers = {"Content-Type": "application/json"} if payload else {}
        if headers:
            send_headers.update(headers)
        # When the caller is inside a span (the scheduler's sched.predict,
        # a traced harness), propagate its context so the server-side
        # request span joins the caller's trace across the process hop.
        span = current_span()
        if span is not None and span.trace_id:
            send_headers.setdefault(
                "X-Trace-Context", f"{span.trace_id}/{span.span_id}"
            )
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                response = conn.getresponse()
                response_headers = {
                    k.lower(): v for k, v in response.getheaders()
                }
                return response.status, response.read(), response_headers
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # Stale keep-alive connection; reconnect once.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> Any:
        status, raw, response_headers = self._request(
            method, path, body, headers
        )
        self.last_request_id = response_headers.get("x-request-id")
        try:
            data = json.loads(raw.decode() or "null")
        except json.JSONDecodeError:
            data = None
        if status >= 400:
            message = (
                data.get("error", raw.decode(errors="replace"))
                if isinstance(data, dict)
                else raw.decode(errors="replace")
            )
            raise ClientError(status, message)
        return data

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> dict:
        """Liveness check: the parsed ``/healthz`` body."""
        return self._json("GET", "/healthz")

    def models(self) -> list[dict]:
        """Every registered manifest, as dicts."""
        return self._json("GET", "/v1/models")["models"]

    def predict(
        self,
        features: dict,
        *,
        model: str,
        interval: bool = False,
        request_id: str | None = None,
    ) -> dict:
        """Predict one placement; returns the full response payload.

        ``features`` maps Table I feature names (the model's feature set)
        to values.  With ``interval=True`` (ensemble models only) the
        payload also carries ``std`` and ``interval``.  ``request_id`` is
        sent as ``X-Request-Id`` and echoed back by the server (also
        stamped on its ``serve.request`` trace span); the echoed value is
        kept in :attr:`last_request_id`.
        """
        path = "/v1/predict" + ("?interval=1" if interval else "")
        headers = {"X-Request-Id": request_id} if request_id else None
        return self._json(
            "POST", path, {"model": model, "features": features}, headers
        )

    def predict_batch(
        self,
        instances: list[dict],
        *,
        model: str,
        interval: bool = False,
        request_id: str | None = None,
    ) -> dict:
        """Predict many placements in one request body."""
        path = "/v1/predict" + ("?interval=1" if interval else "")
        headers = {"X-Request-Id": request_id} if request_id else None
        return self._json(
            "POST", path, {"model": model, "instances": instances}, headers
        )

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, raw, _headers = self._request("GET", "/metrics")
        if status >= 400:
            raise ClientError(status, raw.decode(errors="replace"))
        return raw.decode()

    def metrics(self) -> dict[str, float]:
        """Parsed ``/metrics`` samples: ``{'name{labels}': value}``.

        Keys are canonical (labels sorted, values escaped); see
        :func:`parse_prometheus`.
        """
        return parse_prometheus(self.metrics_text())
