"""Blocking HTTP client for the prediction service.

Used by the test suite and the closed-loop load generator
(``benchmarks/bench_serve_throughput.py``); a resource manager embedding
the models in-process should call
:meth:`~repro.core.methodology.PerformancePredictor.predict_time`
directly instead.  Built on :mod:`http.client` with a persistent
keep-alive connection per client instance, so each worker thread owns one
client and one TCP connection — the standard closed-loop load-generator
shape.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any

__all__ = ["ClientError", "PredictionClient"]


class ClientError(RuntimeError):
    """Raised when the server answers with a non-2xx status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class PredictionClient:
    """One keep-alive connection to a :class:`~repro.serve.server.PredictionServer`.

    Not thread-safe: give each worker thread its own instance.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------ plumbing
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Small keep-alive POSTs must not sit in Nagle's buffer.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # Stale keep-alive connection; reconnect once.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(self, method: str, path: str, body: dict | None = None) -> Any:
        status, raw = self._request(method, path, body)
        try:
            data = json.loads(raw.decode() or "null")
        except json.JSONDecodeError:
            data = None
        if status >= 400:
            message = (
                data.get("error", raw.decode(errors="replace"))
                if isinstance(data, dict)
                else raw.decode(errors="replace")
            )
            raise ClientError(status, message)
        return data

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> dict:
        """Liveness check: the parsed ``/healthz`` body."""
        return self._json("GET", "/healthz")

    def models(self) -> list[dict]:
        """Every registered manifest, as dicts."""
        return self._json("GET", "/v1/models")["models"]

    def predict(
        self, features: dict, *, model: str, interval: bool = False
    ) -> dict:
        """Predict one placement; returns the full response payload.

        ``features`` maps Table I feature names (the model's feature set)
        to values.  With ``interval=True`` (ensemble models only) the
        payload also carries ``std`` and ``interval``.
        """
        path = "/v1/predict" + ("?interval=1" if interval else "")
        return self._json(
            "POST", path, {"model": model, "features": features}
        )

    def predict_batch(
        self, instances: list[dict], *, model: str, interval: bool = False
    ) -> dict:
        """Predict many placements in one request body."""
        path = "/v1/predict" + ("?interval=1" if interval else "")
        return self._json(
            "POST", path, {"model": model, "instances": instances}
        )

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, raw = self._request("GET", "/metrics")
        if status >= 400:
            raise ClientError(status, raw.decode(errors="replace"))
        return raw.decode()

    def metrics(self) -> dict[str, float]:
        """Parsed ``/metrics`` samples: ``{'name{labels}': value}``."""
        samples: dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if not line or line.startswith("#"):
                continue
            key, _sep, value = line.rpartition(" ")
            try:
                samples[key] = float(value)
            except ValueError:
                continue
        return samples
