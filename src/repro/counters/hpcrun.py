"""HPCToolkit ``hpcrun-flat`` profiler analog.

The paper collects counter data by running each application once under
HPCToolkit's flat profiler (Section IV-A2), which samples PAPI counters
with very low overhead and emits one profile per run.  This module
reproduces that workflow against the simulator: run an application (solo or
co-located), read the configured PAPI presets, and package everything into
a :class:`FlatProfile` record with the derived metrics the methodology
needs (memory intensity, CM/CA, CA/INS).

Profiles are plain serializable records; :func:`profile_to_dict` /
:func:`profile_from_dict` support persistence in the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.pstates import PState
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec
from .papi import EventSet, HardwareCounters, PresetEvent

__all__ = [
    "DEFAULT_EVENTS",
    "FlatProfile",
    "flat_profile_from_run",
    "hpcrun_flat",
    "profile_from_dict",
    "profile_to_dict",
]

#: The three counters the paper's testing environment records
#: (Section IV-A3): instructions (NI), LLC accesses (TCA), LLC misses (TCM).
DEFAULT_EVENTS: tuple[PresetEvent, ...] = (
    PresetEvent.PAPI_TOT_INS,
    PresetEvent.PAPI_L3_TCA,
    PresetEvent.PAPI_L3_TCM,
)


@dataclass(frozen=True)
class FlatProfile:
    """One flat-profiler output: wall time plus final counter totals."""

    app_name: str
    processor_name: str
    frequency_ghz: float
    wall_time_s: float
    counts: dict[str, float] = field(default_factory=dict)

    @property
    def instructions(self) -> float:
        """PAPI_TOT_INS total."""
        return self.counts[PresetEvent.PAPI_TOT_INS.value]

    @property
    def llc_accesses(self) -> float:
        """Last-level total cache accesses (TCA)."""
        return self.counts[PresetEvent.PAPI_L3_TCA.value]

    @property
    def llc_misses(self) -> float:
        """Last-level total cache misses (TCM)."""
        return self.counts[PresetEvent.PAPI_L3_TCM.value]

    @property
    def memory_intensity(self) -> float:
        """LLC misses per instruction (the paper's memory intensity)."""
        return self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def cm_per_ca(self) -> float:
        """LLC misses per LLC access (Table I's CM/CA)."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def ca_per_ins(self) -> float:
        """LLC accesses per instruction (Table I's CA/INS)."""
        return self.llc_accesses / self.instructions if self.instructions else 0.0


def hpcrun_flat(
    engine: SimulationEngine,
    app: ApplicationSpec,
    *,
    co_runners: list[ApplicationSpec] | tuple[ApplicationSpec, ...] = (),
    pstate: PState | None = None,
    events: tuple[PresetEvent, ...] = DEFAULT_EVENTS,
    rng: np.random.Generator | None = None,
) -> FlatProfile:
    """Profile one application run, the way ``hpcrun-flat`` would.

    Runs ``app`` on ``engine`` (optionally co-located — the paper profiles
    baselines solo, but the harness also verifies that counters behave
    under co-location), wraps the run in the PAPI adapter, and reads the
    requested presets through a properly started/stopped event set.
    """
    run = engine.run(app, co_runners, pstate=pstate, rng=rng)
    return flat_profile_from_run(app, run, events=events)


def flat_profile_from_run(
    app: ApplicationSpec,
    run,
    *,
    events: tuple[PresetEvent, ...] = DEFAULT_EVENTS,
) -> FlatProfile:
    """Wrap an already-simulated :class:`~repro.sim.engine.ColocationRun`.

    The counter-reading half of :func:`hpcrun_flat`, split out so callers
    that simulate runs in bulk (the batched baseline collector) can profile
    them without re-entering the engine.
    """
    hardware = HardwareCounters(run.target, frequency_ghz=run.frequency_ghz)
    event_set = EventSet(hardware)
    for event in events:
        event_set.add_event(event)
    event_set.start()
    counts = event_set.stop()
    return FlatProfile(
        app_name=app.name,
        processor_name=run.processor_name,
        frequency_ghz=run.frequency_ghz,
        wall_time_s=run.target.execution_time_s,
        counts={e.value: v for e, v in counts.items()},
    )


def profile_to_dict(profile: FlatProfile) -> dict:
    """Serialize a profile to a plain dict (JSON/CSV friendly)."""
    return {
        "app_name": profile.app_name,
        "processor_name": profile.processor_name,
        "frequency_ghz": profile.frequency_ghz,
        "wall_time_s": profile.wall_time_s,
        "counts": dict(profile.counts),
    }


def profile_from_dict(data: dict) -> FlatProfile:
    """Inverse of :func:`profile_to_dict`."""
    return FlatProfile(
        app_name=str(data["app_name"]),
        processor_name=str(data["processor_name"]),
        frequency_ghz=float(data["frequency_ghz"]),
        wall_time_s=float(data["wall_time_s"]),
        counts={str(k): float(v) for k, v in data["counts"].items()},
    )
