"""Interval-sampled counter collection.

Section IV-A3: "when collecting test results ... the values measured in
these performance counters suffer a loss of temporal information, so they
can only represent an average value across time."  The paper's pipeline
deliberately uses the averaged totals; this module provides the thing that
is *lost* — a time series of counter deltas sampled at a fixed interval —
so the claim that averages suffice can be examined rather than assumed
(see ``examples/phase_analysis.py`` and the sampling tests).

Sampling is exact, not statistical: within each execution phase the
simulator's rates are constant, so per-interval deltas are integrals of
piecewise-constant rate functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.pstates import PState
from ..sim.engine import SimulationEngine
from ..workloads.app import ApplicationSpec, PhasedApplication

__all__ = ["CounterSample", "SampledProfile", "hpcrun_sampled"]


@dataclass(frozen=True)
class CounterSample:
    """Counter deltas over one sampling interval."""

    start_s: float
    duration_s: float
    instructions: float
    llc_accesses: float
    llc_misses: float

    @property
    def memory_intensity(self) -> float:
        """Misses per instruction within this interval."""
        return self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def ips(self) -> float:
        """Instructions per second within this interval."""
        return self.instructions / self.duration_s if self.duration_s else 0.0


@dataclass(frozen=True)
class SampledProfile:
    """A full sampled run: ordered intervals plus identity metadata."""

    app_name: str
    processor_name: str
    frequency_ghz: float
    samples: tuple[CounterSample, ...]

    @property
    def wall_time_s(self) -> float:
        """Total sampled execution time."""
        return sum(s.duration_s for s in self.samples)

    def totals(self) -> tuple[float, float, float]:
        """(instructions, accesses, misses) summed over all samples.

        By construction these equal the averaged counters the flat
        profiler reports — sampling only redistributes them over time.
        """
        ins = sum(s.instructions for s in self.samples)
        acc = sum(s.llc_accesses for s in self.samples)
        mis = sum(s.llc_misses for s in self.samples)
        return ins, acc, mis

    def intensity_series(self) -> np.ndarray:
        """Per-interval memory intensity — the phase structure, visible."""
        return np.array([s.memory_intensity for s in self.samples])


def _phase_rate_segments(
    engine: SimulationEngine,
    app: ApplicationSpec | PhasedApplication,
    pstate: PState,
) -> list[tuple[float, float, float, float]]:
    """Per-phase ``(duration, ins_rate, acc_rate, miss_rate)`` segments."""
    if isinstance(app, PhasedApplication):
        specs = app.phase_specs()
    else:
        specs = (app,)
    segments = []
    for spec in specs:
        run = engine.baseline(spec, pstate=pstate).target
        duration = run.execution_time_s
        segments.append(
            (
                duration,
                run.instructions / duration,
                run.llc_accesses / duration,
                run.llc_misses / duration,
            )
        )
    return segments


def hpcrun_sampled(
    engine: SimulationEngine,
    app: ApplicationSpec | PhasedApplication,
    *,
    pstate: PState | None = None,
    interval_s: float = 1.0,
) -> SampledProfile:
    """Profile a solo run with interval sampling.

    Phase boundaries falling inside an interval are handled exactly: the
    interval's deltas integrate across the boundary.
    """
    if interval_s <= 0.0:
        raise ValueError("sampling interval must be positive")
    if pstate is None:
        pstate = engine.processor.pstates.fastest
    segments = _phase_rate_segments(engine, app, pstate)
    total_time = sum(d for d, *_ in segments)

    samples: list[CounterSample] = []
    now = 0.0
    seg_idx = 0
    seg_remaining = segments[0][0]
    while now < total_time - 1e-12:
        end = min(now + interval_s, total_time)
        ins = acc = mis = 0.0
        t = now
        while t < end - 1e-12:
            duration, ins_rate, acc_rate, miss_rate = segments[seg_idx]
            step = min(end - t, seg_remaining)
            ins += ins_rate * step
            acc += acc_rate * step
            mis += miss_rate * step
            t += step
            seg_remaining -= step
            if seg_remaining <= 1e-12 and seg_idx + 1 < len(segments):
                seg_idx += 1
                seg_remaining = segments[seg_idx][0]
        samples.append(
            CounterSample(
                start_s=now,
                duration_s=end - now,
                instructions=ins,
                llc_accesses=acc,
                llc_misses=mis,
            )
        )
        now = end
    name = app.name
    return SampledProfile(
        app_name=name,
        processor_name=engine.processor.name,
        frequency_ghz=pstate.frequency_ghz,
        samples=tuple(samples),
    )
