"""PAPI-style performance counter interface over the simulator.

The paper's testing environment reads hardware performance counters through
PAPI's portable "preset" events (Section IV-A2).  This module reproduces
that interface: preset event names, an :class:`EventSet` with PAPI's
create/add/start/stop/read life cycle, and an architecture adapter that
resolves presets against a simulated machine.

The point of mirroring the API (rather than just exposing the simulator's
result fields) is that everything above this layer — feature extraction,
model training — consumes *only* counter reads and wall-clock times, exactly
as it would on real hardware.  Porting the methodology to a physical machine
means swapping this module's backend and nothing else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..sim.engine import AppRun

__all__ = ["PAPIError", "PresetEvent", "HardwareCounters", "EventSet"]


class PAPIError(RuntimeError):
    """Raised on PAPI usage errors (bad state, unavailable preset)."""


class PresetEvent(enum.Enum):
    """PAPI preset events supported by the simulated architectures.

    Only the presets the methodology needs are implemented (the paper uses
    total instructions, last-level cache accesses, and last-level cache
    misses); unknown presets raise :class:`PAPIError` at ``add_event`` time
    just as PAPI rejects presets a machine cannot count.
    """

    PAPI_TOT_INS = "PAPI_TOT_INS"  # total instructions completed
    PAPI_TOT_CYC = "PAPI_TOT_CYC"  # total core cycles
    PAPI_L2_TCA = "PAPI_L2_TCA"    # L2 total cache accesses
    PAPI_L2_TCM = "PAPI_L2_TCM"    # L2 total cache misses
    PAPI_L3_TCA = "PAPI_L3_TCA"    # L3 total cache accesses
    PAPI_L3_TCM = "PAPI_L3_TCM"    # L3 total cache misses


@dataclass(frozen=True)
class HardwareCounters:
    """Architecture adapter: resolves presets for one simulated run.

    ``llc_level`` is the machine's last-level cache level; the paper notes
    "last-level" can mean L2 or L3 depending on the processor
    (Section IV-A3).  Presets for the other cache level are unavailable,
    mirroring real preset tables differing across microarchitectures.
    """

    run: AppRun
    frequency_ghz: float
    llc_level: int = 3

    def __post_init__(self) -> None:
        if self.llc_level not in (2, 3):
            raise PAPIError(f"unsupported last-level cache level {self.llc_level}")

    def available(self, event: PresetEvent) -> bool:
        """Whether this architecture can count the preset."""
        if event in (PresetEvent.PAPI_TOT_INS, PresetEvent.PAPI_TOT_CYC):
            return True
        level = 2 if event in (PresetEvent.PAPI_L2_TCA, PresetEvent.PAPI_L2_TCM) else 3
        return level == self.llc_level

    def read(self, event: PresetEvent) -> float:
        """Final counter value for one preset over the whole run."""
        if not self.available(event):
            raise PAPIError(
                f"{event.value} is not available on an architecture whose "
                f"last-level cache is L{self.llc_level}"
            )
        if event is PresetEvent.PAPI_TOT_INS:
            return self.run.instructions
        if event is PresetEvent.PAPI_TOT_CYC:
            return self.run.execution_time_s * self.frequency_ghz * 1e9
        if event in (PresetEvent.PAPI_L2_TCA, PresetEvent.PAPI_L3_TCA):
            return self.run.llc_accesses
        return self.run.llc_misses


class EventSet:
    """A PAPI event set with the standard life cycle.

    >>> es = EventSet(hardware)
    >>> es.add_event(PresetEvent.PAPI_TOT_INS)
    >>> es.start(); counts = es.stop()

    State rules follow PAPI: events can only be added while stopped, reads
    are only valid while running or after a stop, and double start/stop is
    an error.
    """

    def __init__(self, hardware: HardwareCounters) -> None:
        self._hardware = hardware
        self._events: list[PresetEvent] = []
        self._running = False
        self._last_counts: dict[PresetEvent, float] | None = None

    @property
    def events(self) -> tuple[PresetEvent, ...]:
        """Events currently in the set, in insertion order."""
        return tuple(self._events)

    def add_event(self, event: PresetEvent) -> None:
        """Add one preset to the set (must be stopped; duplicates rejected)."""
        if self._running:
            raise PAPIError("cannot add events while the event set is running")
        if event in self._events:
            raise PAPIError(f"{event.value} already in event set")
        if not self._hardware.available(event):
            raise PAPIError(f"{event.value} not available on this architecture")
        self._events.append(event)

    def start(self) -> None:
        """Begin counting (PAPI_start)."""
        if self._running:
            raise PAPIError("event set already running")
        if not self._events:
            raise PAPIError("cannot start an empty event set")
        self._running = True
        self._last_counts = None

    def read(self) -> dict[PresetEvent, float]:
        """Read counters while running (PAPI_read).

        The simulated run has already completed, so a read returns the
        final totals — matching how the testing environment samples
        counters once per application run (Section IV-A3 notes the loss of
        temporal information).
        """
        if not self._running:
            raise PAPIError("event set is not running")
        return {e: self._hardware.read(e) for e in self._events}

    def stop(self) -> dict[PresetEvent, float]:
        """Stop counting and return the final counts (PAPI_stop)."""
        if not self._running:
            raise PAPIError("event set is not running")
        self._last_counts = {e: self._hardware.read(e) for e in self._events}
        self._running = False
        return dict(self._last_counts)

    @property
    def last_counts(self) -> dict[PresetEvent, float] | None:
        """Counts from the most recent stop, if any."""
        return dict(self._last_counts) if self._last_counts is not None else None
