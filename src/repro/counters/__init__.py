"""Performance counter infrastructure: PAPI presets + flat profiler."""

from .hpcrun import (
    DEFAULT_EVENTS,
    FlatProfile,
    hpcrun_flat,
    profile_from_dict,
    profile_to_dict,
)
from .papi import EventSet, HardwareCounters, PAPIError, PresetEvent
from .sampling import CounterSample, SampledProfile, hpcrun_sampled

__all__ = [
    "CounterSample",
    "DEFAULT_EVENTS",
    "EventSet",
    "FlatProfile",
    "HardwareCounters",
    "PAPIError",
    "PresetEvent",
    "SampledProfile",
    "hpcrun_flat",
    "hpcrun_sampled",
    "profile_from_dict",
    "profile_to_dict",
]
