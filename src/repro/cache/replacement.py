"""Replacement policies for the set-associative cache simulator.

The analytic models assume true LRU (stack-distance theory is an LRU
construction), but real LLCs use cheaper approximations.  This module
implements the common ones so the sensitivity of the contention physics to
the replacement policy can be *measured* (see
``benchmarks/bench_ablation_replacement.py``) instead of assumed:

* **LRU** — true least-recently-used (the reference),
* **FIFO** — eviction by insertion order; hits do not promote,
* **RANDOM** — uniform random victim,
* **PLRU** — tree pseudo-LRU, the classic hardware approximation
  (requires power-of-two associativity).

Each policy is a per-set strategy object managing victim selection;
the cache shell (:class:`repro.cache.setassoc.SetAssociativeCache`) stays
policy-agnostic.
"""

from __future__ import annotations

import enum
from collections import OrderedDict

import numpy as np

__all__ = ["ReplacementPolicy", "make_set", "CacheSet"]


class ReplacementPolicy(enum.Enum):
    """Victim-selection policies."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"
    PLRU = "plru"


class CacheSet:
    """Interface of one cache set.

    Keys are opaque hashables (the shell uses ``(owner, line)`` tuples).
    """

    def __init__(self, associativity: int) -> None:
        if associativity < 1:
            raise ValueError("associativity must be positive")
        self.associativity = associativity

    def lookup(self, key) -> bool:  # pragma: no cover - interface
        """Access ``key``: return hit/miss and update policy state.

        On a miss the key is inserted, evicting a victim when full.
        """
        raise NotImplementedError

    def evicted_last(self):  # pragma: no cover - interface
        """Key evicted by the most recent lookup, or None."""
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def keys(self):  # pragma: no cover - interface
        raise NotImplementedError


class _OrderedSet(CacheSet):
    """Shared machinery for LRU and FIFO (an ordered dict of keys)."""

    promote_on_hit: bool

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._entries: OrderedDict = OrderedDict()
        self._evicted = None

    def lookup(self, key) -> bool:
        self._evicted = None
        if key in self._entries:
            if self.promote_on_hit:
                self._entries.move_to_end(key)
            return True
        if len(self._entries) >= self.associativity:
            self._evicted, _ = self._entries.popitem(last=False)
        self._entries[key] = True
        return False

    def evicted_last(self):
        return self._evicted

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return list(self._entries)


class _LRUSet(_OrderedSet):
    promote_on_hit = True


class _FIFOSet(_OrderedSet):
    promote_on_hit = False


class _RandomSet(CacheSet):
    """Uniform random victim selection."""

    def __init__(self, associativity: int, rng: np.random.Generator) -> None:
        super().__init__(associativity)
        self._slots: list = []
        self._index: dict = {}
        self._rng = rng
        self._evicted = None

    def lookup(self, key) -> bool:
        self._evicted = None
        if key in self._index:
            return True
        if len(self._slots) >= self.associativity:
            victim_slot = int(self._rng.integers(self.associativity))
            victim = self._slots[victim_slot]
            del self._index[victim]
            self._evicted = victim
            self._slots[victim_slot] = key
            self._index[key] = victim_slot
        else:
            self._index[key] = len(self._slots)
            self._slots.append(key)
        return False

    def evicted_last(self):
        return self._evicted

    def __len__(self) -> int:
        return len(self._slots)

    def keys(self):
        return list(self._slots)


class _PLRUSet(CacheSet):
    """Tree pseudo-LRU over a power-of-two number of ways.

    A binary tree of ``associativity - 1`` direction bits sits above the
    ways.  On every access the bits along the accessed way's path are
    pointed *away* from it; the victim is found by following the bits from
    the root.  This is the textbook hardware PLRU.
    """

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        if associativity & (associativity - 1):
            raise ValueError("PLRU requires power-of-two associativity")
        self._bits = [0] * max(associativity - 1, 1)
        self._slots: list = [None] * associativity
        self._index: dict = {}
        self._evicted = None

    def _touch(self, way: int) -> None:
        """Point the path bits away from ``way``."""
        node = 0
        lo, hi = 0, self.associativity
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # next victim search goes right
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # next victim search goes left
                node = 2 * node + 2
                lo = mid
        # Leaf reached; nothing more to set.

    def _victim_way(self) -> int:
        """Follow the bits from the root to the pseudo-LRU way."""
        node = 0
        lo, hi = 0, self.associativity
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo

    def lookup(self, key) -> bool:
        self._evicted = None
        way = self._index.get(key)
        if way is not None:
            self._touch(way)
            return True
        # Fill an empty way first.
        for w in range(self.associativity):
            if self._slots[w] is None:
                self._slots[w] = key
                self._index[key] = w
                self._touch(w)
                return False
        way = self._victim_way()
        victim = self._slots[way]
        del self._index[victim]
        self._evicted = victim
        self._slots[way] = key
        self._index[key] = way
        self._touch(way)
        return False

    def evicted_last(self):
        return self._evicted

    def __len__(self) -> int:
        return len(self._index)

    def keys(self):
        return [k for k in self._slots if k is not None]


def make_set(
    policy: ReplacementPolicy,
    associativity: int,
    rng: np.random.Generator | None = None,
) -> CacheSet:
    """Instantiate one cache set for a policy.

    ``rng`` is required for :attr:`ReplacementPolicy.RANDOM` and ignored
    otherwise.
    """
    if policy is ReplacementPolicy.LRU:
        return _LRUSet(associativity)
    if policy is ReplacementPolicy.FIFO:
        return _FIFOSet(associativity)
    if policy is ReplacementPolicy.PLRU:
        return _PLRUSet(associativity)
    if policy is ReplacementPolicy.RANDOM:
        if rng is None:
            raise ValueError("RANDOM replacement needs an rng")
        return _RandomSet(associativity, rng)
    raise ValueError(f"unknown policy {policy!r}")  # pragma: no cover
