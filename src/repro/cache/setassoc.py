"""Trace-driven set-associative cache simulator.

This is the "ground truth" cache substrate: a faithful set-associative
cache driven by line-granularity address traces, with selectable
replacement policy (true LRU by default; FIFO / random / tree-PLRU via
:mod:`repro.cache.replacement`).  It serves two roles in the reproduction:

1. validating the analytic models (:class:`repro.cache.reuse.MissRatioCurve`
   and the shared-cache equilibrium in :mod:`repro.cache.sharing`) on small
   configurations, and
2. powering the trace-driven co-location simulator
   (:mod:`repro.sim.tracesim`), the slow-but-faithful counterpart of the
   analytic engine used for bulk data collection.

Addresses are *line numbers* (already divided by the line size); the trace
generator in :mod:`repro.workloads.tracegen` emits line numbers directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.processor import CacheGeometry
from .replacement import ReplacementPolicy, make_set
from .reuse import MissRatioCurve

__all__ = [
    "CacheStats",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "measure_miss_ratio_curve",
]


@dataclass
class CacheStats:
    """Access/hit/miss counters, optionally per requestor."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access; 0.0 when no accesses were made."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats records."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class SetAssociativeCache:
    """A set-associative cache with a selectable replacement policy.

    Lines are tracked as ``(owner, line_number)`` tags so that multiple
    applications sharing the cache never alias each other's addresses —
    mirroring distinct physical address spaces on a real machine.

    Parameters
    ----------
    geometry:
        Cache shape (size, line size, associativity).
    policy:
        Replacement policy; defaults to true LRU, which is what the
        analytic models assume.
    rng:
        Required for :attr:`ReplacementPolicy.RANDOM`; ignored otherwise.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.num_sets = geometry.num_sets
        self.associativity = geometry.associativity
        self._sets = [
            make_set(policy, geometry.associativity, rng)
            for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        self._per_owner: dict[int, CacheStats] = {}

    def owner_stats(self, owner: int) -> CacheStats:
        """Counters for one requestor (created on first use)."""
        return self._per_owner.setdefault(owner, CacheStats())

    def occupancy(self, owner: int | None = None) -> int:
        """Number of resident lines (for one owner, or in total)."""
        if owner is None:
            return sum(len(s) for s in self._sets)
        return sum(
            1 for s in self._sets for (o, _line) in s.keys() if o == owner
        )

    def reset_stats(self) -> None:
        """Zero all counters without disturbing cache contents (warm cache)."""
        self.stats = CacheStats()
        self._per_owner = {}

    def flush(self) -> None:
        """Invalidate all lines and zero the counters."""
        rng_holder = getattr(self._sets[0], "_rng", None) if self._sets else None
        self._sets = [
            make_set(self.policy, self.associativity, rng_holder)
            for _ in range(self.num_sets)
        ]
        self.reset_stats()

    def access(self, line: int, owner: int = 0) -> bool:
        """Access one cache line; returns ``True`` on a hit.

        A miss inserts the line, evicting a policy-selected victim when
        the set is full.
        """
        cache_set = self._sets[line % self.num_sets]
        ostats = self.owner_stats(owner)
        self.stats.accesses += 1
        ostats.accesses += 1
        if cache_set.lookup((owner, line)):
            self.stats.hits += 1
            ostats.hits += 1
            return True
        self.stats.misses += 1
        ostats.misses += 1
        if cache_set.evicted_last() is not None:
            self.stats.evictions += 1
        return False

    def access_trace(self, lines: np.ndarray, owner: int = 0) -> CacheStats:
        """Run a whole trace of line numbers; returns stats for this call.

        The loop is plain Python by necessity (replacement state carries
        across accesses), but per-set bookkeeping is O(1)-ish, so
        throughput is adequate for the validation-scale traces used in
        tests (10^5–10^6 references).
        """
        num_sets = self.num_sets
        sets = self._sets
        hits = 0
        misses = 0
        evictions = 0
        for line in lines:
            line = int(line)
            cache_set = sets[line % num_sets]
            if cache_set.lookup((owner, line)):
                hits += 1
            else:
                misses += 1
                if cache_set.evicted_last() is not None:
                    evictions += 1
        n = int(len(lines))
        ostats = self.owner_stats(owner)
        self.stats.accesses += n
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.evictions += evictions
        ostats.accesses += n
        ostats.hits += hits
        ostats.misses += misses
        ostats.evictions += evictions
        return CacheStats(accesses=n, hits=hits, misses=misses, evictions=evictions)


def measure_miss_ratio_curve(
    trace: np.ndarray,
    geometry: CacheGeometry,
    capacities_bytes: np.ndarray | list[float],
    *,
    warmup_fraction: float = 0.25,
    policy: ReplacementPolicy = ReplacementPolicy.LRU,
    rng: np.random.Generator | None = None,
) -> MissRatioCurve:
    """Measure a miss-ratio curve by replaying one trace at several sizes.

    For each requested capacity the geometry is rescaled (same line size and
    associativity, scaled set count), the trace replayed, and the post-warmup
    miss ratio recorded.  Used in tests to check that synthetic traces
    reproduce their generating :class:`~repro.cache.reuse.ReuseProfile`,
    and by the replacement-policy ablation with non-LRU policies.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup fraction must be in [0, 1)")
    caps = np.asarray(sorted(float(c) for c in capacities_bytes))
    if caps.size < 2:
        raise ValueError("need at least two capacities for a curve")
    trace = np.asarray(trace)
    split = int(len(trace) * warmup_fraction)
    ratios = []
    for cap in caps:
        line, assoc = geometry.line_bytes, geometry.associativity
        unit = line * assoc
        size = max(int(round(cap / unit)), 1) * unit
        cache = SetAssociativeCache(
            CacheGeometry(
                size_bytes=size,
                line_bytes=line,
                associativity=assoc,
                hit_latency_ns=geometry.hit_latency_ns,
            ),
            policy=policy,
            rng=rng,
        )
        cache.access_trace(trace[:split])
        cache.reset_stats()
        stats = cache.access_trace(trace[split:])
        ratios.append(stats.miss_ratio)
    return MissRatioCurve(capacities=caps, miss_ratios=np.asarray(ratios))
