"""Analytic shared last-level cache occupancy model.

When several applications share an LRU cache, each one's resident capacity
is determined by the competition of their *insertion* streams: an
application inserts a new line on every miss, so in steady state occupancy
gravitates towards being proportional to each co-runner's miss (insertion)
rate.  Because an application's miss rate itself depends on the capacity it
holds (through its miss-ratio curve), the occupancies are the fixed point of

    c_i  =  C * r_i / sum_j r_j,      r_i = rate_i * m_i(c_i)

with two physical refinements:

* an application never occupies more than its footprint (it cannot insert
  lines it does not touch) — freed capacity is redistributed to the
  still-competing applications, and
* a small floor on the insertion pressure keeps nearly-cache-resident
  applications from collapsing to zero occupancy (they still stream cold
  misses through the cache).

This is the standard rate-proportional occupancy approximation for shared
LRU caches; its predictions are validated against the trace-driven
simulator (:mod:`repro.cache.setassoc`) in the test suite.  The sharp,
*nonlinear* growth of a target application's miss ratio as co-runner
footprints approach the cache capacity is the first of the two contention
mechanisms that make the paper's linear models plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .reuse import ReuseProfile, ordered_sum

__all__ = [
    "CacheCompetitor",
    "SharingSolution",
    "solve_shared_cache",
    "waterfill",
    "waterfill_batched",
]


@dataclass(frozen=True)
class CacheCompetitor:
    """One application competing for the shared cache.

    Attributes
    ----------
    profile:
        Reuse profile (gives the miss-ratio curve and footprint).
    access_rate:
        LLC accesses per second issued by the application.  Only relative
        magnitudes matter for the occupancy split.
    """

    profile: ReuseProfile
    access_rate: float

    def __post_init__(self) -> None:
        if self.access_rate < 0.0:
            raise ValueError("access rate must be non-negative")


@dataclass(frozen=True)
class SharingSolution:
    """Result of the shared-cache fixed point.

    Attributes
    ----------
    occupancies_bytes:
        Steady-state resident capacity per competitor (sums to at most the
        cache capacity; strictly less when everything fits).
    miss_ratios:
        Miss ratio per competitor at its occupancy.
    iterations:
        Fixed-point iterations performed.
    converged:
        Whether the iteration met the tolerance before the cap.
    """

    occupancies_bytes: np.ndarray
    miss_ratios: np.ndarray
    iterations: int
    converged: bool


def waterfill(pressure: np.ndarray, demand: np.ndarray, capacity: float) -> np.ndarray:
    """Split ``capacity`` proportionally to ``pressure``, capped by ``demand``.

    Classic waterfilling: applications whose proportional share exceeds
    their demand are clipped and the slack re-split among the rest.
    Terminates in at most ``len(pressure)`` rounds.

    Every reduction goes through :func:`~repro.cache.reuse.ordered_sum`
    over masked (exact-zero) inactive entries, the form
    :func:`waterfill_batched` applies row-wise — the two are bit-identical
    per scenario, which the batched steady-state solver relies on.
    """
    n = pressure.size
    alloc = np.zeros(n)
    active = np.ones(n, dtype=bool)
    remaining = float(capacity)
    for _ in range(n):
        if remaining <= 0.0 or not active.any():
            break
        total = float(ordered_sum(np.where(active, pressure, 0.0)))
        if total <= 0.0:
            # No pressure left: split the remainder evenly among actives.
            share = np.where(active, remaining / int(active.sum()), 0.0)
        else:
            share = np.where(active, remaining * pressure / total, 0.0)
        proposed = alloc + share
        over = active & (proposed >= demand)
        if not over.any():
            alloc = np.where(active, proposed, alloc)
            remaining = 0.0
            break
        # Satisfy the clipped apps fully, retire them, re-split the slack.
        remaining -= float(ordered_sum(np.where(over, demand - alloc, 0.0)))
        alloc = np.where(over, demand, alloc)
        active &= ~over
        # The un-clipped apps are reconsidered next round from scratch so
        # that proportionality is preserved among survivors.
    return alloc


def waterfill_batched(
    pressure: np.ndarray,
    demand: np.ndarray,
    capacity: float | np.ndarray,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """Scenario-vectorized :func:`waterfill`: one call fills S rows at once.

    ``pressure`` and ``demand`` are ``(S, A)``; ``capacity`` is a scalar or
    an ``(S,)`` per-scenario vector.  ``valid`` masks padded entries of
    ragged scenario stacks — pad columns never compete, never count toward
    the even-split denominator, and always receive 0.0.

    Row ``s`` of the result is bit-identical to
    ``waterfill(pressure[s, :n_s], demand[s, :n_s], capacity[s])``: each
    round performs the same masked arithmetic, rows finish independently
    (a finished row's allocation is frozen while others keep clipping),
    and all reductions share the sequential-accumulation discipline of
    :func:`~repro.cache.reuse.ordered_sum`.
    """
    pressure = np.asarray(pressure, dtype=float)
    demand = np.asarray(demand, dtype=float)
    if pressure.ndim != 2 or pressure.shape != demand.shape:
        raise ValueError(
            f"pressure and demand must be matching (S, A) arrays, got "
            f"{pressure.shape} and {demand.shape}"
        )
    s, a = pressure.shape
    remaining = np.broadcast_to(np.asarray(capacity, dtype=float), (s,)).astype(float)
    active = (
        np.ones((s, a), dtype=bool) if valid is None else valid.astype(bool).copy()
    )
    alloc = np.zeros((s, a))
    for _ in range(a):
        live = active.any(axis=1) & (remaining > 0.0)
        if not live.any():
            break
        act = active & live[:, None]
        count = act.sum(axis=1)
        total = ordered_sum(np.where(act, pressure, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(
                (total > 0.0)[:, None],
                remaining[:, None] * pressure / total[:, None],
                (remaining / np.maximum(count, 1))[:, None],
            )
        share = np.where(act, share, 0.0)
        proposed = alloc + share
        over = act & (proposed >= demand)
        done = live & ~over.any(axis=1)
        alloc = np.where(done[:, None] & act, proposed, alloc)
        remaining = np.where(done, 0.0, remaining)
        # Clipped entries are satisfied fully and retired; their slack is
        # re-split among that row's survivors next round.
        remaining = remaining - ordered_sum(np.where(over, demand - alloc, 0.0))
        alloc = np.where(over, demand, alloc)
        active &= ~over
    return alloc


def solve_shared_cache(
    competitors: list[CacheCompetitor],
    capacity_bytes: float,
    *,
    max_iterations: int = 200,
    tolerance_bytes: float = 1024.0,
    damping: float = 0.5,
    pressure_floor: float = 0.002,
) -> SharingSolution:
    """Solve the occupancy fixed point for one set of co-located apps.

    Parameters
    ----------
    competitors:
        The applications sharing the cache (target plus co-runners).
    capacity_bytes:
        Shared LLC capacity.
    max_iterations, tolerance_bytes, damping:
        Fixed-point controls.  ``damping`` is the weight on the new iterate.
    pressure_floor:
        Minimum insertion pressure per unit access rate — models the cold
        misses that keep even fully-resident applications circulating lines.

    Notes
    -----
    With a single competitor the solution is simply
    ``min(footprint, capacity)``, which reduces the model to the solo
    miss-ratio curve — the baseline case of the paper.
    """
    if capacity_bytes <= 0.0:
        raise ValueError("capacity must be positive")
    if not competitors:
        raise ValueError("need at least one competitor")
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")

    n = len(competitors)
    rates = np.array([c.access_rate for c in competitors], dtype=float)
    demand = np.array(
        [min(c.profile.footprint_bytes, capacity_bytes) for c in competitors]
    )

    if demand.sum() <= capacity_bytes:
        # Everything fits: no competition, occupancy == footprint.
        occ = demand.copy()
        miss = np.array(
            [c.profile.miss_ratio(o) for c, o in zip(competitors, occ)]
        )
        return SharingSolution(occ, miss, iterations=0, converged=True)

    # Start from a demand-proportional split.
    occ = waterfill(demand.copy(), demand, capacity_bytes)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        miss = np.array(
            [c.profile.miss_ratio(o) for c, o in zip(competitors, occ)]
        )
        pressure = rates * np.maximum(miss, pressure_floor)
        if pressure.sum() <= 0.0:
            # No one inserts (all rates zero): keep the current split.
            converged = True
            break
        target = waterfill(pressure, demand, capacity_bytes)
        new_occ = (1.0 - damping) * occ + damping * target
        if np.max(np.abs(new_occ - occ)) <= tolerance_bytes:
            occ = new_occ
            converged = True
            break
        occ = new_occ

    miss = np.array([c.profile.miss_ratio(o) for c, o in zip(competitors, occ)])
    return SharingSolution(occ, miss, iterations=iterations, converged=converged)
