"""Analytic shared last-level cache occupancy model.

When several applications share an LRU cache, each one's resident capacity
is determined by the competition of their *insertion* streams: an
application inserts a new line on every miss, so in steady state occupancy
gravitates towards being proportional to each co-runner's miss (insertion)
rate.  Because an application's miss rate itself depends on the capacity it
holds (through its miss-ratio curve), the occupancies are the fixed point of

    c_i  =  C * r_i / sum_j r_j,      r_i = rate_i * m_i(c_i)

with two physical refinements:

* an application never occupies more than its footprint (it cannot insert
  lines it does not touch) — freed capacity is redistributed to the
  still-competing applications, and
* a small floor on the insertion pressure keeps nearly-cache-resident
  applications from collapsing to zero occupancy (they still stream cold
  misses through the cache).

This is the standard rate-proportional occupancy approximation for shared
LRU caches; its predictions are validated against the trace-driven
simulator (:mod:`repro.cache.setassoc`) in the test suite.  The sharp,
*nonlinear* growth of a target application's miss ratio as co-runner
footprints approach the cache capacity is the first of the two contention
mechanisms that make the paper's linear models plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .reuse import ReuseProfile

__all__ = ["CacheCompetitor", "SharingSolution", "solve_shared_cache", "waterfill"]


@dataclass(frozen=True)
class CacheCompetitor:
    """One application competing for the shared cache.

    Attributes
    ----------
    profile:
        Reuse profile (gives the miss-ratio curve and footprint).
    access_rate:
        LLC accesses per second issued by the application.  Only relative
        magnitudes matter for the occupancy split.
    """

    profile: ReuseProfile
    access_rate: float

    def __post_init__(self) -> None:
        if self.access_rate < 0.0:
            raise ValueError("access rate must be non-negative")


@dataclass(frozen=True)
class SharingSolution:
    """Result of the shared-cache fixed point.

    Attributes
    ----------
    occupancies_bytes:
        Steady-state resident capacity per competitor (sums to at most the
        cache capacity; strictly less when everything fits).
    miss_ratios:
        Miss ratio per competitor at its occupancy.
    iterations:
        Fixed-point iterations performed.
    converged:
        Whether the iteration met the tolerance before the cap.
    """

    occupancies_bytes: np.ndarray
    miss_ratios: np.ndarray
    iterations: int
    converged: bool


def waterfill(pressure: np.ndarray, demand: np.ndarray, capacity: float) -> np.ndarray:
    """Split ``capacity`` proportionally to ``pressure``, capped by ``demand``.

    Classic waterfilling: applications whose proportional share exceeds
    their demand are clipped and the slack re-split among the rest.
    Terminates in at most ``len(pressure)`` rounds.
    """
    n = pressure.size
    alloc = np.zeros(n)
    active = np.ones(n, dtype=bool)
    remaining = float(capacity)
    for _ in range(n):
        if remaining <= 0.0 or not active.any():
            break
        p = pressure[active]
        total = p.sum()
        if total <= 0.0:
            # No pressure left: split the remainder evenly among actives.
            share = np.full(p.shape, remaining / p.size)
        else:
            share = remaining * p / total
        idx = np.flatnonzero(active)
        proposed = alloc[idx] + share
        over = proposed >= demand[idx]
        if not over.any():
            alloc[idx] = proposed
            remaining = 0.0
            break
        # Satisfy the clipped apps fully, retire them, re-split the slack.
        clipped = idx[over]
        remaining -= (demand[clipped] - alloc[clipped]).sum()
        alloc[clipped] = demand[clipped]
        active[clipped] = False
        # The un-clipped apps are reconsidered next round from scratch so
        # that proportionality is preserved among survivors.
    return alloc


def solve_shared_cache(
    competitors: list[CacheCompetitor],
    capacity_bytes: float,
    *,
    max_iterations: int = 200,
    tolerance_bytes: float = 1024.0,
    damping: float = 0.5,
    pressure_floor: float = 0.002,
) -> SharingSolution:
    """Solve the occupancy fixed point for one set of co-located apps.

    Parameters
    ----------
    competitors:
        The applications sharing the cache (target plus co-runners).
    capacity_bytes:
        Shared LLC capacity.
    max_iterations, tolerance_bytes, damping:
        Fixed-point controls.  ``damping`` is the weight on the new iterate.
    pressure_floor:
        Minimum insertion pressure per unit access rate — models the cold
        misses that keep even fully-resident applications circulating lines.

    Notes
    -----
    With a single competitor the solution is simply
    ``min(footprint, capacity)``, which reduces the model to the solo
    miss-ratio curve — the baseline case of the paper.
    """
    if capacity_bytes <= 0.0:
        raise ValueError("capacity must be positive")
    if not competitors:
        raise ValueError("need at least one competitor")
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")

    n = len(competitors)
    rates = np.array([c.access_rate for c in competitors], dtype=float)
    demand = np.array(
        [min(c.profile.footprint_bytes, capacity_bytes) for c in competitors]
    )

    if demand.sum() <= capacity_bytes:
        # Everything fits: no competition, occupancy == footprint.
        occ = demand.copy()
        miss = np.array(
            [c.profile.miss_ratio(o) for c, o in zip(competitors, occ)]
        )
        return SharingSolution(occ, miss, iterations=0, converged=True)

    # Start from a demand-proportional split.
    occ = waterfill(demand.copy(), demand, capacity_bytes)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        miss = np.array(
            [c.profile.miss_ratio(o) for c, o in zip(competitors, occ)]
        )
        pressure = rates * np.maximum(miss, pressure_floor)
        if pressure.sum() <= 0.0:
            # No one inserts (all rates zero): keep the current split.
            converged = True
            break
        target = waterfill(pressure, demand, capacity_bytes)
        new_occ = (1.0 - damping) * occ + damping * target
        if np.max(np.abs(new_occ - occ)) <= tolerance_bytes:
            occ = new_occ
            converged = True
            break
        occ = new_occ

    miss = np.array([c.profile.miss_ratio(o) for c, o in zip(competitors, occ)])
    return SharingSolution(occ, miss, iterations=iterations, converged=converged)
