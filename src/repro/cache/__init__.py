"""Last-level cache substrate: reuse profiles, LRU simulation, sharing.

Two complementary models live here:

* :mod:`repro.cache.setassoc` — a faithful trace-driven set-associative LRU
  cache (slow, ground truth), and
* :mod:`repro.cache.sharing` — the analytic occupancy-equilibrium model of
  a shared cache (fast, used by the bulk data-collection engine).

Both consume :class:`repro.cache.reuse.ReuseProfile` locality descriptions.
"""

from .reuse import (
    MissRatioCurve,
    ProfileStack,
    ProfileTable,
    ReuseComponent,
    ReuseProfile,
    ordered_sum,
)
from .replacement import CacheSet, ReplacementPolicy, make_set
from .setassoc import CacheStats, SetAssociativeCache, measure_miss_ratio_curve
from .sharing import (
    CacheCompetitor,
    SharingSolution,
    solve_shared_cache,
    waterfill,
    waterfill_batched,
)

__all__ = [
    "CacheCompetitor",
    "CacheSet",
    "CacheStats",
    "MissRatioCurve",
    "ProfileStack",
    "ProfileTable",
    "ReplacementPolicy",
    "ReuseComponent",
    "ReuseProfile",
    "SetAssociativeCache",
    "SharingSolution",
    "make_set",
    "measure_miss_ratio_curve",
    "ordered_sum",
    "solve_shared_cache",
    "waterfill",
    "waterfill_batched",
]
