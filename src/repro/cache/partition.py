"""Way-partitioning of the shared last-level cache.

Modern server parts expose way-granular LLC partitioning (Intel CAT and
kin): the resource manager pins each co-located application to a subset of
the cache's ways, trading the free-for-all occupancy competition for
isolation.  The engine supports this through the ``fixed_occupancies``
argument; this module provides the way-granular allocation type and the
standard allocation policies, enabling the "what would partitioning buy?"
extension experiment (``benchmarks/bench_extension_partitioning.py``) on
top of the reproduction.

Partitioning removes cache contention but not DRAM contention — the engine
keeps bandwidth shared, which matches real CAT deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.processor import CacheGeometry
from ..workloads.app import ApplicationSpec

__all__ = [
    "WayPartition",
    "equal_partition",
    "footprint_proportional_partition",
    "protect_target_partition",
]


@dataclass(frozen=True)
class WayPartition:
    """An assignment of LLC ways to co-located applications.

    ``ways[i]`` ways are pinned to application ``i`` (target first, then
    co-runners, matching the engine's application ordering).  Unassigned
    ways are left unused — real controllers often reserve ways for the
    OS/uncore, so the sum may be less than the associativity but never
    more.
    """

    geometry: CacheGeometry
    ways: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ways:
            raise ValueError("a partition needs at least one application")
        if any(w < 1 for w in self.ways):
            raise ValueError(
                "every application needs at least one way (zero ways would "
                "mean no LLC at all, which the hierarchy cannot express)"
            )
        if sum(self.ways) > self.geometry.associativity:
            raise ValueError(
                f"{sum(self.ways)} ways assigned but the cache has "
                f"{self.geometry.associativity}"
            )

    @property
    def bytes_per_way(self) -> float:
        """Capacity of one way across all sets."""
        return self.geometry.size_bytes / self.geometry.associativity

    def occupancies_bytes(self) -> np.ndarray:
        """Per-application pinned capacity, engine-ready."""
        return np.array([w * self.bytes_per_way for w in self.ways])


def equal_partition(num_apps: int, geometry: CacheGeometry) -> WayPartition:
    """Split the ways as evenly as possible (leftovers to the target)."""
    if num_apps < 1:
        raise ValueError("need at least one application")
    if num_apps > geometry.associativity:
        raise ValueError(
            f"{num_apps} applications cannot each get a way of a "
            f"{geometry.associativity}-way cache"
        )
    base = geometry.associativity // num_apps
    leftover = geometry.associativity - base * num_apps
    ways = [base] * num_apps
    ways[0] += leftover
    return WayPartition(geometry=geometry, ways=tuple(ways))


def footprint_proportional_partition(
    apps: list[ApplicationSpec],
    geometry: CacheGeometry,
) -> WayPartition:
    """Allocate ways proportional to each application's occupancy demand.

    Demands are the settled footprints capped at the cache size; every
    application keeps at least one way.
    """
    if not apps:
        raise ValueError("need at least one application")
    if len(apps) > geometry.associativity:
        raise ValueError("more applications than ways")
    demands = np.array(
        [min(a.footprint_bytes, float(geometry.size_bytes)) for a in apps]
    )
    shares = demands / demands.sum()
    spare = geometry.associativity - len(apps)
    extra = np.floor(shares * spare).astype(int)
    # Distribute rounding leftovers to the largest fractional shares.
    remainder = spare - int(extra.sum())
    if remainder > 0:
        frac = shares * spare - extra
        for idx in np.argsort(frac)[::-1][:remainder]:
            extra[idx] += 1
    return WayPartition(geometry=geometry, ways=tuple(1 + extra))


def protect_target_partition(
    num_co_runners: int,
    geometry: CacheGeometry,
    *,
    target_fraction: float = 0.5,
) -> WayPartition:
    """Reserve a fraction of the ways for the target; split the rest.

    The classic victim-protection policy: the latency-critical target gets
    ``target_fraction`` of the cache regardless of co-runner pressure.
    """
    if not 0.0 < target_fraction < 1.0:
        raise ValueError("target fraction must be in (0, 1)")
    if num_co_runners < 0:
        raise ValueError("co-runner count must be non-negative")
    assoc = geometry.associativity
    target_ways = max(int(round(assoc * target_fraction)), 1)
    if num_co_runners == 0:
        return WayPartition(geometry=geometry, ways=(min(target_ways, assoc),))
    remaining = assoc - target_ways
    if remaining < num_co_runners:
        raise ValueError(
            f"{num_co_runners} co-runners cannot share the "
            f"{remaining} unprotected ways"
        )
    base = remaining // num_co_runners
    leftover = remaining - base * num_co_runners
    co_ways = [base + (1 if i < leftover else 0) for i in range(num_co_runners)]
    return WayPartition(geometry=geometry, ways=(target_ways, *co_ways))
