"""Reuse-distance profiles and miss-ratio curves.

Every synthetic application in :mod:`repro.workloads` carries a
:class:`ReuseProfile` describing its temporal locality: a mixture of
working-set components, each a plateau in the classic miss-ratio-versus-
capacity curve.  From the profile we derive

* a :class:`MissRatioCurve` — miss ratio as a function of allocated LLC
  capacity, used by the analytic shared-cache model
  (:mod:`repro.cache.sharing`), and
* a stack-distance distribution — used by the synthetic trace generator
  (:mod:`repro.workloads.tracegen`) to emit address streams whose behaviour
  in a real (simulated) LRU cache matches the profile.

The mixture component shape is a Hill function ``1 / (1 + (c / ws)**p)``:
close to 1 when the allocated capacity ``c`` is far below the component's
working-set size ``ws`` and decaying towards 0 once the working set fits,
with sharpness ``p``.  A compulsory (cold) miss floor is never avoidable
regardless of capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ReuseComponent",
    "ReuseProfile",
    "MissRatioCurve",
    "ProfileTable",
    "ProfileStack",
    "ordered_sum",
]


def ordered_sum(x: np.ndarray) -> np.ndarray:
    """Strict left-to-right sum along the last axis.

    The reduction-order discipline shared by the serial and the batched
    steady-state solvers: ``np.sum`` switches accumulation trees with the
    element count (pairwise blocks kick in at eight elements), so a padded
    ``(S, A)`` row and its unpadded ``(n,)`` serial counterpart would not
    reduce bitwise-identically through it.  A sequential accumulation
    starting from zero is invariant under trailing exact-zero padding —
    ``x + 0.0 == x`` for every finite ``x`` — which is what makes the
    batched solver bit-identical to the per-scenario loop.

    Returns a scalar ``np.float64`` for 1-D input, an array with the last
    axis reduced otherwise.  The last axis is expected to be small (apps
    per scenario, mixture components): the Python-level loop is a handful
    of vectorized adds.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        total = 0.0
        for v in x.tolist():
            total += v
        return np.float64(total)
    out = np.zeros(x.shape[:-1])
    for j in range(x.shape[-1]):
        out += x[..., j]
    return out


@dataclass(frozen=True)
class ReuseComponent:
    """One working-set plateau of a reuse profile.

    Attributes
    ----------
    working_set_bytes:
        Capacity at which this component's accesses start hitting.
    weight:
        Fraction of all LLC accesses that belong to this component.
        Weights across a profile's components sum to 1.
    sharpness:
        Hill exponent; larger values give a sharper knee at the working-set
        size.  Typical hardware-measured MRCs have knees with ``p`` in 2–6.
    """

    working_set_bytes: float
    weight: float
    sharpness: float = 3.0

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0.0:
            raise ValueError("working set size must be positive")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError("component weight must be in (0, 1]")
        if self.sharpness <= 0.0:
            raise ValueError("sharpness must be positive")

    def miss_fraction(self, capacity_bytes: np.ndarray | float) -> np.ndarray | float:
        """Fraction of this component's accesses that miss at ``capacity``."""
        c = np.asarray(capacity_bytes, dtype=float)
        with np.errstate(over="ignore"):
            out = 1.0 / (1.0 + (c / self.working_set_bytes) ** self.sharpness)
        return out if out.ndim else float(out)

    def settled_capacity(self, epsilon: float = 0.05) -> float:
        """Capacity at which this component's miss fraction falls to ``epsilon``.

        The Hill knee sits *at* the working-set size (miss fraction 1/2
        there); an application keeps benefiting from extra capacity until a
        few multiples of the working set.  The settled capacity is where
        the benefit is exhausted to within ``epsilon`` — the natural notion
        of occupancy *demand* for the sharing model.
        """
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        return self.working_set_bytes * ((1.0 - epsilon) / epsilon) ** (
            1.0 / self.sharpness
        )


@dataclass(frozen=True)
class ReuseProfile:
    """Temporal-locality description of one application.

    ``compulsory`` is the floor miss ratio (cold misses and streaming data
    that is never reused); the remaining ``1 - compulsory`` of accesses is
    split across the mixture ``components``.
    """

    components: tuple[ReuseComponent, ...]
    compulsory: float = 0.0

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a reuse profile needs at least one component")
        if not 0.0 <= self.compulsory < 1.0:
            raise ValueError("compulsory miss ratio must be in [0, 1)")
        total = sum(c.weight for c in self.components)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"component weights must sum to 1, got {total}")

    @classmethod
    def single(
        cls,
        working_set_bytes: float,
        *,
        compulsory: float = 0.0,
        sharpness: float = 3.0,
    ) -> "ReuseProfile":
        """Profile with one working-set plateau."""
        return cls(
            components=(ReuseComponent(working_set_bytes, 1.0, sharpness),),
            compulsory=compulsory,
        )

    @classmethod
    def mixture(
        cls,
        parts: list[tuple[float, float]] | list[tuple[float, float, float]],
        *,
        compulsory: float = 0.0,
    ) -> "ReuseProfile":
        """Profile from ``(working_set_bytes, weight[, sharpness])`` tuples.

        Weights are normalized so callers can pass relative values.
        """
        if not parts:
            raise ValueError("mixture needs at least one part")
        total = sum(p[1] for p in parts)
        if total <= 0.0:
            raise ValueError("mixture weights must be positive")
        comps = tuple(
            ReuseComponent(
                working_set_bytes=p[0],
                weight=p[1] / total,
                sharpness=p[2] if len(p) > 2 else 3.0,
            )
            for p in parts
        )
        return cls(components=comps, compulsory=compulsory)

    @property
    def footprint_bytes(self) -> float:
        """Occupancy demand: capacity beyond which extra cache barely helps.

        Defined as the largest component's settled capacity (miss fraction
        below 5%); this is what the sharing model uses as the most cache an
        application will hold, and what the trace generator uses to bound
        its LRU stack.
        """
        return max(c.settled_capacity() for c in self.components)

    @property
    def max_working_set_bytes(self) -> float:
        """Largest raw working-set size in the profile (the knee position)."""
        return max(c.working_set_bytes for c in self.components)

    def miss_ratio(self, capacity_bytes: np.ndarray | float) -> np.ndarray | float:
        """Miss ratio when the application owns ``capacity_bytes`` of LLC.

        Vectorized over capacity.  Monotonically non-increasing in capacity
        and bounded to ``[compulsory, 1]``.
        """
        c = np.maximum(np.asarray(capacity_bytes, dtype=float), 0.0)
        mix = np.zeros_like(c, dtype=float)
        for comp in self.components:
            mix = mix + comp.weight * comp.miss_fraction(c)
        out = self.compulsory + (1.0 - self.compulsory) * mix
        return out if out.ndim else float(out)

    def curve(
        self,
        max_capacity_bytes: float,
        *,
        points: int = 256,
    ) -> "MissRatioCurve":
        """Tabulate this profile as a :class:`MissRatioCurve`."""
        caps = np.linspace(0.0, float(max_capacity_bytes), points)
        return MissRatioCurve(capacities=caps, miss_ratios=np.asarray(self.miss_ratio(caps)))

    def stack_distance_distribution(
        self,
        line_bytes: int,
        *,
        max_distance_lines: int | None = None,
        points: int = 512,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Discretized stack-distance distribution implied by the profile.

        For an LRU cache of ``d`` lines, the miss ratio equals the
        probability that an access's stack distance exceeds ``d``.  Hence
        the stack-distance CDF is ``F(d) = 1 - miss_ratio(d * line_bytes)``;
        this method differentiates it over a geometric grid of distances.

        Returns
        -------
        (distances, probabilities):
            ``distances`` are stack distances in *lines* (int64, ascending,
            last entry is a sentinel for "infinite" distance, i.e. a
            compulsory miss); ``probabilities`` sums to 1.
        """
        if line_bytes <= 0:
            raise ValueError("line size must be positive")
        if max_distance_lines is None:
            max_distance_lines = int(4.0 * self.footprint_bytes / line_bytes) + 1
        if max_distance_lines < 1:
            raise ValueError("max distance must be at least one line")
        # Geometric grid: stack distances span orders of magnitude.
        grid = np.unique(
            np.round(np.geomspace(1.0, float(max_distance_lines), points)).astype(np.int64)
        )
        cdf = 1.0 - np.asarray(self.miss_ratio(grid.astype(float) * line_bytes))
        cdf = np.maximum.accumulate(np.clip(cdf, 0.0, 1.0))
        pmf = np.diff(np.concatenate(([0.0], cdf)))
        # Residual mass above the grid = compulsory / capacity-exceeding
        # accesses; park it on an "infinite" sentinel distance.
        residual = max(1.0 - cdf[-1], 0.0)
        distances = np.concatenate((grid, [np.iinfo(np.int64).max]))
        probabilities = np.concatenate((pmf, [residual]))
        total = probabilities.sum()
        if total <= 0.0:
            raise ValueError("degenerate stack-distance distribution")
        return distances, probabilities / total


class ProfileTable:
    """Batched miss-ratio evaluation over several profiles at once.

    The analytic execution engine evaluates every co-runner's miss ratio on
    each fixed-point iteration; doing that through per-profile Python calls
    dominates runtime.  ``ProfileTable`` packs the mixture parameters of
    *n* profiles into padded ``(n, k)`` arrays so one iteration is a handful
    of vectorized numpy operations.

    Padding components carry zero weight, so they contribute nothing.
    """

    def __init__(self, profiles: list[ReuseProfile] | tuple[ReuseProfile, ...]) -> None:
        if not profiles:
            raise ValueError("profile table needs at least one profile")
        self.profiles = tuple(profiles)
        n = len(profiles)
        k = max(len(p.components) for p in profiles)
        self.working_sets = np.ones((n, k))
        self.weights = np.zeros((n, k))
        self.sharpness = np.ones((n, k))
        self.compulsory = np.empty(n)
        self.footprints = np.empty(n)
        for i, p in enumerate(profiles):
            self.compulsory[i] = p.compulsory
            self.footprints[i] = p.footprint_bytes
            for j, comp in enumerate(p.components):
                self.working_sets[i, j] = comp.working_set_bytes
                self.weights[i, j] = comp.weight
                self.sharpness[i, j] = comp.sharpness

    def __len__(self) -> int:
        return len(self.profiles)

    def miss_ratio(self, occupancies_bytes: np.ndarray) -> np.ndarray:
        """Per-profile miss ratio at per-profile occupancy (length-n each).

        Equivalent to ``[p.miss_ratio(o) for p, o in zip(profiles, occ)]``
        but in one shot (verified against the scalar path in the tests).
        """
        occ = np.asarray(occupancies_bytes, dtype=float)
        if occ.shape != (len(self.profiles),):
            raise ValueError(
                f"expected {len(self.profiles)} occupancies, got shape {occ.shape}"
            )
        ratio = np.maximum(occ, 0.0)[:, None] / self.working_sets
        with np.errstate(over="ignore"):
            mix = ordered_sum(self.weights / (1.0 + ratio**self.sharpness))
        return self.compulsory + (1.0 - self.compulsory) * mix


class ProfileStack:
    """Scenario-batched miss-ratio evaluation: ``(S, A, K)`` padded arrays.

    The batched steady-state solver advances S independent co-location
    scenarios at once; each scenario holds up to A applications, each with
    up to K mixture components.  ``ProfileStack`` is the 3-D analogue of
    :class:`ProfileTable`: one ``miss_ratio`` call evaluates every
    application of every scenario in a handful of vectorized operations.

    Padding is exact: pad applications carry zero weights and zero
    compulsory ratio (their miss ratio is exactly 0.0 and their footprint
    0.0), pad components carry zero weight — under the
    :func:`ordered_sum` reduction discipline neither perturbs the real
    entries by even an ulp relative to the per-scenario
    :class:`ProfileTable` evaluation.
    """

    def __init__(
        self,
        profile_rows: list[list[ReuseProfile]] | list[tuple[ReuseProfile, ...]],
        *,
        pad_apps: int | None = None,
    ) -> None:
        if not profile_rows:
            raise ValueError("profile stack needs at least one scenario")
        if any(not row for row in profile_rows):
            raise ValueError("every scenario needs at least one profile")
        s = len(profile_rows)
        a = max(len(row) for row in profile_rows)
        if pad_apps is not None:
            if pad_apps < a:
                raise ValueError(
                    f"pad_apps={pad_apps} below the widest scenario ({a})"
                )
            a = pad_apps
        k = max(len(p.components) for row in profile_rows for p in row)
        self.n_apps = np.array([len(row) for row in profile_rows])
        self.valid = np.arange(a)[None, :] < self.n_apps[:, None]
        self.working_sets = np.ones((s, a, k))
        self.weights = np.zeros((s, a, k))
        self.sharpness = np.ones((s, a, k))
        self.compulsory = np.zeros((s, a))
        self.footprints = np.zeros((s, a))
        for i, row in enumerate(profile_rows):
            for j, p in enumerate(row):
                self.compulsory[i, j] = p.compulsory
                self.footprints[i, j] = p.footprint_bytes
                for m, comp in enumerate(p.components):
                    self.working_sets[i, j, m] = comp.working_set_bytes
                    self.weights[i, j, m] = comp.weight
                    self.sharpness[i, j, m] = comp.sharpness

    @property
    def shape(self) -> tuple[int, int]:
        """``(scenarios, padded apps per scenario)``."""
        return self.compulsory.shape

    def miss_ratio(
        self, occupancies_bytes: np.ndarray, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-app miss ratios at per-app occupancies, scenario-batched.

        ``occupancies_bytes`` is ``(S, A)`` — or ``(len(rows), A)`` when
        ``rows`` selects a subset of scenarios (the solver's frozen-member
        discipline evaluates only still-active rows).  Pad applications
        evaluate to exactly 0.0.
        """
        occ = np.asarray(occupancies_bytes, dtype=float)
        if rows is None:
            ws, w, sh, comp = (
                self.working_sets, self.weights, self.sharpness, self.compulsory
            )
        else:
            ws, w, sh, comp = (
                self.working_sets[rows], self.weights[rows],
                self.sharpness[rows], self.compulsory[rows],
            )
        if occ.shape != comp.shape:
            raise ValueError(
                f"expected occupancies of shape {comp.shape}, got {occ.shape}"
            )
        ratio = np.maximum(occ, 0.0)[..., None] / ws
        with np.errstate(over="ignore"):
            mix = ordered_sum(w / (1.0 + ratio**sh))
        return comp + (1.0 - comp) * mix


@dataclass(frozen=True)
class MissRatioCurve:
    """Tabulated miss ratio as a function of allocated capacity.

    The canonical producer is :meth:`ReuseProfile.curve`, but curves can
    also be measured from the trace-driven simulator
    (:func:`repro.cache.setassoc.measure_miss_ratio_curve`) — the agreement
    of the two is a core invariant tested in ``tests/cache``.
    """

    capacities: np.ndarray
    miss_ratios: np.ndarray

    def __post_init__(self) -> None:
        caps = np.asarray(self.capacities, dtype=float)
        mrs = np.asarray(self.miss_ratios, dtype=float)
        if caps.ndim != 1 or mrs.ndim != 1 or caps.size != mrs.size:
            raise ValueError("capacities and miss ratios must be equal-length 1-D")
        if caps.size < 2:
            raise ValueError("a curve needs at least two points")
        if np.any(np.diff(caps) <= 0.0):
            raise ValueError("capacities must be strictly increasing")
        if np.any(mrs < -1e-9) or np.any(mrs > 1.0 + 1e-9):
            raise ValueError("miss ratios must be within [0, 1]")
        object.__setattr__(self, "capacities", caps)
        object.__setattr__(self, "miss_ratios", np.clip(mrs, 0.0, 1.0))

    def __call__(self, capacity_bytes: np.ndarray | float) -> np.ndarray | float:
        """Interpolated miss ratio at the given capacity (clamped at ends)."""
        c = np.asarray(capacity_bytes, dtype=float)
        out = np.interp(c, self.capacities, self.miss_ratios)
        return out if out.ndim else float(out)

    def is_monotone_nonincreasing(self, *, tol: float = 1e-9) -> bool:
        """Whether the tabulated curve never increases with capacity."""
        return bool(np.all(np.diff(self.miss_ratios) <= tol))
