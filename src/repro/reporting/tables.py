"""Plain-text table rendering for the reproduced paper tables."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, *, precision: int = 3) -> str:
    """Format one table cell: floats compactly, everything else via str.

    Small floats (< 1e-2) switch to scientific notation so memory
    intensities stay readable next to execution times.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0.0:
        return "0"
    if abs(value) < 1e-2 or abs(value) >= 1e7:
        return f"{value:.{precision}e}"
    return f"{value:.{precision}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+------
    1 | 2.500
    """
    if not headers:
        raise ValueError("table needs headers")
    formatted = [[format_cell(c, precision=precision) for c in row] for row in rows]
    for i, row in enumerate(formatted):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells; expected {len(headers)}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in formatted)) if formatted else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
