"""Plain-text rendering of the paper's tables and figures."""

from .figures import (
    DistributionSummary,
    render_distributions,
    render_series,
    summarize,
)
from .tables import format_cell, render_table

__all__ = [
    "DistributionSummary",
    "format_cell",
    "render_distributions",
    "render_series",
    "render_table",
    "summarize",
]
