"""Plain-text "figure" rendering: series plots and distribution summaries.

The paper's figures are line charts (Figures 1–4: error versus feature set)
and violin-style distributions (Figure 5).  In a terminal reproduction we
render the same *data*: aligned series tables with spark-bars for the
trends, and five-number summaries with a box rendering for distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["render_series", "DistributionSummary", "summarize", "render_distributions"]

_BAR_CHARS = " ▁▂▃▄▅▆▇█"


def _spark(values: np.ndarray) -> str:
    """Unicode spark-bar for a series (min..max scaled)."""
    v = np.asarray(values, dtype=float)
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return _BAR_CHARS[4] * v.size
    idx = np.round((v - lo) / (hi - lo) * (len(_BAR_CHARS) - 1)).astype(int)
    return "".join(_BAR_CHARS[i] for i in idx)


def render_series(
    x_labels: list[str],
    series: dict[str, np.ndarray],
    *,
    title: str | None = None,
    unit: str = "%",
    precision: int = 2,
) -> str:
    """Render named series over shared x labels (one Figures 1–4 panel).

    Each series gets one row of values plus a spark-bar showing its trend
    across the x axis (feature sets A–F in the paper's figures).
    """
    if not x_labels:
        raise ValueError("need x labels")
    if not series:
        raise ValueError("need at least one series")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} points; expected {len(x_labels)}"
            )
    name_w = max(len(n) for n in series)
    val_w = max(
        max(len(f"{float(v):.{precision}f}") for v in vals) for vals in series.values()
    )
    val_w = max(val_w, *(len(x) for x in x_labels))
    lines = []
    if title:
        lines.append(title)
    header = " " * name_w + "  " + " ".join(x.rjust(val_w) for x in x_labels)
    lines.append(header)
    for name, values in series.items():
        vals = " ".join(f"{float(v):.{precision}f}".rjust(val_w) for v in values)
        lines.append(f"{name.ljust(name_w)}  {vals}  {_spark(np.asarray(values))} {unit}")
    return "\n".join(lines)


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary of one distribution (a Figure 5 violin)."""

    name: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    count: int


def summarize(name: str, values: np.ndarray) -> DistributionSummary:
    """Five-number summary of a sample."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q1, med, q3 = np.percentile(v, [25.0, 50.0, 75.0])
    return DistributionSummary(
        name=name,
        minimum=float(v.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(v.max()),
        count=int(v.size),
    )


def render_distributions(
    summaries: list[DistributionSummary],
    *,
    title: str | None = None,
    unit: str = "",
    width: int = 40,
) -> str:
    """Render box plots for several distributions on a shared axis."""
    if not summaries:
        raise ValueError("need at least one distribution")
    lo = min(s.minimum for s in summaries)
    hi = max(s.maximum for s in summaries)
    span = hi - lo if hi > lo else 1.0

    def col(x: float) -> int:
        return int(round((x - lo) / span * (width - 1)))

    name_w = max(len(s.name) for s in summaries)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'':{name_w}}  {lo:9.2f}{unit}{'':{max(width - 20, 1)}}{hi:9.2f}{unit}"
    )
    for s in summaries:
        axis = [" "] * width
        for x in range(col(s.minimum), col(s.maximum) + 1):
            axis[x] = "-"
        for x in range(col(s.q1), col(s.q3) + 1):
            axis[x] = "="
        axis[col(s.median)] = "|"
        lines.append(
            f"{s.name.ljust(name_w)}  [{''.join(axis)}]  "
            f"med={s.median:7.2f}{unit} IQR=[{s.q1:7.2f},{s.q3:7.2f}] n={s.count}"
        )
    return "\n".join(lines)
