"""Command-line interface: ``python -m repro <command>``.

Exposes the full workflow without writing any Python:

* ``machines`` / ``apps`` — inspect the simulated testbed,
* ``baseline`` — solo execution times of one app at every P-state,
* ``collect`` — run the Table V loop nest and write a CSV dataset,
* ``train`` — fit a model on a dataset and save it as JSON,
* ``evaluate`` — the 12-model accuracy grid for a dataset,
* ``predict`` — predict a placement's time from a saved model,
* ``registry`` — push/list/show versioned models in a local or remote
  registry, plus ``serve`` (the HTTP artifact service, or a pull-through
  read replica of an upstream registry with ``--mirror URL``), ``gc``
  (prune old versions), ``tombstone`` (block a bad version without
  deleting it), and ``pull`` (warm the local blob cache),
* ``serve`` — run the micro-batched asyncio prediction service from a
  local registry directory or a remote registry (``--registry-url``),
  with optional admission control and hot-reload,
* ``sched`` — the online degradation-aware cluster scheduler:
  ``serve`` (simulated fleet + placement/migration/DVFS loop),
  ``submit`` (enqueue jobs), ``status`` (cluster or per-job JSON),
* ``suite`` — declarative experiment suites over a content-addressed
  artifact store: ``run`` (incremental execution — unchanged cases are
  resolved from the store, killed runs resume), ``status`` (what a run
  would do), ``explain`` (why each node's key is what it is), ``gc``
  (drop artifacts the current spec no longer reaches),
* ``table`` / ``figure`` — regenerate a paper table or figure,
* ``report`` — collate benchmark artifacts into one reproduction report,
* ``obs summary`` — aggregate + span tree view of captured traces,
* ``obs collector`` — standalone span collector the fleet streams to.

``collect``, ``train``, ``evaluate``, ``serve``, and ``sched serve``
accept ``--trace PATH``: the run records :mod:`repro.obs` spans and
writes them as Chrome trace-event JSON on exit (open in Perfetto, or
inspect with ``repro obs summary PATH``).  ``--otlp PATH`` additionally
exports OTLP/JSON, and ``--trace-collector URL`` streams completed spans
to a collector service as they finish (``serve --workers N`` spawns an
internal collector automatically so every worker's spans land in one
stitched trace).  Without the flags the null tracer stays installed and
instrumentation is a no-op.

Every command prints plain text and exits nonzero on user error, so the
CLI composes with shell pipelines.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _get_machine(key: str):
    from .machine.processor import get_processor

    try:
        return get_processor(key)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None


def _get_apps(names: list[str]):
    from .workloads.suite import get_application

    try:
        return [get_application(n) for n in names]
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None


def _check_workers(args) -> None:
    if getattr(args, "workers", 1) < 1:
        raise SystemExit("error: --workers must be >= 1")


def _verify_dataset(args, dataset) -> None:
    """Apply the ``--verify-manifest`` policy after loading a dataset CSV."""
    mode = getattr(args, "verify_manifest", "warn")
    if mode == "skip":
        return
    from .harness.manifest import check_dataset_manifest

    problems = check_dataset_manifest(dataset, args.data)
    if not problems:
        return
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    if mode == "strict":
        raise SystemExit(
            "error: dataset provenance verification failed "
            "(--verify-manifest strict)"
        )


# ------------------------------------------------------------- commands


def _cmd_machines(_args) -> int:
    from .machine.processor import PROCESSOR_CATALOG
    from .reporting.tables import render_table

    rows = [
        [
            key,
            proc.name,
            proc.num_cores,
            f"{proc.llc.size_mb:.0f}MB",
            ", ".join(f"{f:.2f}" for f in proc.pstates.frequencies_ghz),
        ]
        for key, proc in PROCESSOR_CATALOG.items()
    ]
    print(
        render_table(
            ["key", "processor", "cores", "L3", "P-states (GHz)"],
            rows,
            title="Machine catalog",
        )
    )
    return 0


def _cmd_apps(args) -> int:
    from .reporting.tables import render_table
    from .workloads.suite import all_applications, intended_class

    machine = _get_machine(args.machine)
    cap = machine.llc.size_bytes
    rows = [
        [
            app.name,
            app.suite,
            app.solo_memory_intensity(cap),
            intended_class(app.name).roman,
        ]
        for app in all_applications()
    ]
    print(
        render_table(
            ["application", "suite", f"memory intensity @ {machine.name}", "class"],
            rows,
            title="Benchmark suite (Table III)",
        )
    )
    return 0


def _cmd_baseline(args) -> int:
    from .reporting.tables import render_table
    from .sim.engine import SimulationEngine

    machine = _get_machine(args.machine)
    (app,) = _get_apps([args.app])
    engine = SimulationEngine(machine)
    rows = []
    for pstate in machine.pstates:
        run = engine.baseline(app, pstate=pstate)
        rows.append(
            [
                pstate.frequency_ghz,
                run.target.execution_time_s,
                run.target.memory_intensity,
                run.target.miss_ratio,
            ]
        )
    print(
        render_table(
            ["frequency (GHz)", "baseline time (s)", "memory intensity", "LLC miss ratio"],
            rows,
            title=f"Baselines: {app.name} on {machine.name}",
        )
    )
    return 0


def _cmd_collect(args) -> int:
    from .harness.collection import collect_training_data
    from .sim.engine import SimulationEngine
    from .sim.solve_cache import SolveCache

    machine = _get_machine(args.machine)
    engine = SimulationEngine(
        machine, cache=None if args.no_cache else SolveCache()
    )
    kwargs = {}
    if args.targets:
        kwargs["targets"] = _get_apps(args.targets.split(","))
    if args.co_apps:
        kwargs["co_apps"] = _get_apps(args.co_apps.split(","))
    if args.counts:
        try:
            kwargs["counts"] = tuple(int(c) for c in args.counts.split(","))
        except ValueError:
            raise SystemExit(f"error: invalid counts {args.counts!r}") from None
    try:
        dataset = collect_training_data(
            engine,
            rng=np.random.default_rng(args.seed),
            workers=args.workers,
            batch_solve=not args.no_batch_solve,
            **kwargs,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    dataset.to_csv(args.output)
    from .harness.manifest import manifest_path_for, write_manifest

    write_manifest(dataset, args.output, seed=args.seed)
    print(
        f"wrote {len(dataset)} observations to {args.output} "
        f"(manifest: {manifest_path_for(args.output)})"
    )
    if args.stats:
        print(engine.stats.summary())
    return 0


def _cmd_train(args) -> int:
    from .core.ensemble import EnsemblePredictor
    from .core.feature_sets import FeatureSet
    from .core.methodology import ModelKind, PerformancePredictor
    from .core.persistence import save_artifact
    from .harness.datasets import ObservationDataset

    _check_workers(args)
    try:
        dataset = ObservationDataset.from_csv(args.data)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read dataset: {exc}") from None
    _verify_dataset(args, dataset)
    try:
        kind = ModelKind(args.model)
        feature_set = FeatureSet(args.features.upper())
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.ensemble:
        if args.ensemble < 2:
            raise SystemExit("error: --ensemble needs at least 2 members")
        artifact = EnsemblePredictor(
            kind,
            feature_set,
            n_members=args.ensemble,
            seed=args.seed,
            workers=args.workers,
        )
        label = f"{kind.value}/{feature_set.value} x{args.ensemble} ensemble"
    else:
        artifact = PerformancePredictor(kind, feature_set, seed=args.seed)
        label = f"{kind.value}/{feature_set.value}"
    artifact.fit(list(dataset))
    save_artifact(artifact, args.output)
    print(
        f"trained {label} on {len(dataset)} "
        f"observations from {dataset.processor_name}; saved to {args.output}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    from .core.fitstats import FitStats
    from .core.methodology import evaluate_models
    from .harness.datasets import ObservationDataset
    from .reporting.tables import render_table

    _check_workers(args)
    try:
        dataset = ObservationDataset.from_csv(args.data)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read dataset: {exc}") from None
    _verify_dataset(args, dataset)
    fit_stats = FitStats()
    evaluations = evaluate_models(
        list(dataset),
        repetitions=args.repetitions,
        seed=args.seed,
        workers=args.workers,
        batched_restarts=args.batched_restarts,
        stats=fit_stats,
    )
    rows = [
        [
            e.kind.value,
            e.feature_set.value,
            e.result.mean_train_mpe,
            e.result.mean_test_mpe,
            e.result.mean_train_nrmse,
            e.result.mean_test_nrmse,
        ]
        for e in evaluations
    ]
    print(
        render_table(
            ["technique", "set", "train MPE", "test MPE", "train NRMSE", "test NRMSE"],
            rows,
            title=(
                f"Model accuracy on {dataset.processor_name} "
                f"({args.repetitions} partitions, errors in %)"
            ),
        )
    )
    if args.stats:
        print(fit_stats.summary())
    return 0


def _cmd_predict(args) -> int:
    from .core.ensemble import EnsemblePredictor
    from .core.persistence import PersistenceError, load_artifact
    from .harness.baselines import collect_baselines
    from .sim.engine import SimulationEngine

    try:
        artifact = load_artifact(args.model)
    except (OSError, PersistenceError) as exc:
        raise SystemExit(f"error: cannot load model: {exc}") from None
    is_ensemble = isinstance(artifact, EnsemblePredictor)
    if args.interval and not is_ensemble:
        raise SystemExit(
            "error: --interval needs an ensemble artifact; train one with "
            "'repro train --ensemble N'"
        )
    machine = _get_machine(args.machine)
    engine = SimulationEngine(machine)
    co_names = args.co_apps.split(",") if args.co_apps else []
    apps = _get_apps([args.target] + co_names)
    frequency = args.frequency or machine.pstates.fastest.frequency_ghz
    try:
        pstate = machine.pstates.at_frequency(frequency)
    except Exception as exc:
        raise SystemExit(f"error: {exc}") from None
    table = collect_baselines(engine, sorted(set(apps), key=lambda a: a.name))
    target_base = table.get(args.target, pstate.frequency_ghz)
    co_bases = [table.get(n, pstate.frequency_ghz) for n in co_names]
    if is_ensemble:
        result = artifact.predict_interval(target_base, co_bases)
        predicted = result.mean_s
    else:
        predicted = artifact.predict_time(target_base, co_bases)
    print(f"baseline {args.target}: {target_base.wall_time_s:.1f} s")
    print(
        f"predicted with {len(co_names)} co-runner(s) "
        f"at {pstate.frequency_ghz:.2f} GHz: {predicted:.1f} s "
        f"({predicted / target_base.wall_time_s:.3f}x baseline)"
    )
    if args.interval:
        lo, hi = result.interval(k=2.0)
        print(
            f"ensemble disagreement: +/- {result.std_s:.1f} s "
            f"(2-sigma band [{lo:.1f}, {hi:.1f}] s, "
            f"relative spread {100.0 * result.relative_spread:.2f}%)"
        )
    return 0


# ------------------------------------------------- serving and registry


def _open_registry(path: str):
    from .registry.local import ModelRegistry

    return ModelRegistry(path)


def _open_backend(args):
    """Local directory or remote registry, from --registry/--registry-url."""
    url = getattr(args, "registry_url", None)
    path = getattr(args, "registry", None)
    if url and path:
        raise SystemExit(
            "error: pass either --registry DIR or --registry-url URL, not both"
        )
    if url:
        cache = getattr(args, "cache", None)
        if not cache:
            raise SystemExit(
                "error: --registry-url needs --cache DIR for the local "
                "content-addressed blob cache"
            )
        from .registry.client import HttpBackend
        from .registry.local import RegistryError

        try:
            return HttpBackend(url, cache, token=getattr(args, "token", None))
        except RegistryError as exc:
            raise SystemExit(f"error: {exc}") from None
    if not path:
        raise SystemExit("error: pass --registry DIR or --registry-url URL")
    return _open_registry(path)


def _cmd_registry_push(args) -> int:
    from .core.persistence import PersistenceError, load_artifact
    from .registry.local import RegistryError

    try:
        artifact = load_artifact(args.model)
    except (OSError, PersistenceError) as exc:
        raise SystemExit(f"error: cannot load model: {exc}") from None
    backend = _open_backend(args)
    try:
        manifest = backend.push(args.name, artifact)
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(
        f"pushed {manifest.ref} ({manifest.artifact}, {manifest.kind}/"
        f"{manifest.feature_set}) sha256 {manifest.content_hash[:12]}"
    )
    return 0


def _cmd_registry_list(args) -> int:
    from .registry.local import RegistryError
    from .reporting.tables import render_table

    backend = _open_backend(args)
    try:
        manifests = backend.list()
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from None
    if not manifests:
        print(f"registry {backend.describe()} is empty")
        return 0
    rows = [
        [
            m.ref,
            m.artifact,
            f"{m.kind}/{m.feature_set}",
            m.processor_name or "-",
            m.train_size if m.train_size is not None else "-",
            m.created_at,
        ]
        for m in manifests
    ]
    print(
        render_table(
            ["model", "artifact", "technique", "processor", "train obs", "created"],
            rows,
            title=f"Model registry: {backend.describe()}",
        )
    )
    return 0


def _cmd_registry_show(args) -> int:
    import json

    from .registry.local import RegistryError

    try:
        manifest = _open_backend(args).resolve(args.ref)
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(json.dumps(manifest.to_dict(), indent=2))
    return 0


def _cmd_registry_serve(args) -> int:
    import asyncio

    from .registry.server import RegistryServer

    if args.mirror and args.registry:
        raise SystemExit(
            "error: pass either --registry DIR (serve local storage) or "
            "--mirror URL (read replica of an upstream), not both"
        )
    if args.mirror:
        from .registry.client import HttpBackend

        if args.token:
            raise SystemExit(
                "error: a --mirror replica is read-only; it cannot accept "
                "pushes, so --token does not apply"
            )
        cache_dir = args.cache or os.path.join(
            os.path.expanduser("~"), ".cache", "repro-registry-mirror"
        )
        backend = HttpBackend(args.mirror, cache_dir)
        source = f"upstream {args.mirror} (cache {cache_dir})"
    elif args.registry:
        backend = _open_registry(args.registry)
        source = args.registry
    else:
        raise SystemExit("error: need --registry DIR or --mirror URL")
    server = RegistryServer(
        backend, host=args.host, port=args.port, token=args.token
    )

    async def _run() -> None:
        await server.start()
        if args.mirror:
            mode = "pull-through read replica"
        else:
            mode = "push enabled" if args.token else "read-only (no --token)"
        print(
            f"registry server: {len(backend.names())} model(s) from "
            f"{source} on http://{args.host}:{server.port} ({mode})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()
            print(server.metrics.summary())

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_registry_gc(args) -> int:
    from .registry.local import RegistryError

    try:
        report = _open_registry(args.registry).gc(
            args.keep, dry_run=args.dry_run
        )
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(report.summary())
    for ref in report.removed:
        verb = "would remove" if report.dry_run else "removed"
        print(f"  {verb} {ref}")
    return 0


def _cmd_registry_tombstone(args) -> int:
    from .registry.local import RegistryError

    registry = _open_registry(args.registry)
    try:
        if args.undo:
            lifted = registry.untombstone(args.ref)
            print(
                f"untombstoned {args.ref}"
                if lifted
                else f"{args.ref} was not tombstoned"
            )
        else:
            registry.tombstone(args.ref, reason=args.reason)
            print(
                f"tombstoned {args.ref}"
                + (f" ({args.reason})" if args.reason else "")
                + "; bytes retained, resolution blocked"
            )
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from None
    return 0


def _cmd_registry_pull(args) -> int:
    from .registry.local import RegistryError

    backend = _open_backend(args)
    if not getattr(args, "registry_url", None):
        raise SystemExit("error: pull needs --registry-url (and --cache)")
    try:
        _artifact, manifest = backend.get(args.ref)
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(
        f"pulled {manifest.ref} ({manifest.artifact}, {manifest.kind}/"
        f"{manifest.feature_set}) sha256 {manifest.content_hash[:12]}; "
        f"cached under {backend.cache_dir}"
    )
    return 0


def _cmd_serve_tier(args) -> int:
    """The routed multi-worker path: ``serve --workers/--canary/--shadow``.

    Handles its own tracing (``main()`` skips the generic wrapper for
    the tier): worker spans only leave their processes through a
    collector, so ``--trace``/``--otlp`` spawn an in-process
    :class:`~repro.obs.collector.CollectorThread`, every worker and the
    router stream spans to it, and the stitched multi-process trace is
    exported on shutdown.  ``--trace-collector URL`` streams to an
    external collector instead.
    """
    import signal
    import threading

    from .serve.router import ServingTier, parse_canary, parse_shadow

    registry = _open_backend(args)
    try:
        canary = tuple(parse_canary(c) for c in (args.canary or []))
        shadow = tuple(parse_shadow(s) for s in (args.shadow or []))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    trace_path = getattr(args, "trace", None)
    otlp_path = getattr(args, "otlp", None)
    stream_url = getattr(args, "trace_collector", None)
    collector = None
    tracer = None
    if not stream_url and (trace_path or otlp_path):
        from .obs.collector import CollectorThread

        collector = CollectorThread()
        collector.start()
        stream_url = collector.endpoint
    if stream_url:
        from .obs.stream import SpanSender, StreamingTracer
        from .obs.trace import set_tracer

        tracer = StreamingTracer(
            SpanSender(stream_url, resource={"service": "serve-router"})
        )
        set_tracer(tracer)
    tier = ServingTier(
        registry,
        workers=args.workers,
        host=args.host,
        port=args.port,
        canary=canary,
        shadow=shadow,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_backlog=args.max_backlog,
        hot_reload_s=args.hot_reload,
        trace_stream=stream_url,
    )
    tier.start()
    names = registry.names()
    routing = "".join(
        f", canary {spec.ref} at {100.0 * spec.fraction:g}%" for spec in canary
    ) + "".join(f", shadow {spec.ref}" for spec in shadow)
    if stream_url:
        routing += f", spans -> {stream_url}"
    print(
        f"serving {len(names)} model(s) {names} from {registry.describe()} "
        f"on http://{args.host}:{tier.port} with {args.workers} worker "
        f"process(es){routing}"
    )
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
        print("shutting down (SIGTERM)")
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        tier.stop()
        if tracer is not None:
            from .obs.trace import disable

            tracer.close()
            disable()
        if collector is not None:
            if trace_path:
                spans = collector.export_chrome(trace_path)
                print(f"wrote {spans} trace span(s) to {trace_path}")
            if otlp_path:
                spans = collector.export_otlp(otlp_path)
                print(f"wrote {spans} OTLP span(s) to {otlp_path}")
            collector.stop()
        elif tracer is not None and (trace_path or otlp_path):
            # External collector owns the fleet trace; local files get
            # the router-side spans this process retained.
            if trace_path:
                spans = tracer.export_chrome(trace_path)
                print(f"wrote {spans} router span(s) to {trace_path}")
            if otlp_path:
                from .obs.otlp import write_otlp

                spans = write_otlp(
                    otlp_path,
                    [tracer.serialize(s) for s in tracer.spans()],
                    default_resource={"service": "serve-router"},
                )
                print(f"wrote {spans} router OTLP span(s) to {otlp_path}")
        print(f"worker exit code(s): {tier.worker_exitcodes}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve.server import PredictionServer

    if args.workers > 1 or args.canary or args.shadow:
        return _cmd_serve_tier(args)
    registry = _open_backend(args)
    server = PredictionServer(
        registry,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_backlog=args.max_backlog,
        hot_reload_s=args.hot_reload,
    )

    async def _run() -> None:
        await server.start()
        names = registry.names()
        extras = ""
        if args.max_backlog is not None:
            extras += f", max_backlog={args.max_backlog}"
        if args.hot_reload is not None:
            extras += f", hot_reload={args.hot_reload}s"
        print(
            f"serving {len(names)} model(s) {names} from "
            f"{registry.describe()} on http://{args.host}:{server.port} "
            f"(max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms"
            f"{extras})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()
            print(server.metrics.summary())

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _parse_fleet_specs(specs: list[str]):
    """``NAME[:COUNT]`` block specs -> :class:`MachineConfig` list."""
    from .sched.fleet import MachineConfig

    configs = []
    for spec in specs:
        name, sep, count_text = spec.partition(":")
        try:
            count = int(count_text) if sep else 1
        except ValueError:
            raise SystemExit(
                f"error: bad --machine spec {spec!r}; use NAME[:COUNT]"
            ) from None
        if count < 1:
            raise SystemExit("error: --machine COUNT must be >= 1")
        configs.append(MachineConfig(_get_machine(name), count=count))
    return configs


def _cmd_sched_serve(args) -> int:
    import asyncio

    from .harness.baselines import collect_baselines
    from .sched.fleet import FleetState
    from .sched.governor import GovernorObjective
    from .sched.service import RemoteScorer, SchedulerService
    from .sim.engine import SimulationEngine, SolveCache
    from .workloads.suite import all_applications

    configs = _parse_fleet_specs(args.machine or ["e5649:4"])
    try:
        fleet = FleetState(configs)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    scorer = None
    if args.predictions:
        if not args.model:
            raise SystemExit("error: --predictions needs --model NAME")
        host, _sep, port_text = args.predictions.rpartition(":")
        try:
            scorer = RemoteScorer(
                host or "127.0.0.1", int(port_text), model=args.model
            )
        except ValueError:
            raise SystemExit(
                f"error: bad --predictions address {args.predictions!r}; "
                f"use HOST:PORT"
            ) from None

    # Solo baselines per distinct processor: the slowdown denominator and
    # the feature-row source the whole scheduler scores against.
    apps = all_applications()
    cache = SolveCache()
    baselines = {}
    for cfg in configs:
        if cfg.processor.name in baselines:
            continue
        engine = SimulationEngine(cfg.processor, cache=cache)
        baselines[cfg.processor.name] = collect_baselines(engine, apps)

    try:
        server = SchedulerService(
            fleet,
            baselines,
            scorer=scorer,
            policy=args.policy,
            round_size=args.round_size,
            max_candidates=args.max_candidates,
            migrate_threshold=args.migrate_threshold,
            migrate_margin=args.migrate_margin,
            migrate_every=args.migrate_every,
            governor_objective=(
                GovernorObjective(args.governor) if args.governor else None
            ),
            governor_deadline_s=args.deadline,
            host=args.host,
            port=args.port,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    async def _run() -> None:
        await server.start()
        extras = ""
        if scorer is not None:
            extras += f", scoring via {args.predictions} model={args.model}"
        if args.governor:
            extras += f", governor={args.governor}"
        if args.migrate_threshold is not None:
            extras += f", migrate_threshold={args.migrate_threshold}"
        print(
            f"scheduler: {fleet.n_nodes} node(s) / {fleet.total_cores} "
            f"core(s) on http://{args.host}:{server.port} "
            f"(policy={args.policy}{extras})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()
            print(server.metrics.summary())

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_sched_submit(args) -> int:
    from .sched.service import SchedulerClient
    from .serve.client import ClientError

    if args.count != 1 and len(args.apps) != 1:
        raise SystemExit("error: --count takes exactly one app name")
    try:
        with SchedulerClient(args.host, args.port) as client:
            if len(args.apps) == 1:
                payload = client.submit(args.apps[0], count=args.count)
            else:
                payload = client.submit(args.apps)
    except ClientError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(
            f"error: scheduler at {args.host}:{args.port} is "
            f"unreachable: {exc}"
        ) from None
    ids = payload["ids"]
    print(
        f"submitted {len(ids)} job(s): ids {ids[0]}..{ids[-1]}; "
        f"queue depth {payload['queue_depth']}"
    )
    return 0


def _cmd_sched_status(args) -> int:
    import json

    from .sched.service import SchedulerClient
    from .serve.client import ClientError

    try:
        with SchedulerClient(args.host, args.port) as client:
            body = (
                client.job(args.job) if args.job is not None
                else client.cluster()
            )
    except ClientError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(
            f"error: scheduler at {args.host}:{args.port} is "
            f"unreachable: {exc}"
        ) from None
    print(json.dumps(body, indent=2))
    return 0


def _open_suite(args):
    from .suite import ArtifactStore, SuiteSpecError, load_suite

    try:
        suite = load_suite(args.spec)
    except SuiteSpecError as exc:
        raise SystemExit(f"error: {exc}") from None
    return suite, ArtifactStore(args.store)


def _cmd_suite_run(args) -> int:
    from .suite import SuiteRunner

    _check_workers(args)
    suite, store = _open_suite(args)
    runner = SuiteRunner(
        suite,
        store,
        workers=args.workers,
        force=args.force,
        batch_solve=not args.no_batch,
    )
    report = runner.run()
    print(report.summary())
    if args.stats:
        print(runner.stats.summary())
    return 0 if report.ok else 1


def _cmd_suite_status(args) -> int:
    from .suite import SuiteRunner

    suite, store = _open_suite(args)
    rows = SuiteRunner(suite, store).plan()
    cached = sum(1 for _, _, hit in rows if hit)
    print(
        f"suite {suite.name}: {len(rows)} node(s), {cached} cached, "
        f"{len(rows) - cached} to run (store {store.describe()})"
    )
    for node, key, hit in rows:
        state = "cached" if hit else ("pending" if key is None else "to run")
        print(f"  {node.node_id}: {state}")
    return 0


def _cmd_suite_explain(args) -> int:
    from .suite import SuiteRunner

    suite, store = _open_suite(args)
    try:
        print(SuiteRunner(suite, store).explain(args.node))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    return 0


def _cmd_suite_gc(args) -> int:
    from .suite import SuiteRunner

    suite, store = _open_suite(args)
    keep = SuiteRunner(suite, store).keep_keys()
    report = store.gc(keep, dry_run=args.dry_run)
    print(report.summary())
    verb = "would remove" if report.dry_run else "removed"
    for key in report.removed_nodes:
        print(f"  {verb} node {key[:16]}")
    for blob in report.removed_blobs:
        print(f"  {verb} blob {blob[:16]}")
    return 0


def _cmd_obs_summary(args) -> int:
    from .obs.summary import load_trace, render_summary

    try:
        events = []
        for path in args.trace:
            events.extend(load_trace(path))
        print(render_summary(events, top=args.top, tree_spans=args.tree_spans))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    return 0


def _cmd_obs_collector(args) -> int:
    """Standalone span collector: the fleet's ``--trace-collector`` target."""
    import asyncio

    from .obs.collector import CollectorServer

    server = CollectorServer(
        host=args.host, port=args.port, max_spans=args.max_spans
    )

    async def _run() -> None:
        await server.start()
        print(
            f"span collector on http://{args.host}:{server.port} "
            f"(POST /v1/spans; JSON batch or JSON-lines)"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    if args.output:
        spans = server.export_chrome(args.output)
        print(f"wrote {spans} trace span(s) to {args.output}")
    if args.otlp:
        spans = server.export_otlp(args.otlp)
        print(f"wrote {spans} OTLP span(s) to {args.otlp}")
    print(
        f"collector: received={server.received} stored={len(server)} "
        f"dropped={server.dropped} client_dropped={server.client_dropped}"
    )
    return 0


def _cmd_table(args) -> int:
    from .harness import experiments
    from .reporting.tables import render_table

    _check_workers(args)
    ctx = experiments.ExperimentContext(
        repetitions=args.repetitions, workers=args.workers
    )
    renderers = {
        1: lambda: render_table(
            ["Feature name", "aspect measured"], experiments.table1_rows(),
            title="Table I"),
        2: lambda: render_table(
            ["Set", "features"], experiments.table2_rows(), title="Table II"),
        3: lambda: render_table(
            ["Application", "memory intensity", "Class"],
            experiments.table3_rows(ctx), title="Table III"),
        4: lambda: render_table(
            ["Processor", "cores", "L3", "frequency range"],
            experiments.table4_rows(), title="Table IV"),
        5: lambda: render_table(
            ["Processor", "P-states (GHz)", "co-location counts"],
            experiments.table5_rows(), title="Table V"),
        6: lambda: render_table(
            ["num cg", "time (s)", "normalized", "linear-F MPE", "neural-F MPE"],
            experiments.table6_rows(ctx), title="Table VI"),
    }
    if args.number not in renderers:
        raise SystemExit(f"error: no Table {args.number}; the paper has I-VI")
    print(renderers[args.number]())
    return 0


def _cmd_report(args) -> int:
    """Collate benchmark artifacts into one reproduction report."""
    from pathlib import Path

    results_dir = Path(args.results)
    if not results_dir.is_dir():
        raise SystemExit(
            f"error: no results directory at {results_dir}; run "
            f"'pytest benchmarks/ --benchmark-only' first"
        )
    artifacts = sorted(results_dir.glob("*.txt"))
    if not artifacts:
        raise SystemExit(f"error: {results_dir} contains no artifacts")
    sections = []
    order = ["table", "fig", "pca", "ablation", "extension", "generalization"]

    def sort_key(path: Path) -> tuple[int, str]:
        for i, prefix in enumerate(order):
            if path.stem.startswith(prefix):
                return (i, path.stem)
        return (len(order), path.stem)

    for path in sorted(artifacts, key=sort_key):
        sections.append(path.read_text().rstrip())
    header = (
        "Reproduction report: co-location aware performance modeling\n"
        f"(collated from {len(artifacts)} artifacts in {results_dir})\n"
    )
    body = header + "\n\n" + "\n\n".join(sections) + "\n"
    if args.output:
        Path(args.output).write_text(body)
        print(f"wrote report to {args.output} ({len(artifacts)} artifacts)")
    else:
        print(body)
    return 0


def _cmd_figure(args) -> int:
    from .harness import experiments
    from .reporting.figures import render_distributions, render_series, summarize

    _check_workers(args)
    ctx = experiments.ExperimentContext(
        repetitions=args.repetitions, workers=args.workers
    )
    spec = {
        1: ("e5649", "mpe", "Figure 1: MPE, 6-core"),
        2: ("e5-2697v2", "mpe", "Figure 2: MPE, 12-core"),
        3: ("e5649", "nrmse", "Figure 3: NRMSE, 6-core"),
        4: ("e5-2697v2", "nrmse", "Figure 4: NRMSE, 12-core"),
    }
    if args.number in spec:
        machine, metric, title = spec[args.number]
        labels, series = experiments.figure_series(ctx, machine, metric)
        print(render_series(labels, series, title=title, unit="%"))
        return 0
    if args.number == 5:
        dists = experiments.figure5a_distributions(ctx)
        print(render_distributions(
            [summarize(k, v) for k, v in dists.items()],
            title="Figure 5(a): execution time distributions, 6-core", unit="s"))
        errors = experiments.figure5b_errors(ctx, repetitions=5)
        print()
        print(render_distributions(
            [summarize(k, v) for k, v in errors.items()],
            title="Figure 5(b): neural/F percent error distributions", unit="%"))
        return 0
    raise SystemExit(f"error: no Figure {args.number}; the paper has 1-5")


# --------------------------------------------------------------- parser


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """The shared --registry / --registry-url backend selector."""
    parser.add_argument("--registry", help="local registry directory")
    parser.add_argument("--registry-url", dest="registry_url",
                        help="remote registry server URL "
                             "(http://host:port; needs --cache)")
    parser.add_argument("--cache", help="content-addressed blob cache "
                                        "directory for --registry-url")
    parser.add_argument("--token", help="bearer token for pushes to a "
                                        "remote registry")


def _add_export_trace_args(parser: argparse.ArgumentParser) -> None:
    """The shared --otlp / --trace-collector span-export options."""
    parser.add_argument("--otlp", metavar="PATH",
                        help="also export the spans as OTLP/JSON to PATH")
    parser.add_argument("--trace-collector", dest="trace_collector",
                        metavar="URL",
                        help="stream completed spans to a trace collector "
                             "(see 'repro obs collector') instead of "
                             "buffering them in-process")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Co-location aware performance modeling (Dauwe et al. 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list catalog machines").set_defaults(
        func=_cmd_machines
    )

    p = sub.add_parser("apps", help="list the Table III benchmark suite")
    p.add_argument("--machine", default="e5649", help="machine for intensities")
    p.set_defaults(func=_cmd_apps)

    p = sub.add_parser("baseline", help="solo runs of one app at every P-state")
    p.add_argument("--machine", default="e5649")
    p.add_argument("--app", required=True)
    p.set_defaults(func=_cmd_baseline)

    p = sub.add_parser("collect", help="collect a training dataset (CSV)")
    p.add_argument("--machine", default="e5649")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--targets", help="comma-separated target apps (default: all 11)")
    p.add_argument("--co-apps", dest="co_apps", help="comma-separated co-apps")
    p.add_argument("--counts", help="comma-separated co-location counts")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sweep (default 1; any "
                        "count yields the identical dataset)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable steady-state solve memoization")
    p.add_argument("--no-batch-solve", action="store_true",
                   help="use the serial per-scenario reference path instead "
                        "of the batched steady-state solver (bit-identical, "
                        "just slower)")
    p.add_argument("--stats", action="store_true",
                   help="print engine solve/cache statistics after collection")
    p.add_argument("--trace", metavar="PATH",
                   help="record a Chrome trace of the sweep to PATH")
    _add_export_trace_args(p)
    p.set_defaults(func=_cmd_collect)

    p = sub.add_parser("train", help="train a model from a dataset CSV")
    p.add_argument("--data", required=True)
    p.add_argument("--model", choices=["linear", "neural"], default="neural")
    p.add_argument("--features", default="F", help="feature set A-F")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="processes for ensemble member fitting; "
                        "any count trains the identical ensemble")
    p.add_argument("--ensemble", type=int, metavar="N",
                   help="train a bootstrap ensemble of N members (for "
                        "uncertainty intervals) instead of a single model")
    p.add_argument("--verify-manifest", dest="verify_manifest",
                   choices=["warn", "strict", "skip"], default="warn",
                   help="check the dataset's provenance sidecar on load: "
                        "warn on problems (default), fail on them, or skip "
                        "the check")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--trace", metavar="PATH",
                   help="record a Chrome trace of the fit to PATH")
    _add_export_trace_args(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("evaluate", help="12-model accuracy grid for a dataset")
    p.add_argument("--data", required=True)
    p.add_argument("--verify-manifest", dest="verify_manifest",
                   choices=["warn", "strict", "skip"], default="warn",
                   help="check the dataset's provenance sidecar on load: "
                        "warn on problems (default), fail on them, or skip "
                        "the check")
    p.add_argument("--repetitions", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="processes for the validation sweeps; "
                        "any count yields identical results")
    p.add_argument("--batched-restarts", dest="batched_restarts",
                   action="store_true",
                   help="stacked multi-restart SCG fast path for neural fits "
                        "(bit-identical to the serial restart loop)")
    p.add_argument("--stats", action="store_true",
                   help="print fit statistics after the grid")
    p.add_argument("--trace", metavar="PATH",
                   help="record a Chrome trace of the grid to PATH")
    _add_export_trace_args(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("predict", help="predict a placement from a saved model")
    p.add_argument("--model", required=True, help="model JSON from 'train'")
    p.add_argument("--machine", default="e5649")
    p.add_argument("--target", required=True)
    p.add_argument("--co-apps", dest="co_apps", default="",
                   help="comma-separated co-runners, e.g. cg,cg,cg")
    p.add_argument("--frequency", type=float, help="P-state GHz (default fastest)")
    p.add_argument("--interval", action="store_true",
                   help="also print the ensemble mean +/- disagreement band "
                        "(needs an artifact from 'train --ensemble')")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser(
        "serve", help="serve registry models over HTTP (asyncio, micro-batched)"
    )
    _add_backend_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8391)
    p.add_argument("--max-batch", dest="max_batch", type=int, default=32,
                   help="micro-batch flush size (1 disables coalescing)")
    p.add_argument("--max-wait-ms", dest="max_wait_ms", type=float, default=2.0,
                   help="micro-batch flush deadline in milliseconds")
    p.add_argument("--max-backlog", dest="max_backlog", type=int, default=None,
                   help="per-model admission bound: shed requests with 429 "
                        "once this many rows are queued (default: never shed)")
    p.add_argument("--hot-reload", dest="hot_reload", type=float, default=None,
                   metavar="SECONDS",
                   help="poll the registry for new latest versions every "
                        "SECONDS, pre-warming the resident-model cache "
                        "(with --workers, every worker polls its own shard)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes behind a shard-routing front "
                        "router (default 1: classic single-process server)")
    p.add_argument("--canary", action="append", metavar="NAME@VER:PCT",
                   help="route PCT%% of bare-NAME requests to NAME@VER "
                        "(e.g. band@2:10); repeatable, implies the router")
    p.add_argument("--shadow", action="append", metavar="NAME@VER",
                   help="mirror NAME requests to NAME@VER and export "
                        "prediction divergence metrics; repeatable, "
                        "implies the router")
    p.add_argument("--trace", metavar="PATH",
                   help="record request/batcher spans, written to PATH "
                        "when the server stops (with --workers the spans "
                        "of every worker process are collected and "
                        "stitched into one multi-process trace)")
    _add_export_trace_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "registry", help="manage the versioned model registry"
    )
    reg_sub = p.add_subparsers(dest="registry_command", required=True)

    rp = reg_sub.add_parser("push", help="push a trained model JSON as a new version")
    _add_backend_args(rp)
    rp.add_argument("--name", required=True, help="model name (bare, no @version)")
    rp.add_argument("--model", required=True, help="artifact JSON from 'train'")
    rp.set_defaults(func=_cmd_registry_push)

    rl = reg_sub.add_parser("list", help="list every registered model version")
    _add_backend_args(rl)
    rl.set_defaults(func=_cmd_registry_list)

    rs = reg_sub.add_parser("show", help="print one manifest as JSON")
    rs.add_argument("ref", help="model reference: name or name@version")
    _add_backend_args(rs)
    rs.set_defaults(func=_cmd_registry_show)

    rv = reg_sub.add_parser(
        "serve", help="serve a registry directory as an HTTP artifact "
                      "service, or mirror an upstream registry"
    )
    rv.add_argument("--registry", help="registry directory to serve")
    rv.add_argument("--mirror", metavar="URL",
                    help="serve as a pull-through read replica of this "
                         "upstream registry URL (mutually exclusive with "
                         "--registry)")
    rv.add_argument("--cache", help="blob/manifest cache directory for "
                                    "--mirror (default ~/.cache/"
                                    "repro-registry-mirror)")
    rv.add_argument("--host", default="127.0.0.1")
    rv.add_argument("--port", type=int, default=8100)
    rv.add_argument("--token", help="bearer token required for POST /v1/push "
                                    "(omit for a read-only mirror)")
    rv.set_defaults(func=_cmd_registry_serve)

    rg = reg_sub.add_parser(
        "gc", help="prune old versions, keeping the newest N live per name"
    )
    rg.add_argument("--registry", required=True, help="registry directory")
    rg.add_argument("--keep", required=True, type=int,
                    help="live versions to keep per model name")
    rg.add_argument("--dry-run", dest="dry_run", action="store_true",
                    help="report what would be removed without deleting")
    rg.set_defaults(func=_cmd_registry_gc)

    rt = reg_sub.add_parser(
        "tombstone", help="block a bad version everywhere without deleting it"
    )
    rt.add_argument("ref", help="explicit name@version to block")
    rt.add_argument("--registry", required=True, help="registry directory")
    rt.add_argument("--reason", default="", help="why the version is blocked")
    rt.add_argument("--undo", action="store_true",
                    help="lift the tombstone instead of placing one")
    rt.set_defaults(func=_cmd_registry_tombstone)

    rpl = reg_sub.add_parser(
        "pull", help="download one version into the local blob cache"
    )
    rpl.add_argument("ref", help="model reference: name or name@version")
    _add_backend_args(rpl)
    rpl.set_defaults(func=_cmd_registry_pull)

    p = sub.add_parser(
        "sched", help="online degradation-aware cluster scheduler"
    )
    sched_sub = p.add_subparsers(dest="sched_command", required=True)

    ss = sched_sub.add_parser(
        "serve", help="run the scheduler service over a simulated fleet"
    )
    ss.add_argument("--machine", action="append", metavar="NAME[:COUNT]",
                    help="fleet block: catalog machine and node count "
                         "(repeatable; default e5649:4)")
    ss.add_argument("--host", default="127.0.0.1")
    ss.add_argument("--port", type=int, default=8500)
    ss.add_argument("--policy", default="model",
                    choices=["model", "first-fit", "least-loaded"],
                    help="placement policy (model needs --predictions)")
    ss.add_argument("--predictions", metavar="HOST:PORT",
                    help="prediction service scoring placements (required "
                         "by --policy model and --governor)")
    ss.add_argument("--model", help="served model name the scorer queries")
    ss.add_argument("--round-size", dest="round_size", type=int, default=32,
                    help="jobs placed per scheduling round (one batched "
                         "predict per round)")
    ss.add_argument("--max-candidates", dest="max_candidates", type=int,
                    default=8,
                    help="candidate nodes scored per round")
    ss.add_argument("--migrate-threshold", dest="migrate_threshold",
                    type=float, default=None, metavar="REGRET",
                    help="regret (realized minus predicted slowdown) that "
                         "triggers migrating the worst running job "
                         "(default: never migrate)")
    ss.add_argument("--migrate-margin", dest="migrate_margin", type=float,
                    default=0.05,
                    help="predicted improvement a move must clear")
    ss.add_argument("--migrate-every", dest="migrate_every", type=int,
                    default=4,
                    help="consider migration every N scheduling rounds")
    ss.add_argument("--governor", default=None,
                    choices=["energy", "edp", "time"],
                    help="pick each placement's P-state by this objective")
    ss.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="per-job deadline constraining the governor")
    ss.add_argument("--trace", metavar="PATH",
                    help="record sched.round/predict/migrate spans, "
                         "written to PATH when the scheduler stops")
    _add_export_trace_args(ss)
    ss.set_defaults(func=_cmd_sched_serve)

    sj = sched_sub.add_parser(
        "submit", help="submit jobs to a running scheduler"
    )
    sj.add_argument("apps", nargs="+",
                    help="benchmark names (see 'repro apps')")
    sj.add_argument("--count", type=int, default=1,
                    help="copies of a single app")
    sj.add_argument("--host", default="127.0.0.1")
    sj.add_argument("--port", type=int, default=8500)
    sj.set_defaults(func=_cmd_sched_submit)

    st = sched_sub.add_parser(
        "status", help="cluster state (or one job's detail) as JSON"
    )
    st.add_argument("--job", type=int, default=None,
                    help="job id for a single-job view")
    st.add_argument("--host", default="127.0.0.1")
    st.add_argument("--port", type=int, default=8500)
    st.set_defaults(func=_cmd_sched_status)

    p = sub.add_parser(
        "suite",
        help="declarative experiment suites with incremental recompute",
    )
    suite_sub = p.add_subparsers(dest="suite_command", required=True)

    def _add_suite_args(sp) -> None:
        sp.add_argument("spec", help="suite spec file (.json or .toml)")
        sp.add_argument("--store", required=True,
                        help="content-addressed artifact store directory")

    sr = suite_sub.add_parser(
        "run", help="execute the suite; nodes already in the store are "
                    "skipped, so re-runs and killed runs resume"
    )
    _add_suite_args(sr)
    sr.add_argument("--workers", type=int, default=1,
                    help="processes per node for collection/evaluation; "
                         "any count yields identical artifacts")
    sr.add_argument("--force", action="store_true",
                    help="re-execute every node even when the store "
                         "resolves it")
    sr.add_argument("--no-batch", dest="no_batch", action="store_true",
                    help="disable the batched steady-state solver "
                         "(bit-identical, just slower)")
    sr.add_argument("--stats", action="store_true",
                    help="print suite run counters afterwards")
    sr.add_argument("--trace", metavar="PATH",
                    help="record a Chrome trace of the run to PATH")
    _add_export_trace_args(sr)
    sr.set_defaults(func=_cmd_suite_run)

    ss2 = suite_sub.add_parser(
        "status", help="show what a run would execute vs resolve, read-only"
    )
    _add_suite_args(ss2)
    ss2.set_defaults(func=_cmd_suite_status)

    se = suite_sub.add_parser(
        "explain", help="show each node's input key and provenance"
    )
    _add_suite_args(se)
    se.add_argument("--node", help="limit to one node id, with full detail")
    se.set_defaults(func=_cmd_suite_explain)

    sg = suite_sub.add_parser(
        "gc", help="drop store artifacts the spec no longer reaches"
    )
    _add_suite_args(sg)
    sg.add_argument("--dry-run", dest="dry_run", action="store_true",
                    help="report what would be removed without deleting")
    sg.set_defaults(func=_cmd_suite_gc)

    p = sub.add_parser("table", help="regenerate a paper table (1-6)")
    p.add_argument("number", type=int)
    p.add_argument("--repetitions", type=int, default=25)
    p.add_argument("--workers", type=int, default=1,
                   help="processes for the validation sweeps")
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("figure", help="regenerate a paper figure (1-5)")
    p.add_argument("number", type=int)
    p.add_argument("--repetitions", type=int, default=10)
    p.add_argument("--workers", type=int, default=1,
                   help="processes for the validation sweeps")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "report", help="collate benchmarks/results/ into one reproduction report"
    )
    p.add_argument("--results", default="benchmarks/results")
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    op = obs_sub.add_parser(
        "summary", help="aggregate + span-tree view of a captured trace"
    )
    op.add_argument("trace", nargs="+",
                    help="trace file(s): Chrome trace JSON written by "
                         "--trace and/or OTLP/JSON written by --otlp; "
                         "multiple files are merged into one summary")
    op.add_argument("--top", type=int, default=15,
                    help="rows in the by-name aggregate table")
    op.add_argument("--tree-spans", dest="tree_spans", type=int, default=120,
                    help="max spans printed across the span trees")
    op.set_defaults(func=_cmd_obs_summary)

    oc = obs_sub.add_parser(
        "collector", help="run a standalone span collector for the fleet"
    )
    oc.add_argument("--host", default="127.0.0.1")
    oc.add_argument("--port", type=int, default=8600)
    oc.add_argument("--max-spans", dest="max_spans", type=int,
                    default=500_000,
                    help="bounded span ring size (oldest evicted beyond it)")
    oc.add_argument("-o", "--output", metavar="PATH",
                    help="write the collected Chrome trace here on exit")
    oc.add_argument("--otlp", metavar="PATH",
                    help="write the collected spans as OTLP/JSON on exit")
    oc.set_defaults(func=_cmd_obs_collector)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    otlp_path = getattr(args, "otlp", None)
    collector_url = getattr(args, "trace_collector", None)
    if args.command == "obs" or not (
        trace_path or otlp_path or collector_url
    ):
        return args.func(args)
    if args.command == "serve" and (
        args.workers > 1 or args.canary or args.shadow
    ):
        # The multi-worker tier manages its own tracing: worker spans
        # only exist in worker processes, so _cmd_serve_tier runs an
        # in-process collector (or streams to --trace-collector) and
        # exports the stitched fleet trace itself.
        return args.func(args)
    # --trace/--otlp: record spans for the whole command, export on the
    # way out (including error exits, so partial runs still leave a
    # trace).  --trace-collector streams spans out as they finish
    # instead of (only) buffering them locally.
    from .obs.trace import disable, enable

    if collector_url:
        from .obs.stream import SpanSender, StreamingTracer
        from .obs.trace import set_tracer

        service = args.command
        if args.command == "sched":
            service = f"sched-{args.sched_command}"
        tracer = StreamingTracer(
            SpanSender(
                collector_url, resource={"service": service, "pid": os.getpid()}
            )
        )
        set_tracer(tracer)
    else:
        tracer = enable(service=args.command)
    try:
        return args.func(args)
    finally:
        if trace_path:
            spans = tracer.export_chrome(trace_path)
            print(f"wrote {spans} trace span(s) to {trace_path}")
        if otlp_path:
            from .obs.otlp import write_otlp

            spans = write_otlp(
                otlp_path,
                [tracer.serialize(span) for span in tracer.spans()],
                default_resource={
                    "service": tracer.service, "pid": os.getpid()
                },
            )
            print(f"wrote {spans} OTLP span(s) to {otlp_path}")
        if collector_url:
            tracer.close()
        disable()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
