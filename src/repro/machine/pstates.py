"""Processor performance states (P-states) and DVFS scaling.

P-states are the discrete voltage/frequency operating points of a multicore
processor (paper, Section IV-A4).  Lowering the frequency throttles the
compute-bound portion of an application while leaving memory latency (which
is set by the uncore/DRAM clock domain) essentially unchanged.  The paper
accounts for the P-state effect solely through the *baseline execution time
measured at each P-state*; this module provides the frequency ladder and the
scaling law the simulator uses to produce those baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PState", "PStateLadder", "DVFSError"]


class DVFSError(ValueError):
    """Raised for invalid P-state ladders or frequency requests."""


@dataclass(frozen=True, order=True)
class PState:
    """A single processor performance state.

    Attributes
    ----------
    frequency_ghz:
        Core clock frequency at this state, in GHz.
    voltage_v:
        Supply voltage at this state, in volts.  Used only by the energy
        extension (``repro.energy``); the performance model needs frequency
        only.
    index:
        Position in the ladder, ``0`` being the *highest*-frequency state
        (matching the common ``P0 = fastest`` convention).
    """

    frequency_ghz: float
    voltage_v: float = 1.0
    index: int = 0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0.0:
            raise DVFSError(f"frequency must be positive, got {self.frequency_ghz}")
        if self.voltage_v <= 0.0:
            raise DVFSError(f"voltage must be positive, got {self.voltage_v}")

    @property
    def frequency_hz(self) -> float:
        """Frequency in Hz."""
        return self.frequency_ghz * 1e9

    def cycle_time_s(self) -> float:
        """Duration of one core clock cycle in seconds."""
        return 1.0 / self.frequency_hz


@dataclass(frozen=True)
class PStateLadder:
    """An ordered set of P-states for one processor.

    States are stored fastest-first (P0 is the maximum frequency), matching
    ACPI convention.  The ladder is immutable; constructing one from an
    unsorted frequency list sorts it.
    """

    states: tuple[PState, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.states:
            raise DVFSError("a P-state ladder needs at least one state")
        freqs = [s.frequency_ghz for s in self.states]
        if sorted(freqs, reverse=True) != freqs:
            raise DVFSError("P-states must be ordered fastest-first")
        if len(set(freqs)) != len(freqs):
            raise DVFSError("duplicate P-state frequencies")

    @classmethod
    def from_frequencies(
        cls,
        frequencies_ghz: list[float] | tuple[float, ...],
        *,
        vmin: float = 0.8,
        vmax: float = 1.2,
    ) -> "PStateLadder":
        """Build a ladder from a list of frequencies (any order).

        Voltage is assigned by linear interpolation between ``vmin`` at the
        lowest frequency and ``vmax`` at the highest, a standard first-order
        DVFS approximation.
        """
        freqs = sorted(set(float(f) for f in frequencies_ghz), reverse=True)
        if not freqs:
            raise DVFSError("empty frequency list")
        fmax, fmin = freqs[0], freqs[-1]
        span = fmax - fmin
        states = []
        for i, f in enumerate(freqs):
            frac = 1.0 if span == 0.0 else (f - fmin) / span
            states.append(PState(frequency_ghz=f, voltage_v=vmin + frac * (vmax - vmin), index=i))
        return cls(states=tuple(states))

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self):
        return iter(self.states)

    def __getitem__(self, index: int) -> PState:
        return self.states[index]

    @property
    def fastest(self) -> PState:
        """The P0 (maximum frequency) state."""
        return self.states[0]

    @property
    def slowest(self) -> PState:
        """The lowest-frequency state."""
        return self.states[-1]

    @property
    def frequencies_ghz(self) -> tuple[float, ...]:
        """All ladder frequencies, fastest first."""
        return tuple(s.frequency_ghz for s in self.states)

    def at_frequency(self, frequency_ghz: float, *, tol: float = 1e-9) -> PState:
        """Return the state with exactly this frequency.

        Raises :class:`DVFSError` when no state matches; use
        :meth:`closest` for nearest-neighbour lookup.
        """
        for s in self.states:
            if abs(s.frequency_ghz - frequency_ghz) <= tol:
                return s
        raise DVFSError(
            f"no P-state at {frequency_ghz} GHz; ladder has {self.frequencies_ghz}"
        )

    def closest(self, frequency_ghz: float) -> PState:
        """Return the ladder state nearest to the requested frequency."""
        if frequency_ghz <= 0.0:
            raise DVFSError(f"frequency must be positive, got {frequency_ghz}")
        return min(self.states, key=lambda s: abs(s.frequency_ghz - frequency_ghz))

    def slowdown_factor(self, state: PState) -> float:
        """Compute-time inflation of ``state`` relative to the fastest state.

        Pure CPU-bound work at frequency *f* takes ``fmax / f`` times longer
        than at ``fmax``.  Memory-bound time is unaffected by core DVFS.
        """
        return self.fastest.frequency_ghz / state.frequency_ghz
