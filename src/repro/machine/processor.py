"""Multicore processor specifications (paper, Table IV).

A :class:`MulticoreProcessor` bundles everything the simulator needs to know
about one machine: the core count, the shared last-level cache geometry, the
DRAM interface, and the P-state ladder.  The two validation machines from the
paper (Intel Xeon E5649 and Xeon E5-2697v2) ship as catalog entries; users
can define additional machines to port the methodology (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .pstates import PStateLadder

__all__ = [
    "CacheGeometry",
    "DRAMConfig",
    "MulticoreProcessor",
    "PROCESSOR_CATALOG",
    "XEON_E5649",
    "XEON_E5_2697V2",
    "get_processor",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of the shared last-level cache.

    The paper's machines have inclusive L3 caches shared by all cores; lower
    cache levels are private and folded into the per-application baseline
    behaviour (the methodology observes only last-level accesses/misses).
    """

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 16
    hit_latency_ns: float = 12.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.line_bytes <= 0 or (self.line_bytes & (self.line_bytes - 1)) != 0:
            raise ValueError("line size must be a positive power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                "cache size must be a multiple of line_bytes * associativity"
            )
        if self.hit_latency_ns <= 0.0:
            raise ValueError("hit latency must be positive")

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity

    @property
    def size_mb(self) -> float:
        """Capacity in binary megabytes."""
        return self.size_bytes / (1024.0 * 1024.0)


@dataclass(frozen=True)
class DRAMConfig:
    """First-order DRAM interface model.

    ``idle_latency_ns`` is the unloaded round-trip latency of an LLC miss;
    ``peak_bandwidth_gbs`` bounds the aggregate miss traffic the memory
    system can sustain.  The queueing model in :mod:`repro.memsys.dram`
    inflates latency as utilization approaches the peak.
    """

    idle_latency_ns: float = 80.0
    peak_bandwidth_gbs: float = 25.0
    queue_shape: float = 0.5

    def __post_init__(self) -> None:
        if self.idle_latency_ns <= 0.0:
            raise ValueError("idle latency must be positive")
        if self.peak_bandwidth_gbs <= 0.0:
            raise ValueError("peak bandwidth must be positive")
        if self.queue_shape < 0.0:
            raise ValueError("queue shape must be non-negative")


@dataclass(frozen=True)
class MulticoreProcessor:
    """A complete machine description (one row of Table IV).

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"Xeon E5649"``.
    num_cores:
        Physical core count.  Hyperthreading is off throughout the paper, so
        cores == hardware contexts.
    llc:
        Shared last-level cache geometry.
    dram:
        DRAM interface parameters.
    pstates:
        DVFS ladder; the paper samples six states per machine (Table V).
    """

    name: str
    num_cores: int
    llc: CacheGeometry
    dram: DRAMConfig
    pstates: PStateLadder

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("core count must be positive")
        if not self.name:
            raise ValueError("processor needs a name")

    @property
    def max_co_located(self) -> int:
        """Maximum number of co-runners next to one target application.

        One core runs the target; the remaining ``num_cores - 1`` cores can
        host co-located applications (paper, Section IV-B3).
        """
        return self.num_cores - 1

    def validate_co_location_count(self, count: int) -> None:
        """Raise ``ValueError`` when ``count`` co-runners do not fit."""
        if count < 0:
            raise ValueError(f"co-location count must be non-negative, got {count}")
        if count > self.max_co_located:
            raise ValueError(
                f"{self.name} has {self.num_cores} cores; at most "
                f"{self.max_co_located} co-located applications fit, got {count}"
            )

    def with_pstates(self, frequencies_ghz: list[float]) -> "MulticoreProcessor":
        """Return a copy of this machine with a different P-state ladder."""
        return replace(self, pstates=PStateLadder.from_frequencies(frequencies_ghz))


def _mb(n: float) -> int:
    return int(n * 1024 * 1024)


#: Intel Xeon E5649 — 6 cores, 12 MB L3, 1.60–2.53 GHz (Table IV).  The six
#: P-states match the sampled frequencies of Table V.
XEON_E5649 = MulticoreProcessor(
    name="Xeon E5649",
    num_cores=6,
    llc=CacheGeometry(size_bytes=_mb(12), line_bytes=64, associativity=16,
                      hit_latency_ns=15.0),
    dram=DRAMConfig(idle_latency_ns=95.0, peak_bandwidth_gbs=14.0),
    pstates=PStateLadder.from_frequencies([2.53, 2.40, 2.13, 1.86, 1.73, 1.60]),
)

#: Intel Xeon E5-2697v2 — 12 cores, 30 MB L3, 1.20–2.70 GHz (Table IV).
XEON_E5_2697V2 = MulticoreProcessor(
    name="Xeon E5-2697v2",
    num_cores=12,
    llc=CacheGeometry(size_bytes=_mb(30), line_bytes=64, associativity=20,
                      hit_latency_ns=18.0),
    dram=DRAMConfig(idle_latency_ns=85.0, peak_bandwidth_gbs=30.0),
    pstates=PStateLadder.from_frequencies([2.70, 2.40, 2.10, 1.80, 1.50, 1.20]),
)

#: Machines used for validation in the paper, keyed by short name.
PROCESSOR_CATALOG: dict[str, MulticoreProcessor] = {
    "e5649": XEON_E5649,
    "e5-2697v2": XEON_E5_2697V2,
}


def get_processor(name: str) -> MulticoreProcessor:
    """Look up a catalog machine by short name (case-insensitive).

    >>> get_processor("E5649").num_cores
    6
    """
    key = name.strip().lower()
    try:
        return PROCESSOR_CATALOG[key]
    except KeyError:
        known = ", ".join(sorted(PROCESSOR_CATALOG))
        raise KeyError(f"unknown processor {name!r}; catalog has: {known}") from None
