"""Multicore processor descriptions: cores, shared LLC, DRAM, P-states.

This subpackage is the machine substrate of the reproduction — it stands in
for the two physical Intel Xeon servers of the paper's Table IV.
"""

from .processor import (
    PROCESSOR_CATALOG,
    XEON_E5649,
    XEON_E5_2697V2,
    CacheGeometry,
    DRAMConfig,
    MulticoreProcessor,
    get_processor,
)
from .pstates import DVFSError, PState, PStateLadder
from .topology import Server, dual_socket

__all__ = [
    "CacheGeometry",
    "DRAMConfig",
    "DVFSError",
    "MulticoreProcessor",
    "PROCESSOR_CATALOG",
    "PState",
    "PStateLadder",
    "Server",
    "XEON_E5649",
    "XEON_E5_2697V2",
    "dual_socket",
    "get_processor",
]
