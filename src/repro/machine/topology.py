"""Multi-socket server topology.

The paper studies interference *within* one multicore processor; real
server nodes often carry two or more sockets, each with its own LLC and
memory controllers.  Co-location interference is a per-socket phenomenon
(cross-socket co-runners share neither the LLC nor, to first order, the
memory channels), so a multi-socket server behaves like several
independent machines that happen to share a hostname.

:class:`Server` captures exactly that: a named collection of sockets, each
a :class:`~repro.machine.processor.MulticoreProcessor`.  The scheduling
extension treats sockets as placement targets, which is how the paper's
per-processor models compose up to node scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .processor import MulticoreProcessor

__all__ = ["Server", "dual_socket"]


@dataclass(frozen=True)
class Server:
    """A server node: one or more sockets, each an independent domain."""

    name: str
    sockets: tuple[MulticoreProcessor, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("server needs a name")
        if not self.sockets:
            raise ValueError("server needs at least one socket")

    @property
    def total_cores(self) -> int:
        """Cores across all sockets."""
        return sum(s.num_cores for s in self.sockets)

    @property
    def socket_names(self) -> tuple[str, ...]:
        """Unique per-socket identifiers (``<server>/socket<i>``)."""
        return tuple(f"{self.name}/socket{i}" for i in range(len(self.sockets)))

    def placement_domains(self) -> tuple[MulticoreProcessor, ...]:
        """The sockets as independent placement targets.

        Each returned processor carries a socket-qualified name so that
        per-domain predictors, baselines, and engines can be keyed
        unambiguously even when sockets are identical parts.
        """
        import dataclasses

        return tuple(
            dataclasses.replace(socket, name=qualified)
            for socket, qualified in zip(self.sockets, self.socket_names)
        )

    def homogeneous(self) -> bool:
        """Whether all sockets are the same part (same specs)."""
        first = self.sockets[0]
        return all(
            s.num_cores == first.num_cores
            and s.llc == first.llc
            and s.dram == first.dram
            and s.pstates == first.pstates
            for s in self.sockets
        )


def dual_socket(name: str, processor: MulticoreProcessor) -> Server:
    """The common case: a 2S server with two identical sockets."""
    return Server(name=name, sockets=(processor, processor))
