"""Memoization and observability for the steady-state engine.

The Table V loop nest drives thousands of independent fixed-point solves,
and both the homogeneous co-location sweeps and the random-sampling
ablation revisit identical (applications, P-state) scenarios many times.
Two facts make exact memoization possible:

* :meth:`~repro.sim.engine.SimulationEngine.solve_steady_state` is a pure
  function of the processor, the P-state frequency, the behavioural
  parameters of the co-located applications, and any pinned occupancies —
  run length (``instructions``) and application names do not enter the
  rate computation; and
* measurement noise is applied to reported times *outside* the solve, so
  a cached steady state reproduces the exact run a fresh solve would.

:class:`SolveCache` memoizes on exactly that key (:func:`solve_key`,
built from per-application :func:`app_signature` tuples).
:class:`EngineStats` is the matching observability record: every engine
tracks solve counts, cache hits, the fixed-point iteration distribution,
and convergence failures, and the parallel collection layer
(:mod:`repro.harness.parallel`) merges worker-process stats back into the
caller's engine.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..workloads.app import ApplicationSpec

__all__ = [
    "EngineStats",
    "GLOBAL_ENGINE_STATS",
    "SolveCache",
    "app_signature",
    "solve_key",
]


def app_signature(app: ApplicationSpec) -> tuple:
    """Hashable signature of everything that affects an app's steady state.

    Deliberately excludes ``name``, ``suite``, and ``instructions``: the
    fixed point solves *rates*, so two applications that differ only in
    identity or run length share one solve.
    """
    reuse = app.reuse
    return (
        float(app.base_cpi),
        float(app.accesses_per_instruction),
        float(app.mlp),
        float(reuse.compulsory),
        tuple(
            (float(c.working_set_bytes), float(c.weight), float(c.sharpness))
            for c in reuse.components
        ),
    )


def solve_key(
    processor_name: str,
    frequency_hz: float,
    apps: tuple[ApplicationSpec, ...],
    fixed_occupancies: np.ndarray | None = None,
) -> tuple:
    """Cache key for one steady-state solve.

    ``(processor name, P-state frequency, per-app signature tuple, pinned
    occupancies)`` — everything :meth:`solve_steady_state` depends on.
    """
    pinned = (
        None
        if fixed_occupancies is None
        else tuple(float(x) for x in np.asarray(fixed_occupancies, dtype=float))
    )
    return (
        processor_name,
        float(frequency_hz),
        tuple(app_signature(a) for a in apps),
        pinned,
    )


class SolveCache:
    """LRU memo of steady-state solves, shareable across engines.

    Keys are :func:`solve_key` tuples; values are frozen
    :class:`~repro.sim.engine.SteadyState` records.  Unbounded by default;
    pass ``max_entries`` to evict least-recently-used solves (evictions
    are counted in :attr:`evictions` and, through the engine, in
    :attr:`EngineStats.cache_evictions` — a long suite run with a bounded
    cache stays bounded *observably*).  A cache may back several engines,
    but only engines whose processors genuinely share a configuration
    should share one (keys include the processor *name*, not its full
    geometry).

    A cache survives its process: :meth:`dump` / :meth:`load` round-trip
    the entries through pickle, which is how the suite runner
    (:mod:`repro.suite.runner`) shares steady-state solves across
    processes and across runs via its artifact store.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: tuple):
        """The cached steady state for ``key``, or ``None`` on a miss."""
        try:
            state = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return state

    def put(self, key: tuple, state) -> bool:
        """Store one solve, evicting the least-recently-used if bounded.

        Returns ``True`` when the insert pushed an older entry out, so
        engines can tally the eviction in their :class:`EngineStats`.
        """
        self._entries[key] = state
        self._entries.move_to_end(key)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            return True
        return False

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -------------------------------------------------------- persistence
    def dump_bytes(self) -> bytes:
        """Serialize the entries (not the counters) for a later process.

        Entries travel in recency order, so a bounded cache restored via
        :meth:`load_bytes` evicts in the same order the donor would have.
        """
        return pickle.dumps(list(self._entries.items()), protocol=4)

    def load_bytes(self, payload: bytes) -> int:
        """Merge entries serialized by :meth:`dump_bytes`; returns count.

        Existing entries win on key collisions (both sides hold the same
        pure-function solve, so either copy is exact).  Loading respects
        ``max_entries``: overflow evicts least-recently-used as usual.
        """
        try:
            items = pickle.loads(payload)
        except Exception as exc:
            raise ValueError(f"solve cache payload is corrupt: {exc}") from None
        loaded = 0
        for key, state in items:
            if key in self._entries:
                continue
            self.put(key, state)
            loaded += 1
        return loaded

    def dump(self, path: str | Path) -> int:
        """Write the entries to ``path``; returns how many were written."""
        Path(path).write_bytes(self.dump_bytes())
        return len(self._entries)

    def load(self, path: str | Path) -> int:
        """Merge entries from a file written by :meth:`dump`."""
        return self.load_bytes(Path(path).read_bytes())


@dataclass
class EngineStats:
    """Running observability counters for one engine.

    Attributes
    ----------
    solves:
        Fixed-point solves actually performed (cache misses + uncached).
    cache_hits / cache_misses:
        Lookups served from / missed by the engine's :class:`SolveCache`
        (both stay 0 on an engine without a cache).
    cache_evictions:
        Entries a bounded :class:`SolveCache` pushed out to stay within
        ``max_entries`` (0 for unbounded caches).
    convergence_failures:
        Solves that raised :class:`~repro.sim.engine.ConvergenceError`.
    iteration_counts:
        Map from fixed-point iteration count to how many solves needed
        exactly that many iterations.
    batches:
        Batched fixed-point solves performed
        (:meth:`~repro.sim.engine.SimulationEngine.solve_steady_state_batched`
        calls that reached the stacked solver).
    batched_scenarios:
        Scenarios requested across all batched solves (cache hits and
        in-batch duplicates included) — divide by :attr:`batches` for the
        mean batch width.
    batch_dedupe_hits:
        Scenarios inside a batch whose :func:`solve_key` duplicated an
        earlier member of the *same* batch and were served from its solve
        instead of entering the stack.
    frozen_iterations_saved:
        Stacked iterations skipped because converged scenarios freeze:
        the sum over batch members of (batch iteration count - member's
        own convergence iteration).
    """

    solves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    convergence_failures: int = 0
    iteration_counts: dict[int, int] = field(default_factory=dict)
    batches: int = 0
    batched_scenarios: int = 0
    batch_dedupe_hits: int = 0
    frozen_iterations_saved: int = 0

    @property
    def requests(self) -> int:
        """Total steady-state requests (cache hits + actual solves)."""
        return self.cache_hits + self.solves

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when idle)."""
        return self.cache_hits / self.requests if self.requests else 0.0

    def record_solve(self, iterations: int) -> None:
        """Count one completed fixed-point solve."""
        self.solves += 1
        self.iteration_counts[iterations] = (
            self.iteration_counts.get(iterations, 0) + 1
        )

    def record_hit(self) -> None:
        """Count one cache-served request."""
        self.cache_hits += 1

    def record_miss(self) -> None:
        """Count one cache lookup that fell through to a solve."""
        self.cache_misses += 1

    def record_eviction(self) -> None:
        """Count one bounded-cache LRU eviction."""
        self.cache_evictions += 1

    def record_failure(self) -> None:
        """Count one solve that failed to converge."""
        self.convergence_failures += 1

    def record_batch(
        self, scenarios: int, dedupe_hits: int, iterations_saved: int
    ) -> None:
        """Count one batched solve and its dedupe/freezing savings."""
        self.batches += 1
        self.batched_scenarios += scenarios
        self.batch_dedupe_hits += dedupe_hits
        self.frozen_iterations_saved += iterations_saved

    def merge(self, other: "EngineStats") -> None:
        """Fold another stats record (e.g. a worker process's) into this one."""
        self.solves += other.solves
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.convergence_failures += other.convergence_failures
        self.batches += other.batches
        self.batched_scenarios += other.batched_scenarios
        self.batch_dedupe_hits += other.batch_dedupe_hits
        self.frozen_iterations_saved += other.frozen_iterations_saved
        for iterations, count in other.iteration_counts.items():
            self.iteration_counts[iterations] = (
                self.iteration_counts.get(iterations, 0) + count
            )

    def reset(self) -> None:
        """Zero every counter."""
        self.solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.convergence_failures = 0
        self.iteration_counts = {}
        self.batches = 0
        self.batched_scenarios = 0
        self.batch_dedupe_hits = 0
        self.frozen_iterations_saved = 0

    def iteration_histogram(self, bin_width: int = 25) -> dict[str, int]:
        """Solve counts binned by fixed-point iterations, e.g. ``{"1-25": 7}``."""
        if bin_width < 1:
            raise ValueError("bin width must be >= 1")
        bins: dict[int, int] = {}
        for iterations, count in self.iteration_counts.items():
            bins[(iterations - 1) // bin_width] = (
                bins.get((iterations - 1) // bin_width, 0) + count
            )
        return {
            f"{b * bin_width + 1}-{(b + 1) * bin_width}": bins[b]
            for b in sorted(bins)
        }

    def summary(self) -> str:
        """Human-readable one-stop summary (used by the CLI and benches)."""
        lines = [
            f"engine stats: {self.requests} steady-state requests, "
            f"{self.solves} solves, {self.cache_hits} cache hits "
            f"({100.0 * self.cache_hit_rate:.1f}% hit rate), "
            f"{self.convergence_failures} convergence failures"
        ]
        if self.cache_evictions:
            lines.append(
                f"bounded cache: {self.cache_evictions} LRU evictions"
            )
        if self.batches:
            lines.append(
                f"batched solves: {self.batches} batches, "
                f"{self.batched_scenarios} scenarios "
                f"({self.batched_scenarios / self.batches:.1f}/batch), "
                f"{self.batch_dedupe_hits} in-batch dedupe hits, "
                f"{self.frozen_iterations_saved} iterations saved by freezing"
            )
        histogram = self.iteration_histogram()
        if histogram:
            body = " | ".join(f"{span}: {n}" for span, n in histogram.items())
            lines.append(f"fixed-point iterations: {body}")
        return "\n".join(lines)


#: Process-wide aggregate across every engine in this process.  Each solve
#: feeds both its engine's own ``stats`` and this record; the parallel
#: layers fold worker-process chunk stats in so one scrape of the metrics
#: registry (:mod:`repro.obs`) sees the whole run.
GLOBAL_ENGINE_STATS = EngineStats()
