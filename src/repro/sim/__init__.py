"""Execution simulation: analytic steady-state engine + trace-driven check."""

from .colocation import (
    ColocationScenario,
    homogeneous_scenarios,
    normalized_execution_time,
    run_scenario,
)
from .engine import (
    AppRun,
    ColocationRun,
    ConvergenceError,
    SimulationEngine,
    SteadyState,
)
from .timesliced import SliceRecord, TimeSlicedResult, TimeSlicedSimulator
from .tracesim import TraceCompetitor, TraceSharingResult, simulate_trace_sharing

__all__ = [
    "AppRun",
    "ColocationRun",
    "ColocationScenario",
    "ConvergenceError",
    "SimulationEngine",
    "SliceRecord",
    "SteadyState",
    "TimeSlicedResult",
    "TimeSlicedSimulator",
    "TraceCompetitor",
    "TraceSharingResult",
    "homogeneous_scenarios",
    "normalized_execution_time",
    "run_scenario",
    "simulate_trace_sharing",
]
