"""Execution simulation: analytic steady-state engine + trace-driven check."""

from .colocation import (
    ColocationScenario,
    homogeneous_scenarios,
    normalized_execution_time,
    run_scenario,
)
from .engine import (
    AppRun,
    BatchConvergenceError,
    BatchFailure,
    ColocationRun,
    ConvergenceError,
    SimulationEngine,
    SolveRequest,
    SteadyState,
)
from .solve_cache import (
    GLOBAL_ENGINE_STATS,
    EngineStats,
    SolveCache,
    app_signature,
    solve_key,
)
from .timesliced import SliceRecord, TimeSlicedResult, TimeSlicedSimulator
from .tracesim import TraceCompetitor, TraceSharingResult, simulate_trace_sharing

__all__ = [
    "AppRun",
    "BatchConvergenceError",
    "BatchFailure",
    "ColocationRun",
    "ColocationScenario",
    "ConvergenceError",
    "EngineStats",
    "GLOBAL_ENGINE_STATS",
    "SimulationEngine",
    "SliceRecord",
    "SolveCache",
    "SolveRequest",
    "SteadyState",
    "TimeSlicedResult",
    "TimeSlicedSimulator",
    "TraceCompetitor",
    "TraceSharingResult",
    "app_signature",
    "homogeneous_scenarios",
    "normalized_execution_time",
    "run_scenario",
    "simulate_trace_sharing",
    "solve_key",
]
