"""Time-sliced co-location simulation with dynamic machine membership.

The analytic engine (:mod:`repro.sim.engine`) assumes *steady state*: the
co-runner population is constant for the target's whole run, which matches
the paper's harness (co-located applications are restarted so pressure
never lets up).  This module relaxes that assumption: time advances in
slices, each slice re-solves the instantaneous fixed point for whichever
applications are currently on the machine, and applications that finish
either **restart** (the paper's protocol) or **depart** (a batch system
where finished jobs free their cores).

Two uses:

* validating the steady-state abstraction — with restarting co-runners the
  time-sliced result converges to the engine's as the slice shrinks
  (tested in ``tests/sim/test_timesliced.py``), and
* quantifying what the paper's models *cannot* see: with departing
  co-runners the target speeds up mid-run, so its final time is shorter
  than the steady-state prediction — a scenario outside the paper's scope
  that a scheduler built on these models should know about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.pstates import PState
from ..workloads.app import ApplicationSpec
from .engine import SimulationEngine

__all__ = ["SliceRecord", "TimeSlicedResult", "TimeSlicedSimulator"]


@dataclass(frozen=True)
class SliceRecord:
    """State during one simulated time slice."""

    start_s: float
    duration_s: float
    active_names: tuple[str, ...]
    target_ips: float
    dram_utilization: float


@dataclass(frozen=True)
class TimeSlicedResult:
    """Outcome of a time-sliced target run."""

    target: ApplicationSpec
    execution_time_s: float
    co_runner_completions: dict[str, int]
    timeline: tuple[SliceRecord, ...] = field(repr=False)

    @property
    def num_slices(self) -> int:
        """Slices simulated before the target finished."""
        return len(self.timeline)


class TimeSlicedSimulator:
    """Slice-stepped co-location simulator on top of the analytic solver.

    Parameters
    ----------
    engine:
        The per-slice fixed point solver (also fixes the machine).
    slice_s:
        Slice length in simulated seconds.  Smaller slices track
        departures more precisely at proportionally higher cost.
    """

    def __init__(self, engine: SimulationEngine, *, slice_s: float = 1.0) -> None:
        if slice_s <= 0.0:
            raise ValueError("slice length must be positive")
        self.engine = engine
        self.slice_s = slice_s

    def run(
        self,
        target: ApplicationSpec,
        co_runners: list[ApplicationSpec] | tuple[ApplicationSpec, ...] = (),
        *,
        pstate: PState | None = None,
        restart_co_runners: bool = True,
        max_slices: int = 100_000,
    ) -> TimeSlicedResult:
        """Run the target to completion under time-sliced co-location.

        Parameters
        ----------
        target, co_runners, pstate:
            As in :meth:`repro.sim.engine.SimulationEngine.run`.
        restart_co_runners:
            ``True`` (paper protocol): a finished co-runner restarts
            immediately, keeping pressure constant.  ``False``: finished
            co-runners leave the machine and free their core.
        max_slices:
            Safety cap; exceeding it raises ``RuntimeError``.
        """
        self.engine.processor.validate_co_location_count(len(co_runners))
        if pstate is None:
            pstate = self.engine.processor.pstates.fastest

        remaining = np.array(
            [target.instructions] + [c.instructions for c in co_runners]
        )
        active = np.ones(remaining.size, dtype=bool)
        apps = (target,) + tuple(co_runners)
        completions: dict[str, int] = {}
        timeline: list[SliceRecord] = []
        now = 0.0

        for _ in range(max_slices):
            current = tuple(a for a, on in zip(apps, active) if on)
            state = self.engine.solve_steady_state(current, pstate)
            ips_by_app = state.instructions_per_second
            idx = np.flatnonzero(active)

            # End the slice early at whichever completion (target or
            # co-runner) lands inside it, so rate changes are honored at
            # the exact completion instant rather than at slice edges.
            time_to_finish = remaining[idx] / ips_by_app
            dt = min(self.slice_s, float(time_to_finish.min()))
            timeline.append(
                SliceRecord(
                    start_s=now,
                    duration_s=dt,
                    active_names=tuple(a.name for a in current),
                    target_ips=float(ips_by_app[0]) if active[0] else 0.0,
                    dram_utilization=state.dram_utilization,
                )
            )
            remaining[idx] = remaining[idx] - ips_by_app * dt
            now += dt

            # Handle completions (tolerance absorbs float residue).
            done = idx[remaining[idx] <= 1e-6 * np.array([a.instructions for a in current])]
            for i in done:
                if i == 0:
                    return TimeSlicedResult(
                        target=target,
                        execution_time_s=now,
                        co_runner_completions=completions,
                        timeline=tuple(timeline),
                    )
                name = apps[i].name
                completions[name] = completions.get(name, 0) + 1
                if restart_co_runners:
                    remaining[i] = apps[i].instructions
                else:
                    active[i] = False
        raise RuntimeError(
            f"target {target.name!r} did not finish within {max_slices} slices"
        )
