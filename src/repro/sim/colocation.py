"""Co-location scenario descriptions and runners.

A :class:`ColocationScenario` names one cell of the paper's data-collection
loop nest (Section IV-B3): a machine, a P-state, a target application, a
co-located application type, and how many copies of it run alongside the
target.  The training data uses *homogeneous* co-location (all co-runners
identical); heterogeneous mixes are supported for testing generalization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.pstates import PState
from ..machine.processor import MulticoreProcessor
from ..workloads.app import ApplicationSpec
from ..workloads.suite import get_application
from .engine import ColocationRun, SimulationEngine

__all__ = [
    "ColocationScenario",
    "homogeneous_scenarios",
    "run_scenario",
    "normalized_execution_time",
]


@dataclass(frozen=True)
class ColocationScenario:
    """One co-location test: target + n copies of one co-app at one P-state."""

    target: str
    co_app: str | None
    num_co_located: int
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.num_co_located < 0:
            raise ValueError("co-location count must be non-negative")
        if self.num_co_located > 0 and self.co_app is None:
            raise ValueError("co-located scenario needs a co-app name")
        if self.num_co_located == 0 and self.co_app is not None:
            raise ValueError("baseline scenario must not name a co-app")

    @property
    def is_baseline(self) -> bool:
        """Whether this is a solo (no co-location) run."""
        return self.num_co_located == 0

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        if self.is_baseline:
            return f"{self.target} solo @ {self.frequency_ghz:.2f} GHz"
        return (
            f"{self.target} + {self.num_co_located}x {self.co_app} "
            f"@ {self.frequency_ghz:.2f} GHz"
        )


def homogeneous_scenarios(
    processor: MulticoreProcessor,
    targets: list[str],
    co_apps: list[str],
    co_location_counts: list[int],
) -> list[ColocationScenario]:
    """The full Table V loop nest for one machine.

    Produces ``frequency x target x co_app x count`` scenarios; counts that
    exceed the machine's free cores are rejected (callers pass per-machine
    count lists, Table V column "num. of co-locations").
    """
    scenarios = []
    for count in co_location_counts:
        processor.validate_co_location_count(count)
    for pstate in processor.pstates:
        for target in targets:
            for co_app in co_apps:
                for count in co_location_counts:
                    scenarios.append(
                        ColocationScenario(
                            target=target,
                            co_app=co_app,
                            num_co_located=count,
                            frequency_ghz=pstate.frequency_ghz,
                        )
                    )
    return scenarios


def _resolve(name: str, extra_apps: dict[str, ApplicationSpec] | None) -> ApplicationSpec:
    if extra_apps and name in extra_apps:
        return extra_apps[name]
    return get_application(name)


def run_scenario(
    engine: SimulationEngine,
    scenario: ColocationScenario,
    *,
    rng: np.random.Generator | None = None,
    extra_apps: dict[str, ApplicationSpec] | None = None,
) -> ColocationRun:
    """Execute one scenario on an engine.

    ``extra_apps`` lets callers use applications outside the Table III
    suite (e.g. for the portability example) without registering them
    globally.
    """
    pstate: PState = engine.processor.pstates.at_frequency(scenario.frequency_ghz)
    target = _resolve(scenario.target, extra_apps)
    if scenario.is_baseline:
        return engine.baseline(target, pstate=pstate, rng=rng)
    co_app = _resolve(scenario.co_app, extra_apps)  # type: ignore[arg-type]
    co_runners = [co_app] * scenario.num_co_located
    return engine.run(target, co_runners, pstate=pstate, rng=rng)


def normalized_execution_time(co_located_s: float, baseline_s: float) -> float:
    """Co-located time over baseline time (Table VI's normalized column)."""
    if baseline_s <= 0.0:
        raise ValueError("baseline time must be positive")
    return co_located_s / baseline_s
