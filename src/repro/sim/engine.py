"""Analytic steady-state co-location execution engine.

This is the fast substrate used for bulk data collection: it computes, for
one multicore processor at one P-state running a *target* application
co-located with any mix of co-runners, the steady-state execution rate of
every application and from it the target's execution time and counter
values.

The model couples three mutually-dependent quantities in one fixed point:

* per-application **throughput** (instructions/second) — depends on memory
  stalls;
* shared-LLC **occupancies** — depend on every application's insertion
  (miss) rate, which depends on throughput and occupancy;
* the loaded **DRAM latency** — depends on the aggregate miss bandwidth,
  which depends on throughput and miss ratios.

Each iteration evaluates all miss ratios through a vectorized
:class:`~repro.cache.reuse.ProfileTable` and solves the occupancy split
with the same rate-proportional waterfilling as the reference model in
:mod:`repro.cache.sharing` (agreement between the two is tested).  Damped
iteration converges in a few dozen steps.

Co-runners are modeled as *continuously running*: the paper's test harness
restarts co-located applications so that pressure on the target stays
constant for the target's whole run — steady state is exactly the right
abstraction.  Measurement noise is a seeded multiplicative perturbation
applied to reported times only (the paper reports ~quarter-percent spread
across repetitions).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..cache.reuse import ProfileStack, ProfileTable, ordered_sum
from ..cache.sharing import waterfill, waterfill_batched
from ..machine.pstates import PState
from ..machine.processor import MulticoreProcessor
from ..memsys.dram import DRAMModel
from ..obs.trace import get_tracer
from ..workloads.app import ApplicationSpec, PhasedApplication
from .solve_cache import GLOBAL_ENGINE_STATS, EngineStats, SolveCache, solve_key

__all__ = [
    "AppRun",
    "BatchConvergenceError",
    "BatchFailure",
    "ColocationRun",
    "ConvergenceError",
    "SimulationEngine",
    "SolveRequest",
    "SteadyState",
]

#: Exposed fraction of the LLC hit latency (out-of-order cores hide the
#: rest); see :meth:`repro.memsys.hierarchy.MemoryHierarchy.stall_ns_per_access`.
HIT_EXPOSURE = 0.3

#: Insertion-pressure floor used by the occupancy waterfilling, matching
#: :func:`repro.cache.sharing.solve_shared_cache`.
PRESSURE_FLOOR = 0.002


class ConvergenceError(RuntimeError):
    """Raised when the steady-state fixed point fails to converge."""


@dataclass(frozen=True)
class SolveRequest:
    """One scenario of a batched steady-state solve.

    Mirrors the arguments of :meth:`SimulationEngine.solve_steady_state`:
    the co-located applications (target first by convention), an optional
    P-state (defaults to the fastest), and optional pinned occupancies.
    """

    apps: tuple[ApplicationSpec, ...]
    pstate: PState | None = None
    fixed_occupancies: tuple[float, ...] | None = None


@dataclass(frozen=True)
class BatchFailure:
    """Identity of one scenario that failed to converge in a batch."""

    index: int
    target: str
    co_runners: tuple[str, ...]
    frequency_ghz: float

    def describe(self) -> str:
        """Human-readable scenario identity, e.g. for error messages."""
        counts = Counter(self.co_runners)
        co = (
            " + ".join(f"{n}x {name!r}" for name, n in counts.items())
            or "no co-runners"
        )
        return (
            f"[batch index {self.index}] target {self.target!r} with {co} "
            f"at {self.frequency_ghz:g} GHz"
        )


class BatchConvergenceError(ConvergenceError):
    """One or more scenarios of a batched solve failed to converge.

    Unlike the serial :class:`ConvergenceError`, a batch failure is
    partial: every *other* scenario still converged and its result is
    available in :attr:`states` (``None`` at the failing indices).

    Attributes
    ----------
    failures:
        One :class:`BatchFailure` per failing scenario, identifying the
        target, co-runner multiset, frequency, and batch index.
    states:
        Per-scenario results in request order; ``None`` where the
        scenario failed.
    """

    def __init__(
        self,
        message: str,
        failures: list[BatchFailure],
        states: list["SteadyState | None"],
    ) -> None:
        super().__init__(message)
        self.failures = failures
        self.states = states


@dataclass(frozen=True)
class SteadyState:
    """Instantaneous steady-state rates for one set of co-located apps.

    All arrays are indexed like ``apps``.  This is rate information only —
    how long anything runs (and hence counter totals) is the caller's
    concern, which is what lets the time-sliced simulator reuse it for
    workloads whose membership changes over time.
    """

    apps: tuple[ApplicationSpec, ...]
    pstate: PState
    seconds_per_instruction: np.ndarray
    miss_ratios: np.ndarray
    occupancies_bytes: np.ndarray
    miss_bandwidth_bytes_per_s: float
    dram_utilization: float
    dram_latency_ns: float
    iterations: int

    @property
    def instructions_per_second(self) -> np.ndarray:
        """Per-application steady-state throughput."""
        return 1.0 / self.seconds_per_instruction


@dataclass(frozen=True)
class AppRun:
    """Steady-state result for one application in a co-location.

    Counter-style totals (instructions, accesses, misses) are reported for
    one complete run of the application at its steady-state rate.
    """

    app: ApplicationSpec
    execution_time_s: float
    instructions: float
    llc_accesses: float
    llc_misses: float
    miss_ratio: float
    occupancy_bytes: float
    instructions_per_second: float

    @property
    def memory_intensity(self) -> float:
        """LLC misses per instruction under this co-location."""
        return self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def ca_per_ins(self) -> float:
        """LLC accesses per instruction (the paper's CA/INS feature)."""
        return self.llc_accesses / self.instructions if self.instructions else 0.0

    @property
    def cm_per_ca(self) -> float:
        """LLC misses per access (the paper's CM/CA feature)."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0


@dataclass(frozen=True)
class ColocationRun:
    """Result of simulating one co-location scenario.

    ``runs[0]`` is the target application; the rest are co-runners in the
    order given.  Machine-level state is included for analysis/debugging.
    """

    processor_name: str
    frequency_ghz: float
    runs: tuple[AppRun, ...]
    dram_utilization: float
    dram_latency_ns: float
    iterations: int

    @property
    def target(self) -> AppRun:
        """The target application's run."""
        return self.runs[0]

    @property
    def co_runners(self) -> tuple[AppRun, ...]:
        """All co-located applications' runs."""
        return self.runs[1:]


class SimulationEngine:
    """Analytic co-location simulator for one multicore processor."""

    def __init__(
        self,
        processor: MulticoreProcessor,
        *,
        noise_sigma: float = 0.01,
        max_iterations: int = 600,
        rel_tolerance: float = 1e-7,
        damping: float = 0.5,
        cache: SolveCache | None = None,
    ) -> None:
        if noise_sigma < 0.0:
            raise ValueError("noise sigma must be non-negative")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        self.processor = processor
        self.dram = DRAMModel(processor.dram)
        self.noise_sigma = noise_sigma
        self.max_iterations = max_iterations
        self.rel_tolerance = rel_tolerance
        self.damping = damping
        #: Optional memo of steady-state solves; caching is exact because
        #: measurement noise is applied outside the solve.
        self.cache = cache
        #: Running solve/cache/convergence counters (see :class:`EngineStats`).
        self.stats = EngineStats()

    # ------------------------------------------------------------------ API

    def run(
        self,
        target: ApplicationSpec | PhasedApplication,
        co_runners: list[ApplicationSpec] | tuple[ApplicationSpec, ...] = (),
        *,
        pstate: PState | None = None,
        rng: np.random.Generator | None = None,
        fixed_occupancies: np.ndarray | None = None,
    ) -> ColocationRun:
        """Simulate ``target`` co-located with ``co_runners``.

        Parameters
        ----------
        target:
            The application whose execution time is measured.  A
            :class:`PhasedApplication` is simulated phase by phase (each
            phase reaches its own steady state) and the results summed.
        co_runners:
            Applications occupying the other cores (continuously running).
            Phased co-runners are folded to their aggregate behaviour — a
            restarting co-runner's pressure time-averages over its phases,
            which is exactly what the aggregate encodes.
        pstate:
            Operating P-state; defaults to the fastest.
        rng:
            When given, multiplicative measurement noise is applied to the
            reported execution time; omit for the noise-free prediction.
        fixed_occupancies:
            When given (one byte count per application, target first),
            LLC occupancies are pinned instead of competed for — a
            way-partitioned cache (see :mod:`repro.cache.partition`).
            DRAM bandwidth remains shared.  Not supported for phased
            targets.
        """
        co_runners = [
            c.aggregate() if isinstance(c, PhasedApplication) else c
            for c in co_runners
        ]
        self.processor.validate_co_location_count(len(co_runners))
        if pstate is None:
            pstate = self.processor.pstates.fastest
        if isinstance(target, PhasedApplication):
            if fixed_occupancies is not None:
                raise ValueError(
                    "fixed occupancies are not supported for phased targets"
                )
            return self._run_phased(target, tuple(co_runners), pstate, rng)
        return self._run_steady(
            target, tuple(co_runners), pstate, rng, fixed_occupancies
        )

    def baseline(
        self,
        app: ApplicationSpec | PhasedApplication,
        *,
        pstate: PState | None = None,
        rng: np.random.Generator | None = None,
    ) -> ColocationRun:
        """Solo (no co-location) run — the paper's baseline measurement."""
        return self.run(app, (), pstate=pstate, rng=rng)

    # ------------------------------------------------------------ internals

    def _run_phased(
        self,
        target: PhasedApplication,
        co_runners: tuple[ApplicationSpec, ...],
        pstate: PState,
        rng: np.random.Generator | None,
    ) -> ColocationRun:
        total_time = 0.0
        tot_ins = tot_acc = tot_miss = 0.0
        last = None
        for phase_spec in target.phase_specs():
            run = self._run_steady(phase_spec, co_runners, pstate, rng=None)
            total_time += run.target.execution_time_s
            tot_ins += run.target.instructions
            tot_acc += run.target.llc_accesses
            tot_miss += run.target.llc_misses
            last = run
        if last is None:
            raise ValueError(
                f"phased application {target.name!r} yielded no phases to "
                f"simulate"
            )
        if rng is not None and self.noise_sigma > 0.0:
            total_time *= float(np.exp(rng.normal(0.0, self.noise_sigma)))
        target_run = AppRun(
            app=target.aggregate(),
            execution_time_s=total_time,
            instructions=tot_ins,
            llc_accesses=tot_acc,
            llc_misses=tot_miss,
            miss_ratio=tot_miss / tot_acc if tot_acc else 0.0,
            occupancy_bytes=last.target.occupancy_bytes,
            instructions_per_second=tot_ins / total_time if total_time else 0.0,
        )
        return ColocationRun(
            processor_name=self.processor.name,
            frequency_ghz=pstate.frequency_ghz,
            runs=(target_run,) + last.co_runners,
            dram_utilization=last.dram_utilization,
            dram_latency_ns=last.dram_latency_ns,
            iterations=last.iterations,
        )

    def solve_steady_state(
        self,
        apps: tuple[ApplicationSpec, ...] | list[ApplicationSpec],
        pstate: PState | None = None,
        *,
        fixed_occupancies: np.ndarray | None = None,
    ) -> "SteadyState":
        """Solve the joint throughput/occupancy/DRAM fixed point.

        The low-level entry point used by :meth:`run` and by the
        time-sliced simulator (:mod:`repro.sim.timesliced`): given the set
        of applications currently on the machine, returns every
        application's steady-state rate and the memory-system state, with
        no notion of run length or noise.

        When the engine has a :class:`SolveCache`, solves are memoized on
        ``(processor, frequency, per-app behaviour, pinned occupancies)``
        and repeated scenarios are served from the cache bit-exactly.
        Every call is tallied in :attr:`stats` and in the process-wide
        :data:`~repro.sim.solve_cache.GLOBAL_ENGINE_STATS`; when tracing
        is enabled each call becomes an ``engine.solve`` span.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_steady_state(apps, pstate, fixed_occupancies)
        hits_before = self.stats.cache_hits
        with tracer.span("engine.solve", processor=self.processor.name) as span:
            state = self._solve_steady_state(apps, pstate, fixed_occupancies)
            span.set(
                apps=len(state.apps),
                cache_hit=self.stats.cache_hits > hits_before,
                iterations=state.iterations,
                frequency_ghz=state.pstate.frequency_ghz,
            )
            return state

    def _solve_steady_state(
        self,
        apps: tuple[ApplicationSpec, ...] | list[ApplicationSpec],
        pstate: PState | None,
        fixed_occupancies: np.ndarray | None,
    ) -> "SteadyState":
        apps = tuple(apps)
        if not apps:
            raise ValueError("need at least one application")
        if len(apps) > self.processor.num_cores:
            raise ValueError(
                f"{len(apps)} applications exceed the "
                f"{self.processor.num_cores} cores of {self.processor.name}"
            )
        if pstate is None:
            pstate = self.processor.pstates.fastest
        capacity = float(self.processor.llc.size_bytes)
        alloc = None
        if fixed_occupancies is not None:
            alloc = np.asarray(fixed_occupancies, dtype=float)
            if alloc.shape != (len(apps),):
                raise ValueError(
                    f"need one occupancy per application, got shape {alloc.shape}"
                )
            if np.any(alloc < 0.0) or alloc.sum() > capacity * (1 + 1e-9):
                raise ValueError(
                    "fixed occupancies must be non-negative and sum to at "
                    "most the LLC capacity"
                )

        key = None
        if self.cache is not None:
            key = solve_key(self.processor.name, pstate.frequency_hz, apps, alloc)
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.record_hit()
                GLOBAL_ENGINE_STATS.record_hit()
                # Re-label with the requested apps/pstate: the cache keys on
                # behaviour only, so names and run lengths may differ.
                return replace(cached, apps=apps, pstate=pstate)
            self.stats.record_miss()
            GLOBAL_ENGINE_STATS.record_miss()
        try:
            state = self._solve_fixed_point(apps, pstate, alloc)
        except ConvergenceError:
            self.stats.record_failure()
            GLOBAL_ENGINE_STATS.record_failure()
            raise
        self.stats.record_solve(state.iterations)
        GLOBAL_ENGINE_STATS.record_solve(state.iterations)
        if key is not None:
            if self.cache.put(key, state):
                self.stats.record_eviction()
                GLOBAL_ENGINE_STATS.record_eviction()
        return state

    def _solve_fixed_point(
        self,
        apps: tuple[ApplicationSpec, ...],
        pstate: PState,
        alloc: np.ndarray | None,
    ) -> "SteadyState":
        f_hz = pstate.frequency_hz
        capacity = float(self.processor.llc.size_bytes)
        line = float(self.processor.llc.line_bytes)
        hit_ns = self.processor.llc.hit_latency_ns * HIT_EXPOSURE

        cpi = np.array([a.base_cpi for a in apps])
        api = np.array([a.accesses_per_instruction for a in apps])
        mlp = np.array([a.mlp for a in apps])
        table = ProfileTable([a.reuse for a in apps])
        demand = np.minimum(table.footprints, capacity)
        pinned = alloc is not None
        if pinned:
            # An application cannot make use of more cache than it touches.
            fixed = np.minimum(alloc, demand)
            fits = True  # no competition: occupancies never move
        else:
            fixed = None
            fits = float(ordered_sum(demand)) <= capacity

        # Initial iterate: footprint-proportional occupancy, stall-free speed.
        if pinned:
            occ = fixed.copy()
        else:
            occ = demand.copy() if fits else waterfill(demand.copy(), demand, capacity)
        tpi = cpi / f_hz  # seconds per instruction
        damp = self.damping
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # The waterfill's demand clipping makes the occupancy map
            # piecewise: near a clipping boundary the undamped iteration
            # can limit-cycle.  Decaying the damping breaks such cycles
            # while leaving well-behaved cases (which converge long before
            # this) untouched.
            if iterations % 100 == 0:
                damp *= 0.5
            rate = api / tpi  # LLC accesses per second per app
            miss = table.miss_ratio(occ)
            if pinned:
                occ_new = occ
            elif fits:
                occ_new = demand
            else:
                pressure = rate * np.maximum(miss, PRESSURE_FLOOR)
                occ_new = (1.0 - damp) * occ + damp * waterfill(
                    pressure, demand, capacity
                )
            bandwidth = float(ordered_sum(rate * miss)) * line
            lat_ns = float(self.dram.effective_latency_ns(bandwidth))
            stall_ns = (1.0 - miss) * hit_ns + miss * (lat_ns / mlp)
            tpi_new = (1.0 - damp) * tpi + damp * (cpi / f_hz + api * stall_ns * 1e-9)
            occ_delta = float(np.max(np.abs(occ_new - occ))) / capacity
            tpi_delta = float(np.max(np.abs(tpi_new - tpi) / tpi))
            occ, tpi = occ_new, tpi_new
            if occ_delta < self.rel_tolerance and tpi_delta < self.rel_tolerance:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"steady state did not converge in {self.max_iterations} "
                f"iterations for {[a.name for a in apps]} on {self.processor.name}"
            )

        miss = table.miss_ratio(occ)
        bandwidth = float(ordered_sum(api / tpi * miss)) * line
        rho = float(self.dram.utilization(bandwidth))
        lat_ns = float(self.dram.effective_latency_ns(bandwidth))
        return SteadyState(
            apps=apps,
            pstate=pstate,
            seconds_per_instruction=tpi,
            miss_ratios=miss,
            occupancies_bytes=occ,
            miss_bandwidth_bytes_per_s=bandwidth,
            dram_utilization=rho,
            dram_latency_ns=lat_ns,
            iterations=iterations,
        )

    def _run_steady(
        self,
        target: ApplicationSpec,
        co_runners: tuple[ApplicationSpec, ...],
        pstate: PState,
        rng: np.random.Generator | None,
        fixed_occupancies: np.ndarray | None = None,
    ) -> ColocationRun:
        apps = (target,) + co_runners
        state = self.solve_steady_state(
            apps, pstate, fixed_occupancies=fixed_occupancies
        )
        return self._finish_run(state, rng)

    def _finish_run(
        self, state: SteadyState, rng: np.random.Generator | None
    ) -> ColocationRun:
        """Turn a steady state into a :class:`ColocationRun`.

        Counter totals follow from the rates; measurement noise (the only
        stochastic step) is applied to the target's reported time here,
        *outside* the solve — which is what makes caching and batching
        exact.
        """
        apps = state.apps
        pstate = state.pstate
        tpi = state.seconds_per_instruction
        miss = state.miss_ratios
        occ = state.occupancies_bytes
        api = np.array([a.accesses_per_instruction for a in apps])

        runs = []
        for i, app in enumerate(apps):
            time_s = float(app.instructions * tpi[i])
            if i == 0 and rng is not None and self.noise_sigma > 0.0:
                time_s *= float(np.exp(rng.normal(0.0, self.noise_sigma)))
            accesses = app.instructions * api[i]
            runs.append(
                AppRun(
                    app=app,
                    execution_time_s=time_s,
                    instructions=app.instructions,
                    llc_accesses=accesses,
                    llc_misses=accesses * float(miss[i]),
                    miss_ratio=float(miss[i]),
                    occupancy_bytes=float(occ[i]),
                    instructions_per_second=1.0 / float(tpi[i]),
                )
            )
        return ColocationRun(
            processor_name=self.processor.name,
            frequency_ghz=pstate.frequency_ghz,
            runs=tuple(runs),
            dram_utilization=state.dram_utilization,
            dram_latency_ns=state.dram_latency_ns,
            iterations=state.iterations,
        )

    # ------------------------------------------------------- batched solves

    def run_batch(
        self,
        items: Sequence[tuple],
    ) -> list[ColocationRun]:
        """Simulate many co-location scenarios with one stacked solve.

        ``items`` holds ``(target, co_runners, pstate, rng)`` tuples with
        the same meaning as the arguments of :meth:`run` (``pstate`` and
        ``rng`` may be ``None``).  Results come back in request order and
        are bit-identical to calling :meth:`run` once per item: steady
        states are advanced as one batch (phased targets fall back to the
        per-phase serial path), and measurement noise is drawn from each
        item's own ``rng`` after the solve, so batching cannot change a
        dataset.
        """
        normalized = []
        for target, co_runners, pstate, rng in items:
            co = tuple(
                c.aggregate() if isinstance(c, PhasedApplication) else c
                for c in co_runners
            )
            self.processor.validate_co_location_count(len(co))
            if pstate is None:
                pstate = self.processor.pstates.fastest
            normalized.append((target, co, pstate, rng))
        results: list[ColocationRun | None] = [None] * len(normalized)
        requests: list[SolveRequest] = []
        steady: list[int] = []
        for i, (target, co, pstate, rng) in enumerate(normalized):
            if isinstance(target, PhasedApplication):
                results[i] = self._run_phased(target, co, pstate, rng)
            else:
                steady.append(i)
                requests.append(SolveRequest(apps=(target,) + co, pstate=pstate))
        if requests:
            states = self.solve_steady_state_batched(requests)
            for i, state in zip(steady, states):
                results[i] = self._finish_run(state, normalized[i][3])
        return results

    def solve_steady_state_batched(
        self,
        requests: Sequence[
            "SolveRequest | tuple[ApplicationSpec, ...] | list[ApplicationSpec]"
        ],
    ) -> list["SteadyState"]:
        """Solve many steady states as one stacked fixed point.

        Each request is a :class:`SolveRequest` (or a bare app tuple, which
        means "fastest P-state, no pinning").  Results are bit-identical to
        calling :meth:`solve_steady_state` once per request — both paths
        share the elementwise update rules and the sequential reduction
        discipline of :func:`~repro.cache.reuse.ordered_sum` — but the
        batch advances all scenarios together over ``(S, A)`` arrays, so
        the per-iteration cost is a handful of vectorized operations
        instead of a Python-level loop per scenario.

        Cache integration: hits are served before the batch forms,
        repeated :func:`~repro.sim.solve_cache.solve_key` values within
        one batch are solved once (an *in-batch dedupe hit* relabels the
        shared solve per member), and each unique miss is inserted into
        the cache exactly once.  Scenarios that converge early freeze
        (drop out of the stacked update) while the rest keep iterating.

        Raises :class:`BatchConvergenceError` naming every scenario that
        fails to converge; the error's ``states`` carries the results of
        the scenarios that did converge.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_steady_state_batched(requests)
        hits_before = self.stats.cache_hits
        solves_before = self.stats.solves
        dedupe_before = self.stats.batch_dedupe_hits
        with tracer.span(
            "engine.solve_batch", processor=self.processor.name
        ) as span:
            states = self._solve_steady_state_batched(requests)
            span.set(
                scenarios=len(states),
                cache_hits=self.stats.cache_hits - hits_before,
                dedupe_hits=self.stats.batch_dedupe_hits - dedupe_before,
                solves=self.stats.solves - solves_before,
            )
            return states

    def _normalize_request(
        self, request, index: int
    ) -> tuple[tuple[ApplicationSpec, ...], PState, np.ndarray | None]:
        if isinstance(request, SolveRequest):
            apps = tuple(request.apps)
            pstate = request.pstate
            fixed = request.fixed_occupancies
        else:
            apps, pstate, fixed = tuple(request), None, None
        if not apps:
            raise ValueError(
                f"batch scenario {index}: need at least one application"
            )
        if len(apps) > self.processor.num_cores:
            raise ValueError(
                f"batch scenario {index}: {len(apps)} applications exceed "
                f"the {self.processor.num_cores} cores of {self.processor.name}"
            )
        if pstate is None:
            pstate = self.processor.pstates.fastest
        alloc = None
        if fixed is not None:
            alloc = np.asarray(fixed, dtype=float)
            capacity = float(self.processor.llc.size_bytes)
            if alloc.shape != (len(apps),):
                raise ValueError(
                    f"batch scenario {index}: need one occupancy per "
                    f"application, got shape {alloc.shape}"
                )
            if np.any(alloc < 0.0) or alloc.sum() > capacity * (1 + 1e-9):
                raise ValueError(
                    f"batch scenario {index}: fixed occupancies must be "
                    f"non-negative and sum to at most the LLC capacity"
                )
        return apps, pstate, alloc

    def _solve_steady_state_batched(self, requests) -> list["SteadyState"]:
        entries = [
            self._normalize_request(request, i)
            for i, request in enumerate(requests)
        ]
        if not entries:
            return []
        results: list[SteadyState | None] = [None] * len(entries)
        keys = [
            solve_key(self.processor.name, pstate.frequency_hz, apps, alloc)
            for apps, pstate, alloc in entries
        ]
        # Pass 1 — serve cache hits and collapse in-batch duplicates.  The
        # solve is a pure function of the key, so deduplication is exact
        # even on an engine without a cache.
        pending: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        dedupe_hits = 0
        for i, key in enumerate(keys):
            members = pending.get(key)
            if members is not None:
                members.append(i)
                dedupe_hits += 1
                continue
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    self.stats.record_hit()
                    GLOBAL_ENGINE_STATS.record_hit()
                    apps, pstate, _ = entries[i]
                    results[i] = replace(cached, apps=apps, pstate=pstate)
                    continue
                self.stats.record_miss()
                GLOBAL_ENGINE_STATS.record_miss()
            pending[key] = [i]
            order.append(key)
        # Pass 2 — one stacked solve over the unique misses.
        iterations_saved = 0
        failures: list[BatchFailure] = []
        if order:
            unique = [entries[pending[key][0]] for key in order]
            states, iterations_saved = self._solve_fixed_point_batched(unique)
            for key, state in zip(order, states):
                members = pending[key]
                if state is None:
                    self.stats.record_failure()
                    GLOBAL_ENGINE_STATS.record_failure()
                    for i in members:
                        apps, pstate, _ = entries[i]
                        failures.append(
                            BatchFailure(
                                index=i,
                                target=apps[0].name,
                                co_runners=tuple(a.name for a in apps[1:]),
                                frequency_ghz=pstate.frequency_ghz,
                            )
                        )
                    continue
                self.stats.record_solve(state.iterations)
                GLOBAL_ENGINE_STATS.record_solve(state.iterations)
                if self.cache is not None:
                    if self.cache.put(key, state):
                        self.stats.record_eviction()
                        GLOBAL_ENGINE_STATS.record_eviction()
                for i in members:
                    apps, pstate, _ = entries[i]
                    results[i] = replace(state, apps=apps, pstate=pstate)
        self.stats.record_batch(len(entries), dedupe_hits, iterations_saved)
        GLOBAL_ENGINE_STATS.record_batch(
            len(entries), dedupe_hits, iterations_saved
        )
        if failures:
            failures.sort(key=lambda f: f.index)
            detail = "; ".join(f.describe() for f in failures)
            raise BatchConvergenceError(
                f"steady state did not converge in {self.max_iterations} "
                f"iterations for {len(failures)} of {len(entries)} batched "
                f"scenarios on {self.processor.name}: {detail}",
                failures=failures,
                states=results,
            )
        return results

    def _solve_fixed_point_batched(
        self,
        entries: list[tuple[tuple[ApplicationSpec, ...], PState, np.ndarray | None]],
    ) -> tuple[list["SteadyState | None"], int]:
        """Advance ``S`` scenarios as one ``(S, A)`` stacked fixed point.

        Scenarios narrower than the widest are padded with inert columns
        (``cpi=1, api=0, mlp=1``, zero-weight reuse mixtures) whose every
        contribution to a reduction is an exact IEEE zero — combined with
        the :func:`~repro.cache.reuse.ordered_sum` discipline this makes
        each row's trajectory bit-identical to the serial solver's.
        Converged rows freeze: they leave the live set and stop paying for
        iterations (the savings are tallied for :class:`EngineStats`).
        """
        s = len(entries)
        n_apps = [len(apps) for apps, _, _ in entries]
        a = max(n_apps)
        capacity = float(self.processor.llc.size_bytes)
        line = float(self.processor.llc.line_bytes)
        hit_ns = self.processor.llc.hit_latency_ns * HIT_EXPOSURE

        f_hz = np.array([pstate.frequency_hz for _, pstate, _ in entries])[:, None]
        cpi = np.ones((s, a))
        api = np.zeros((s, a))
        mlp = np.ones((s, a))
        for i, (apps, _, _) in enumerate(entries):
            n = n_apps[i]
            cpi[i, :n] = [app.base_cpi for app in apps]
            api[i, :n] = [app.accesses_per_instruction for app in apps]
            mlp[i, :n] = [app.mlp for app in apps]
        stack = ProfileStack(
            [[app.reuse for app in apps] for apps, _, _ in entries], pad_apps=a
        )
        valid = stack.valid
        demand = np.minimum(stack.footprints, capacity)

        pinned = np.array([alloc is not None for _, _, alloc in entries])
        fixed = np.zeros((s, a))
        for i, (apps, _, alloc) in enumerate(entries):
            if alloc is not None:
                fixed[i, : n_apps[i]] = np.minimum(alloc, demand[i, : n_apps[i]])
        # Row policies, mirroring the serial branches: pinned rows never
        # move, rows whose demand fits keep occupancy == demand, the rest
        # compete through the waterfill.
        fits = np.where(pinned, True, ordered_sum(demand) <= capacity)
        free = fits & ~pinned
        compete = ~fits

        occ = np.where(pinned[:, None], fixed, demand)
        if compete.any():
            rows = np.flatnonzero(compete)
            occ[rows] = waterfill_batched(
                demand[rows], demand[rows], capacity, valid=valid[rows]
            )
        tpi = cpi / f_hz
        damp = self.damping
        active = np.ones(s, dtype=bool)
        iters = np.zeros(s, dtype=int)
        last_it = 0
        for it in range(1, self.max_iterations + 1):
            if not active.any():
                break
            last_it = it
            if it % 100 == 0:
                damp *= 0.5
            live = np.flatnonzero(active)
            occ_l = occ[live]
            tpi_l = tpi[live]
            rate = api[live] / tpi_l
            miss = stack.miss_ratio(occ_l, rows=live)
            occ_new = occ_l.copy()
            free_l = free[live]
            if free_l.any():
                occ_new[free_l] = demand[live][free_l]
            comp_l = compete[live]
            if comp_l.any():
                rows = live[comp_l]
                pressure = rate[comp_l] * np.maximum(miss[comp_l], PRESSURE_FLOOR)
                target = waterfill_batched(
                    pressure, demand[rows], capacity, valid=valid[rows]
                )
                occ_new[comp_l] = (1.0 - damp) * occ_l[comp_l] + damp * target
            bandwidth = ordered_sum(rate * miss) * line
            lat_ns = np.asarray(
                self.dram.effective_latency_ns(bandwidth), dtype=float
            )
            stall_ns = (1.0 - miss) * hit_ns + miss * (lat_ns[:, None] / mlp[live])
            tpi_new = (1.0 - damp) * tpi_l + damp * (
                cpi[live] / f_hz[live] + api[live] * stall_ns * 1e-9
            )
            occ_delta = np.max(np.abs(occ_new - occ_l), axis=1) / capacity
            tpi_delta = np.max(np.abs(tpi_new - tpi_l) / tpi_l, axis=1)
            occ[live] = occ_new
            tpi[live] = tpi_new
            iters[live] = it
            done = (occ_delta < self.rel_tolerance) & (
                tpi_delta < self.rel_tolerance
            )
            if done.any():
                active[live[done]] = False

        converged = ~active
        iterations_saved = int(np.sum(last_it - iters[converged]))
        miss = stack.miss_ratio(occ)
        bandwidth = ordered_sum(api / tpi * miss) * line
        rho = np.asarray(self.dram.utilization(bandwidth), dtype=float)
        lat_ns = np.asarray(self.dram.effective_latency_ns(bandwidth), dtype=float)
        states: list[SteadyState | None] = []
        for i, (apps, pstate, _) in enumerate(entries):
            if active[i]:
                states.append(None)
                continue
            n = n_apps[i]
            states.append(
                SteadyState(
                    apps=apps,
                    pstate=pstate,
                    seconds_per_instruction=tpi[i, :n].copy(),
                    miss_ratios=miss[i, :n].copy(),
                    occupancies_bytes=occ[i, :n].copy(),
                    miss_bandwidth_bytes_per_s=float(bandwidth[i]),
                    dram_utilization=float(rho[i]),
                    dram_latency_ns=float(lat_ns[i]),
                    iterations=int(iters[i]),
                )
            )
        return states, iterations_saved
