"""Analytic steady-state co-location execution engine.

This is the fast substrate used for bulk data collection: it computes, for
one multicore processor at one P-state running a *target* application
co-located with any mix of co-runners, the steady-state execution rate of
every application and from it the target's execution time and counter
values.

The model couples three mutually-dependent quantities in one fixed point:

* per-application **throughput** (instructions/second) — depends on memory
  stalls;
* shared-LLC **occupancies** — depend on every application's insertion
  (miss) rate, which depends on throughput and occupancy;
* the loaded **DRAM latency** — depends on the aggregate miss bandwidth,
  which depends on throughput and miss ratios.

Each iteration evaluates all miss ratios through a vectorized
:class:`~repro.cache.reuse.ProfileTable` and solves the occupancy split
with the same rate-proportional waterfilling as the reference model in
:mod:`repro.cache.sharing` (agreement between the two is tested).  Damped
iteration converges in a few dozen steps.

Co-runners are modeled as *continuously running*: the paper's test harness
restarts co-located applications so that pressure on the target stays
constant for the target's whole run — steady state is exactly the right
abstraction.  Measurement noise is a seeded multiplicative perturbation
applied to reported times only (the paper reports ~quarter-percent spread
across repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cache.reuse import ProfileTable
from ..cache.sharing import waterfill
from ..machine.pstates import PState
from ..machine.processor import MulticoreProcessor
from ..memsys.dram import DRAMModel
from ..obs.trace import get_tracer
from ..workloads.app import ApplicationSpec, PhasedApplication
from .solve_cache import GLOBAL_ENGINE_STATS, EngineStats, SolveCache, solve_key

__all__ = [
    "AppRun",
    "ColocationRun",
    "ConvergenceError",
    "SimulationEngine",
    "SteadyState",
]

#: Exposed fraction of the LLC hit latency (out-of-order cores hide the
#: rest); see :meth:`repro.memsys.hierarchy.MemoryHierarchy.stall_ns_per_access`.
HIT_EXPOSURE = 0.3

#: Insertion-pressure floor used by the occupancy waterfilling, matching
#: :func:`repro.cache.sharing.solve_shared_cache`.
PRESSURE_FLOOR = 0.002


class ConvergenceError(RuntimeError):
    """Raised when the steady-state fixed point fails to converge."""


@dataclass(frozen=True)
class SteadyState:
    """Instantaneous steady-state rates for one set of co-located apps.

    All arrays are indexed like ``apps``.  This is rate information only —
    how long anything runs (and hence counter totals) is the caller's
    concern, which is what lets the time-sliced simulator reuse it for
    workloads whose membership changes over time.
    """

    apps: tuple[ApplicationSpec, ...]
    pstate: PState
    seconds_per_instruction: np.ndarray
    miss_ratios: np.ndarray
    occupancies_bytes: np.ndarray
    miss_bandwidth_bytes_per_s: float
    dram_utilization: float
    dram_latency_ns: float
    iterations: int

    @property
    def instructions_per_second(self) -> np.ndarray:
        """Per-application steady-state throughput."""
        return 1.0 / self.seconds_per_instruction


@dataclass(frozen=True)
class AppRun:
    """Steady-state result for one application in a co-location.

    Counter-style totals (instructions, accesses, misses) are reported for
    one complete run of the application at its steady-state rate.
    """

    app: ApplicationSpec
    execution_time_s: float
    instructions: float
    llc_accesses: float
    llc_misses: float
    miss_ratio: float
    occupancy_bytes: float
    instructions_per_second: float

    @property
    def memory_intensity(self) -> float:
        """LLC misses per instruction under this co-location."""
        return self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def ca_per_ins(self) -> float:
        """LLC accesses per instruction (the paper's CA/INS feature)."""
        return self.llc_accesses / self.instructions if self.instructions else 0.0

    @property
    def cm_per_ca(self) -> float:
        """LLC misses per access (the paper's CM/CA feature)."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0


@dataclass(frozen=True)
class ColocationRun:
    """Result of simulating one co-location scenario.

    ``runs[0]`` is the target application; the rest are co-runners in the
    order given.  Machine-level state is included for analysis/debugging.
    """

    processor_name: str
    frequency_ghz: float
    runs: tuple[AppRun, ...]
    dram_utilization: float
    dram_latency_ns: float
    iterations: int

    @property
    def target(self) -> AppRun:
        """The target application's run."""
        return self.runs[0]

    @property
    def co_runners(self) -> tuple[AppRun, ...]:
        """All co-located applications' runs."""
        return self.runs[1:]


class SimulationEngine:
    """Analytic co-location simulator for one multicore processor."""

    def __init__(
        self,
        processor: MulticoreProcessor,
        *,
        noise_sigma: float = 0.01,
        max_iterations: int = 600,
        rel_tolerance: float = 1e-7,
        damping: float = 0.5,
        cache: SolveCache | None = None,
    ) -> None:
        if noise_sigma < 0.0:
            raise ValueError("noise sigma must be non-negative")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        self.processor = processor
        self.dram = DRAMModel(processor.dram)
        self.noise_sigma = noise_sigma
        self.max_iterations = max_iterations
        self.rel_tolerance = rel_tolerance
        self.damping = damping
        #: Optional memo of steady-state solves; caching is exact because
        #: measurement noise is applied outside the solve.
        self.cache = cache
        #: Running solve/cache/convergence counters (see :class:`EngineStats`).
        self.stats = EngineStats()

    # ------------------------------------------------------------------ API

    def run(
        self,
        target: ApplicationSpec | PhasedApplication,
        co_runners: list[ApplicationSpec] | tuple[ApplicationSpec, ...] = (),
        *,
        pstate: PState | None = None,
        rng: np.random.Generator | None = None,
        fixed_occupancies: np.ndarray | None = None,
    ) -> ColocationRun:
        """Simulate ``target`` co-located with ``co_runners``.

        Parameters
        ----------
        target:
            The application whose execution time is measured.  A
            :class:`PhasedApplication` is simulated phase by phase (each
            phase reaches its own steady state) and the results summed.
        co_runners:
            Applications occupying the other cores (continuously running).
            Phased co-runners are folded to their aggregate behaviour — a
            restarting co-runner's pressure time-averages over its phases,
            which is exactly what the aggregate encodes.
        pstate:
            Operating P-state; defaults to the fastest.
        rng:
            When given, multiplicative measurement noise is applied to the
            reported execution time; omit for the noise-free prediction.
        fixed_occupancies:
            When given (one byte count per application, target first),
            LLC occupancies are pinned instead of competed for — a
            way-partitioned cache (see :mod:`repro.cache.partition`).
            DRAM bandwidth remains shared.  Not supported for phased
            targets.
        """
        co_runners = [
            c.aggregate() if isinstance(c, PhasedApplication) else c
            for c in co_runners
        ]
        self.processor.validate_co_location_count(len(co_runners))
        if pstate is None:
            pstate = self.processor.pstates.fastest
        if isinstance(target, PhasedApplication):
            if fixed_occupancies is not None:
                raise ValueError(
                    "fixed occupancies are not supported for phased targets"
                )
            return self._run_phased(target, tuple(co_runners), pstate, rng)
        return self._run_steady(
            target, tuple(co_runners), pstate, rng, fixed_occupancies
        )

    def baseline(
        self,
        app: ApplicationSpec | PhasedApplication,
        *,
        pstate: PState | None = None,
        rng: np.random.Generator | None = None,
    ) -> ColocationRun:
        """Solo (no co-location) run — the paper's baseline measurement."""
        return self.run(app, (), pstate=pstate, rng=rng)

    # ------------------------------------------------------------ internals

    def _run_phased(
        self,
        target: PhasedApplication,
        co_runners: tuple[ApplicationSpec, ...],
        pstate: PState,
        rng: np.random.Generator | None,
    ) -> ColocationRun:
        total_time = 0.0
        tot_ins = tot_acc = tot_miss = 0.0
        last = None
        for phase_spec in target.phase_specs():
            run = self._run_steady(phase_spec, co_runners, pstate, rng=None)
            total_time += run.target.execution_time_s
            tot_ins += run.target.instructions
            tot_acc += run.target.llc_accesses
            tot_miss += run.target.llc_misses
            last = run
        if last is None:
            raise ValueError(
                f"phased application {target.name!r} yielded no phases to "
                f"simulate"
            )
        if rng is not None and self.noise_sigma > 0.0:
            total_time *= float(np.exp(rng.normal(0.0, self.noise_sigma)))
        target_run = AppRun(
            app=target.aggregate(),
            execution_time_s=total_time,
            instructions=tot_ins,
            llc_accesses=tot_acc,
            llc_misses=tot_miss,
            miss_ratio=tot_miss / tot_acc if tot_acc else 0.0,
            occupancy_bytes=last.target.occupancy_bytes,
            instructions_per_second=tot_ins / total_time if total_time else 0.0,
        )
        return ColocationRun(
            processor_name=self.processor.name,
            frequency_ghz=pstate.frequency_ghz,
            runs=(target_run,) + last.co_runners,
            dram_utilization=last.dram_utilization,
            dram_latency_ns=last.dram_latency_ns,
            iterations=last.iterations,
        )

    def solve_steady_state(
        self,
        apps: tuple[ApplicationSpec, ...] | list[ApplicationSpec],
        pstate: PState | None = None,
        *,
        fixed_occupancies: np.ndarray | None = None,
    ) -> "SteadyState":
        """Solve the joint throughput/occupancy/DRAM fixed point.

        The low-level entry point used by :meth:`run` and by the
        time-sliced simulator (:mod:`repro.sim.timesliced`): given the set
        of applications currently on the machine, returns every
        application's steady-state rate and the memory-system state, with
        no notion of run length or noise.

        When the engine has a :class:`SolveCache`, solves are memoized on
        ``(processor, frequency, per-app behaviour, pinned occupancies)``
        and repeated scenarios are served from the cache bit-exactly.
        Every call is tallied in :attr:`stats` and in the process-wide
        :data:`~repro.sim.solve_cache.GLOBAL_ENGINE_STATS`; when tracing
        is enabled each call becomes an ``engine.solve`` span.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_steady_state(apps, pstate, fixed_occupancies)
        hits_before = self.stats.cache_hits
        with tracer.span("engine.solve", processor=self.processor.name) as span:
            state = self._solve_steady_state(apps, pstate, fixed_occupancies)
            span.set(
                apps=len(state.apps),
                cache_hit=self.stats.cache_hits > hits_before,
                iterations=state.iterations,
                frequency_ghz=state.pstate.frequency_ghz,
            )
            return state

    def _solve_steady_state(
        self,
        apps: tuple[ApplicationSpec, ...] | list[ApplicationSpec],
        pstate: PState | None,
        fixed_occupancies: np.ndarray | None,
    ) -> "SteadyState":
        apps = tuple(apps)
        if not apps:
            raise ValueError("need at least one application")
        if len(apps) > self.processor.num_cores:
            raise ValueError(
                f"{len(apps)} applications exceed the "
                f"{self.processor.num_cores} cores of {self.processor.name}"
            )
        if pstate is None:
            pstate = self.processor.pstates.fastest
        capacity = float(self.processor.llc.size_bytes)
        alloc = None
        if fixed_occupancies is not None:
            alloc = np.asarray(fixed_occupancies, dtype=float)
            if alloc.shape != (len(apps),):
                raise ValueError(
                    f"need one occupancy per application, got shape {alloc.shape}"
                )
            if np.any(alloc < 0.0) or alloc.sum() > capacity * (1 + 1e-9):
                raise ValueError(
                    "fixed occupancies must be non-negative and sum to at "
                    "most the LLC capacity"
                )

        key = None
        if self.cache is not None:
            key = solve_key(self.processor.name, pstate.frequency_hz, apps, alloc)
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.record_hit()
                GLOBAL_ENGINE_STATS.record_hit()
                # Re-label with the requested apps/pstate: the cache keys on
                # behaviour only, so names and run lengths may differ.
                return replace(cached, apps=apps, pstate=pstate)
            self.stats.record_miss()
            GLOBAL_ENGINE_STATS.record_miss()
        try:
            state = self._solve_fixed_point(apps, pstate, alloc)
        except ConvergenceError:
            self.stats.record_failure()
            GLOBAL_ENGINE_STATS.record_failure()
            raise
        self.stats.record_solve(state.iterations)
        GLOBAL_ENGINE_STATS.record_solve(state.iterations)
        if key is not None:
            self.cache.put(key, state)
        return state

    def _solve_fixed_point(
        self,
        apps: tuple[ApplicationSpec, ...],
        pstate: PState,
        alloc: np.ndarray | None,
    ) -> "SteadyState":
        f_hz = pstate.frequency_hz
        capacity = float(self.processor.llc.size_bytes)
        line = float(self.processor.llc.line_bytes)
        hit_ns = self.processor.llc.hit_latency_ns * HIT_EXPOSURE

        cpi = np.array([a.base_cpi for a in apps])
        api = np.array([a.accesses_per_instruction for a in apps])
        mlp = np.array([a.mlp for a in apps])
        table = ProfileTable([a.reuse for a in apps])
        demand = np.minimum(table.footprints, capacity)
        pinned = alloc is not None
        if pinned:
            # An application cannot make use of more cache than it touches.
            fixed = np.minimum(alloc, demand)
            fits = True  # no competition: occupancies never move
        else:
            fixed = None
            fits = demand.sum() <= capacity

        # Initial iterate: footprint-proportional occupancy, stall-free speed.
        if pinned:
            occ = fixed.copy()
        else:
            occ = demand.copy() if fits else waterfill(demand.copy(), demand, capacity)
        tpi = cpi / f_hz  # seconds per instruction
        damp = self.damping
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # The waterfill's demand clipping makes the occupancy map
            # piecewise: near a clipping boundary the undamped iteration
            # can limit-cycle.  Decaying the damping breaks such cycles
            # while leaving well-behaved cases (which converge long before
            # this) untouched.
            if iterations % 100 == 0:
                damp *= 0.5
            rate = api / tpi  # LLC accesses per second per app
            miss = table.miss_ratio(occ)
            if pinned:
                occ_new = occ
            elif fits:
                occ_new = demand
            else:
                pressure = rate * np.maximum(miss, PRESSURE_FLOOR)
                occ_new = (1.0 - damp) * occ + damp * waterfill(
                    pressure, demand, capacity
                )
            bandwidth = float((rate * miss).sum()) * line
            lat_ns = float(self.dram.effective_latency_ns(bandwidth))
            stall_ns = (1.0 - miss) * hit_ns + miss * (lat_ns / mlp)
            tpi_new = (1.0 - damp) * tpi + damp * (cpi / f_hz + api * stall_ns * 1e-9)
            occ_delta = float(np.max(np.abs(occ_new - occ))) / capacity
            tpi_delta = float(np.max(np.abs(tpi_new - tpi) / tpi))
            occ, tpi = occ_new, tpi_new
            if occ_delta < self.rel_tolerance and tpi_delta < self.rel_tolerance:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"steady state did not converge in {self.max_iterations} "
                f"iterations for {[a.name for a in apps]} on {self.processor.name}"
            )

        miss = table.miss_ratio(occ)
        bandwidth = float((api / tpi * miss).sum()) * line
        rho = float(self.dram.utilization(bandwidth))
        lat_ns = float(self.dram.effective_latency_ns(bandwidth))
        return SteadyState(
            apps=apps,
            pstate=pstate,
            seconds_per_instruction=tpi,
            miss_ratios=miss,
            occupancies_bytes=occ,
            miss_bandwidth_bytes_per_s=bandwidth,
            dram_utilization=rho,
            dram_latency_ns=lat_ns,
            iterations=iterations,
        )

    def _run_steady(
        self,
        target: ApplicationSpec,
        co_runners: tuple[ApplicationSpec, ...],
        pstate: PState,
        rng: np.random.Generator | None,
        fixed_occupancies: np.ndarray | None = None,
    ) -> ColocationRun:
        apps = (target,) + co_runners
        state = self.solve_steady_state(
            apps, pstate, fixed_occupancies=fixed_occupancies
        )
        tpi = state.seconds_per_instruction
        miss = state.miss_ratios
        occ = state.occupancies_bytes
        api = np.array([a.accesses_per_instruction for a in apps])

        runs = []
        for i, app in enumerate(apps):
            time_s = float(app.instructions * tpi[i])
            if i == 0 and rng is not None and self.noise_sigma > 0.0:
                time_s *= float(np.exp(rng.normal(0.0, self.noise_sigma)))
            accesses = app.instructions * api[i]
            runs.append(
                AppRun(
                    app=app,
                    execution_time_s=time_s,
                    instructions=app.instructions,
                    llc_accesses=accesses,
                    llc_misses=accesses * float(miss[i]),
                    miss_ratio=float(miss[i]),
                    occupancy_bytes=float(occ[i]),
                    instructions_per_second=1.0 / float(tpi[i]),
                )
            )
        return ColocationRun(
            processor_name=self.processor.name,
            frequency_ghz=pstate.frequency_ghz,
            runs=tuple(runs),
            dram_utilization=state.dram_utilization,
            dram_latency_ns=state.dram_latency_ns,
            iterations=state.iterations,
        )
