"""Trace-driven shared-cache co-location simulation.

The slow, faithful counterpart of the analytic engine: synthetic address
traces for every co-located application are interleaved (in proportion to
their access rates) through one shared set-associative LRU cache, and the
per-application miss ratios and occupancies that *emerge* are measured.

This module exists to validate the analytic cache-sharing model — the
rate-proportional occupancy fixed point of :mod:`repro.cache.sharing` —
against ground truth.  It operates on validation-scale profiles (use
:func:`repro.workloads.tracegen.scaled_profile` to shrink the Table III
applications); driving it with full-size footprints would need billions of
references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.setassoc import SetAssociativeCache
from ..machine.processor import CacheGeometry
from ..cache.reuse import ReuseProfile
from ..workloads.tracegen import generate_trace

__all__ = ["TraceCompetitor", "TraceSharingResult", "simulate_trace_sharing"]


@dataclass(frozen=True)
class TraceCompetitor:
    """One application in a trace-driven sharing experiment.

    ``access_weight`` is the application's relative LLC access rate; the
    interleaver issues its references with this probability.
    """

    name: str
    profile: ReuseProfile
    access_weight: float

    def __post_init__(self) -> None:
        if self.access_weight <= 0.0:
            raise ValueError("access weight must be positive")


@dataclass(frozen=True)
class TraceSharingResult:
    """Measured steady-state behaviour of a shared cache under co-location.

    All arrays are indexed like the competitor list.
    """

    names: tuple[str, ...]
    miss_ratios: np.ndarray
    occupancies_bytes: np.ndarray
    accesses: np.ndarray
    total_references: int


def simulate_trace_sharing(
    competitors: list[TraceCompetitor],
    geometry: CacheGeometry,
    num_references: int,
    rng: np.random.Generator,
    *,
    warmup_fraction: float = 0.3,
) -> TraceSharingResult:
    """Interleave competitor traces through one shared cache.

    Parameters
    ----------
    competitors:
        The co-located applications.
    geometry:
        Shared cache shape.
    num_references:
        Total interleaved references (across all competitors).
    rng:
        Drives both trace generation and the interleaving.
    warmup_fraction:
        Leading fraction of references excluded from the reported stats
        (the cache must reach steady-state occupancy first).

    Notes
    -----
    Each competitor's trace wraps around when exhausted, modeling the
    paper's continuously-restarted co-located applications.
    """
    if not competitors:
        raise ValueError("need at least one competitor")
    if num_references <= 0:
        raise ValueError("need a positive reference budget")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup fraction must be in [0, 1)")

    weights = np.array([c.access_weight for c in competitors], dtype=float)
    weights = weights / weights.sum()

    # Pre-generate one trace per competitor, sized to its expected share.
    traces = []
    for c, w in zip(competitors, weights):
        length = max(int(num_references * w), 1024)
        traces.append(generate_trace(c.profile, geometry.line_bytes, length, rng))

    owners = rng.choice(len(competitors), size=num_references, p=weights)
    cache = SetAssociativeCache(geometry)
    cursors = np.zeros(len(competitors), dtype=np.int64)

    warmup = int(num_references * warmup_fraction)
    for step, owner in enumerate(owners):
        if step == warmup:
            cache.reset_stats()
        trace = traces[owner]
        line = int(trace[cursors[owner] % len(trace)])
        cursors[owner] += 1
        cache.access(line, owner=int(owner))

    miss = np.empty(len(competitors))
    acc = np.empty(len(competitors), dtype=np.int64)
    occ = np.empty(len(competitors))
    for i in range(len(competitors)):
        stats = cache.owner_stats(i)
        miss[i] = stats.miss_ratio
        acc[i] = stats.accesses
        occ[i] = cache.occupancy(i) * geometry.line_bytes
    return TraceSharingResult(
        names=tuple(c.name for c in competitors),
        miss_ratios=miss,
        occupancies_bytes=occ,
        accesses=acc,
        total_references=num_references,
    )
