"""Memory intensity classes (paper, Table III).

The paper groups its eleven applications into four classes by baseline
memory intensity (LLC misses per instruction, measured solo).  Class I is
the most memory-bound, Class IV the most CPU-bound, and adjacent classes
differ by roughly an order of magnitude — which is what makes class-level
(rather than per-application) information still useful to a resource
manager (Section IV-B1).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "MemoryIntensityClass",
    "CLASS_BOUNDARIES",
    "classify_intensity",
    "class_representative_intensity",
]


class MemoryIntensityClass(enum.IntEnum):
    """The four memory intensity classes, Class I most memory intensive."""

    CLASS_I = 1
    CLASS_II = 2
    CLASS_III = 3
    CLASS_IV = 4

    @property
    def roman(self) -> str:
        """Roman-numeral label as printed in the paper ("I".."IV")."""
        return ["I", "II", "III", "IV"][self.value - 1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Class {self.roman}"


#: Lower intensity bound (misses / instruction) of classes I..III; anything
#: below the Class III bound is Class IV.  Boundaries are an order of
#: magnitude apart, mirroring the paper's observation that "memory intensity
#: values between application classes tend to differ by orders of magnitude".
CLASS_BOUNDARIES: dict[MemoryIntensityClass, float] = {
    MemoryIntensityClass.CLASS_I: 2e-3,
    MemoryIntensityClass.CLASS_II: 2e-4,
    MemoryIntensityClass.CLASS_III: 2e-5,
}


def classify_intensity(memory_intensity: float) -> MemoryIntensityClass:
    """Map a baseline memory intensity to its class.

    >>> classify_intensity(5e-3)
    <MemoryIntensityClass.CLASS_I: 1>
    >>> classify_intensity(1e-6)
    <MemoryIntensityClass.CLASS_IV: 4>
    """
    if memory_intensity < 0.0:
        raise ValueError("memory intensity cannot be negative")
    for cls, bound in CLASS_BOUNDARIES.items():
        if memory_intensity >= bound:
            return cls
    return MemoryIntensityClass.CLASS_IV


def class_representative_intensity(cls: MemoryIntensityClass) -> float:
    """Geometric-mid representative intensity for one class.

    Supports the paper's "developer only knows the class" use case: a model
    can be evaluated with the class representative substituted for an
    application's true memory intensity.
    """
    bounds = CLASS_BOUNDARIES
    if cls is MemoryIntensityClass.CLASS_I:
        # Open-ended at the top; use 3x the boundary as a representative.
        return float(3.0 * bounds[MemoryIntensityClass.CLASS_I])
    if cls is MemoryIntensityClass.CLASS_IV:
        # Open-ended at the bottom; one order of magnitude under the bound.
        return float(bounds[MemoryIntensityClass.CLASS_III] / 10.0)
    upper = {
        MemoryIntensityClass.CLASS_II: bounds[MemoryIntensityClass.CLASS_I],
        MemoryIntensityClass.CLASS_III: bounds[MemoryIntensityClass.CLASS_II],
    }[cls]
    lower = bounds[cls]
    return float(np.sqrt(lower * upper))
