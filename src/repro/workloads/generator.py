"""Random synthetic application generation.

The Table III suite is fixed; this module generates *new* applications
with controlled memory-intensity class membership.  Uses:

* stress-testing the methodology on applications it has never seen (the
  paper's training data is explicitly designed to "make predictions about
  applications that it has not seen previously"),
* property-based tests over the simulator (any generated app must behave
  physically), and
* building larger job batches for the scheduling extension.

Generation targets a memory intensity measured at a *reference capacity*:
parameters are sampled within class-appropriate ranges, then the access
rate is solved so the resulting solo intensity lands inside the class
band on the reference machine.
"""

from __future__ import annotations

import numpy as np

from ..cache.reuse import ReuseProfile
from .app import ApplicationSpec
from .classes import CLASS_BOUNDARIES, MemoryIntensityClass, classify_intensity

__all__ = ["generate_application", "generate_batch"]

_MB = 1024.0 * 1024.0

#: Per-class structural parameter ranges: (small-ws MB range, big-ws MB
#: range, compulsory range).  Class I streams far past any LLC; Class IV
#: is cache resident.
_CLASS_STRUCTURE: dict[MemoryIntensityClass, tuple] = {
    MemoryIntensityClass.CLASS_I: ((1.0, 8.0), (100.0, 400.0), (0.005, 0.03)),
    MemoryIntensityClass.CLASS_II: ((4.0, 12.0), (40.0, 90.0), (0.002, 0.008)),
    MemoryIntensityClass.CLASS_III: ((0.5, 2.0), (3.0, 6.0), (0.0005, 0.002)),
    MemoryIntensityClass.CLASS_IV: ((0.2, 1.0), (1.5, 4.0), (0.0001, 0.0004)),
}


def _intensity_band(cls: MemoryIntensityClass) -> tuple[float, float]:
    """Target solo-intensity band for a class (interior, not edge)."""
    bounds = CLASS_BOUNDARIES
    if cls is MemoryIntensityClass.CLASS_I:
        lo = bounds[MemoryIntensityClass.CLASS_I]
        return (1.5 * lo, 10.0 * lo)
    if cls is MemoryIntensityClass.CLASS_IV:
        hi = bounds[MemoryIntensityClass.CLASS_III]
        return (hi / 20.0, hi / 1.5)
    hi = {
        MemoryIntensityClass.CLASS_II: bounds[MemoryIntensityClass.CLASS_I],
        MemoryIntensityClass.CLASS_III: bounds[MemoryIntensityClass.CLASS_II],
    }[cls]
    lo = bounds[cls]
    return (1.3 * lo, hi / 1.3)


def generate_application(
    cls: MemoryIntensityClass,
    rng: np.random.Generator,
    *,
    name: str | None = None,
    reference_capacity_bytes: float = 12.0 * _MB,
) -> ApplicationSpec:
    """Generate one application guaranteed to fall in ``cls``.

    Parameters
    ----------
    cls:
        Target memory intensity class.
    rng:
        Sampling randomness.
    name:
        Application name; auto-generated when omitted.
    reference_capacity_bytes:
        LLC capacity the class membership is measured at (defaults to the
        reference machine's 12 MB, matching Table III).
    """
    (small_lo, small_hi), (big_lo, big_hi), (comp_lo, comp_hi) = _CLASS_STRUCTURE[cls]
    small_ws = rng.uniform(small_lo, small_hi) * _MB
    big_ws = rng.uniform(big_lo, big_hi) * _MB
    big_weight = rng.uniform(0.3, 0.8)
    compulsory = rng.uniform(comp_lo, comp_hi)
    profile = ReuseProfile.mixture(
        [
            (small_ws, 1.0 - big_weight, rng.uniform(2.5, 3.5)),
            (big_ws, big_weight, rng.uniform(2.0, 3.6)),
        ],
        compulsory=compulsory,
    )

    # Solve the access rate so the solo intensity lands in the class band.
    occupancy = min(profile.footprint_bytes, reference_capacity_bytes)
    solo_miss = float(profile.miss_ratio(occupancy))
    lo, hi = _intensity_band(cls)
    target_intensity = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
    api = target_intensity / solo_miss
    # Physical cap on LLC accesses per instruction; if exceeded, fall to
    # the cap and accept the (still in-band, lower) intensity.
    api = min(api, 0.05)

    spec = ApplicationSpec(
        name=name or f"synthetic-{cls.roman.lower()}-{rng.integers(1_000_000):06d}",
        suite="SYNTH",
        instructions=rng.uniform(250.0, 700.0) * 1e9,
        base_cpi=rng.uniform(0.6, 1.1),
        accesses_per_instruction=api,
        reuse=profile,
        mlp=rng.uniform(1.1, 2.4),
    )
    got = classify_intensity(spec.solo_memory_intensity(reference_capacity_bytes))
    if got is not cls:
        # The api cap can only *reduce* intensity; retry with a fresh
        # structure (rare: requires an extreme small-miss-ratio draw).
        return generate_application(
            cls, rng, name=name, reference_capacity_bytes=reference_capacity_bytes
        )
    return spec


def generate_batch(
    class_counts: dict[MemoryIntensityClass, int],
    rng: np.random.Generator,
    *,
    reference_capacity_bytes: float = 12.0 * _MB,
) -> list[ApplicationSpec]:
    """Generate a batch with the requested per-class composition."""
    batch: list[ApplicationSpec] = []
    for cls, count in class_counts.items():
        if count < 0:
            raise ValueError("class counts must be non-negative")
        for _ in range(count):
            batch.append(
                generate_application(
                    cls, rng, reference_capacity_bytes=reference_capacity_bytes
                )
            )
    return batch
