"""Synthetic address trace generation from reuse profiles.

Generates line-granularity access traces whose LRU stack-distance
distribution matches a :class:`~repro.cache.reuse.ReuseProfile`, using the
classic inverse construction: to emit an access with stack distance *d*,
touch the *d*-th most recently used distinct line.  Replaying such a trace
through a fully-associative LRU cache of *c* lines yields a miss ratio of
``P(distance >= c)`` — i.e. the profile's miss-ratio curve — and a
set-associative cache approximates it (validated in ``tests/cache``).

The LRU stack is a plain Python list (index 0 = most recent).  ``list.pop``
from the middle is O(stack), so generation cost grows with the working-set
size; traces are meant for validation-scale profiles (working sets of up to
a few tens of thousands of lines), not for the full Table III applications
— those are handled by the analytic engine.
"""

from __future__ import annotations

import numpy as np

from ..cache.reuse import ReuseProfile

__all__ = ["generate_trace", "scaled_profile"]


def scaled_profile(profile: ReuseProfile, factor: float) -> ReuseProfile:
    """Shrink (or grow) every working set of a profile by ``factor``.

    Used to produce validation-scale versions of the Table III applications
    whose real footprints would make trace simulation impractically slow.
    Miss-ratio *shape* is preserved: ``scaled.miss_ratio(c * factor) ==
    profile.miss_ratio(c)``.
    """
    if factor <= 0.0:
        raise ValueError("scale factor must be positive")
    parts = [
        (comp.working_set_bytes * factor, comp.weight, comp.sharpness)
        for comp in profile.components
    ]
    return ReuseProfile.mixture(parts, compulsory=profile.compulsory)


def generate_trace(
    profile: ReuseProfile,
    line_bytes: int,
    num_references: int,
    rng: np.random.Generator,
    *,
    max_stack_lines: int | None = None,
) -> np.ndarray:
    """Generate a line-number trace realizing ``profile``'s locality.

    Parameters
    ----------
    profile:
        Target reuse profile.
    line_bytes:
        Cache line size used to convert byte capacities to line distances.
    num_references:
        Trace length.
    rng:
        Seeded random generator (all stochastic components of this library
        take one explicitly).
    max_stack_lines:
        Cap on tracked stack depth; defaults to the profile footprint in
        lines.  Sampled distances beyond the cap become cold accesses.

    Returns
    -------
    numpy.ndarray of int64 line numbers, length ``num_references``.
    """
    if num_references <= 0:
        raise ValueError("trace length must be positive")
    if max_stack_lines is None:
        max_stack_lines = int(profile.footprint_bytes / line_bytes) + 1
    if max_stack_lines < 1:
        raise ValueError("stack cap must be at least one line")

    distances, probabilities = profile.stack_distance_distribution(
        line_bytes, max_distance_lines=max_stack_lines
    )
    sampled = rng.choice(distances, size=num_references, p=probabilities)

    trace = np.empty(num_references, dtype=np.int64)
    stack: list[int] = []  # index 0 = most recently used line number
    next_line = 0
    for i, d in enumerate(sampled):
        d = int(d)
        if 1 <= d <= len(stack):
            # Stack distance d (1-based: distance 1 = most recent line, so a
            # cache of d lines just barely holds it) reuses stack[d - 1].
            line = stack.pop(d - 1)
        else:
            # Cold access: allocate a fresh line number.
            line = next_line
            next_line += 1
        stack.insert(0, line)
        if len(stack) > max_stack_lines:
            stack.pop()
        trace[i] = line
    return trace
