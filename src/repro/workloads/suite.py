"""The eleven-application benchmark suite (paper, Table III).

Synthetic analogs of the paper's PARSEC (P) and NAS (N) applications.  Each
spec's parameters were chosen so that, on the reference machine (the 6-core
Xeon E5649, whose 12 MB LLC matches the "one specific system" the paper
measured Table III on), the application lands in its intended memory
intensity class, and baseline execution times at the fastest P-state fall in
the paper's reported 150–1000+ second range.

Four of the applications — ``cg`` (Class I), ``sp`` (Class II),
``fluidanimate`` (Class III) and ``ep`` (Class IV) — double as the
co-location applications used to generate training data (Section IV-B3).
"""

from __future__ import annotations

from ..cache.reuse import ReuseProfile
from .app import ApplicationSpec
from .classes import MemoryIntensityClass, classify_intensity

__all__ = [
    "BENCHMARK_SUITE",
    "TRAINING_CO_APP_NAMES",
    "all_applications",
    "get_application",
    "training_co_apps",
    "intended_class",
]


def _mb(n: float) -> float:
    return n * 1024.0 * 1024.0


def _spec(
    name: str,
    suite: str,
    giga_instructions: float,
    base_cpi: float,
    accesses_per_instruction: float,
    parts: list[tuple[float, float] | tuple[float, float, float]],
    compulsory: float,
    mlp: float,
) -> ApplicationSpec:
    return ApplicationSpec(
        name=name,
        suite=suite,
        instructions=giga_instructions * 1e9,
        base_cpi=base_cpi,
        accesses_per_instruction=accesses_per_instruction,
        reuse=ReuseProfile.mixture(parts, compulsory=compulsory),
        mlp=mlp,
    )


# --- Class I: memory bound, footprints far beyond any LLC ------------------
_CG = _spec(
    "cg", "NAS", 320.0, 0.75, 0.020,
    [(_mb(2.0), 0.20, 3.0), (_mb(320.0), 0.80, 2.2)], compulsory=0.02, mlp=1.6,
)
_CANNEAL = _spec(
    "canneal", "PARSEC", 300.0, 0.85, 0.012,
    [(_mb(6.0), 0.45, 3.0), (_mb(220.0), 0.55, 2.0)], compulsory=0.015, mlp=1.3,
)
_MG = _spec(
    "mg", "NAS", 420.0, 0.70, 0.0090,
    [(_mb(4.0), 0.38, 3.0), (_mb(140.0), 0.62, 2.4)], compulsory=0.01, mlp=2.2,
)

# --- Class II: moderately memory bound, footprints near LLC scale ----------
_SP = _spec(
    "sp", "NAS", 500.0, 0.80, 0.0016,
    [(_mb(9.0), 0.55, 3.2), (_mb(70.0), 0.45, 2.6)], compulsory=0.004, mlp=1.8,
)
_STREAMCLUSTER = _spec(
    "streamcluster", "PARSEC", 380.0, 0.90, 0.0011,
    [(_mb(11.0), 0.62, 3.4), (_mb(55.0), 0.38, 2.8)], compulsory=0.003, mlp=1.5,
)

# --- Class III: mildly memory bound, working sets around LLC size ----------
_FLUIDANIMATE = _spec(
    "fluidanimate", "PARSEC", 460.0, 0.95, 0.0045,
    [(_mb(1.2), 0.60, 3.0), (_mb(5.0), 0.40, 3.6)], compulsory=0.0015, mlp=1.4,
)
_FT = _spec(
    "ft", "NAS", 520.0, 0.85, 0.0050,
    [(_mb(1.8), 0.62, 3.0), (_mb(4.5), 0.38, 3.4)], compulsory=0.0012, mlp=2.0,
)
_LU = _spec(
    "lu", "NAS", 600.0, 0.80, 0.0040,
    [(_mb(1.0), 0.70, 3.0), (_mb(5.0), 0.30, 3.4)], compulsory=0.0010, mlp=1.7,
)

# --- Class IV: CPU bound, cache resident ------------------------------------
_EP = _spec(
    "ep", "NAS", 700.0, 0.65, 0.0010,
    [(_mb(0.4), 0.95, 3.0), (_mb(2.5), 0.05, 3.0)], compulsory=0.0002, mlp=1.2,
)
_BLACKSCHOLES = _spec(
    "blackscholes", "PARSEC", 560.0, 0.70, 0.0006,
    [(_mb(0.8), 0.90, 3.0), (_mb(3.0), 0.10, 3.0)], compulsory=0.0001, mlp=1.1,
)
_BODYTRACK = _spec(
    "bodytrack", "PARSEC", 480.0, 0.75, 0.0008,
    [(_mb(1.5), 0.85, 3.0), (_mb(5.0), 0.15, 3.0)], compulsory=0.0001, mlp=1.2,
)

#: All eleven applications, in Table III order (Class I first).
BENCHMARK_SUITE: tuple[ApplicationSpec, ...] = (
    _CG, _CANNEAL, _MG,
    _SP, _STREAMCLUSTER,
    _FLUIDANIMATE, _FT, _LU,
    _EP, _BLACKSCHOLES, _BODYTRACK,
)

#: The intended Table III class of each application (checked by the
#: calibration tests against the intensity measured on the reference
#: machine).
_INTENDED_CLASS: dict[str, MemoryIntensityClass] = {
    "cg": MemoryIntensityClass.CLASS_I,
    "canneal": MemoryIntensityClass.CLASS_I,
    "mg": MemoryIntensityClass.CLASS_I,
    "sp": MemoryIntensityClass.CLASS_II,
    "streamcluster": MemoryIntensityClass.CLASS_II,
    "fluidanimate": MemoryIntensityClass.CLASS_III,
    "ft": MemoryIntensityClass.CLASS_III,
    "lu": MemoryIntensityClass.CLASS_III,
    "ep": MemoryIntensityClass.CLASS_IV,
    "blackscholes": MemoryIntensityClass.CLASS_IV,
    "bodytrack": MemoryIntensityClass.CLASS_IV,
}

#: The four co-location applications used for training data (Section
#: IV-B3), one representative per memory intensity class.
TRAINING_CO_APP_NAMES: tuple[str, ...] = ("cg", "sp", "fluidanimate", "ep")

_BY_NAME: dict[str, ApplicationSpec] = {a.name: a for a in BENCHMARK_SUITE}


def all_applications() -> tuple[ApplicationSpec, ...]:
    """The full suite, Table III order."""
    return BENCHMARK_SUITE


def get_application(name: str) -> ApplicationSpec:
    """Look up a suite application by name (case-insensitive)."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown application {name!r}; suite has: {known}") from None


def training_co_apps() -> tuple[ApplicationSpec, ...]:
    """The four training co-location applications, Class I..IV order."""
    return tuple(get_application(n) for n in TRAINING_CO_APP_NAMES)


def intended_class(name: str) -> MemoryIntensityClass:
    """The Table III class the application was designed to fall in."""
    try:
        return _INTENDED_CLASS[name.strip().lower()]
    except KeyError:
        raise KeyError(f"no intended class recorded for {name!r}") from None


def measured_class(app: ApplicationSpec, llc_capacity_bytes: float) -> MemoryIntensityClass:
    """Class from the intensity actually measured at this LLC capacity."""
    return classify_intensity(app.solo_memory_intensity(llc_capacity_bytes))
