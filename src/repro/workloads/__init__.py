"""Synthetic benchmark workloads: the Table III application suite.

Stands in for the paper's PARSEC and NAS benchmark binaries; each
application is a behavioural spec the simulator can execute and the
performance counters can observe.
"""

from .app import ApplicationPhase, ApplicationSpec, PhasedApplication
from .classes import (
    CLASS_BOUNDARIES,
    MemoryIntensityClass,
    class_representative_intensity,
    classify_intensity,
)
from .generator import generate_application, generate_batch
from .suite import (
    BENCHMARK_SUITE,
    TRAINING_CO_APP_NAMES,
    all_applications,
    get_application,
    intended_class,
    measured_class,
    training_co_apps,
)
from .tracegen import generate_trace, scaled_profile

__all__ = [
    "ApplicationPhase",
    "ApplicationSpec",
    "BENCHMARK_SUITE",
    "CLASS_BOUNDARIES",
    "MemoryIntensityClass",
    "PhasedApplication",
    "TRAINING_CO_APP_NAMES",
    "all_applications",
    "class_representative_intensity",
    "classify_intensity",
    "generate_application",
    "generate_batch",
    "generate_trace",
    "get_application",
    "intended_class",
    "measured_class",
    "scaled_profile",
    "training_co_apps",
]
