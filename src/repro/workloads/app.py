"""Synthetic application specifications.

The paper's workloads are eleven PARSEC/NAS benchmarks.  We have no
benchmark binaries (and no hardware to run them on), so each application is
described by the handful of parameters that determine its behaviour in the
simulated memory system:

* total dynamic instruction count,
* base CPI (cycles per instruction with a private-cache-resident working
  set — i.e. excluding LLC/DRAM stalls),
* LLC accesses per instruction,
* a :class:`~repro.cache.reuse.ReuseProfile` (working sets → miss-ratio
  curve), and
* memory-level parallelism (how many misses overlap).

These are exactly the knobs that differentiate real benchmarks from the
point of view of the methodology, which only ever observes execution times
and aggregate performance counters (instructions, LLC accesses, LLC
misses).

The paper notes ([SaS13]) that applications move through memory-use phases
but demonstrates that aggregate behaviour suffices for accurate prediction.
We mirror that: :class:`ApplicationSpec` is the aggregate description, and
:class:`PhasedApplication` optionally expresses phase structure, with
:meth:`PhasedApplication.aggregate` producing the equivalent aggregate spec
the way time-averaged hardware counters would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cache.reuse import ReuseProfile

__all__ = ["ApplicationSpec", "ApplicationPhase", "PhasedApplication"]


@dataclass(frozen=True)
class ApplicationSpec:
    """Aggregate behavioural description of one application.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"canneal"``).
    suite:
        Originating suite tag: ``"PARSEC"`` or ``"NAS"`` for the paper's
        applications, anything for user-defined ones.
    instructions:
        Total dynamic instructions executed by one run.
    base_cpi:
        Cycles per instruction when the working set is private-cache
        resident (no LLC misses, no contention).
    accesses_per_instruction:
        LLC accesses issued per instruction (the paper's CA/INS feature is
        measured, not assumed; this is ground truth the counters observe).
    reuse:
        Temporal locality profile; determines the miss-ratio curve.
    mlp:
        Memory-level parallelism: average number of outstanding misses a
        stalled core overlaps, >= 1.
    """

    name: str
    suite: str
    instructions: float
    base_cpi: float
    accesses_per_instruction: float
    reuse: ReuseProfile
    mlp: float = 1.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application needs a name")
        if self.instructions <= 0.0:
            raise ValueError("instruction count must be positive")
        if self.base_cpi <= 0.0:
            raise ValueError("base CPI must be positive")
        if not 0.0 <= self.accesses_per_instruction <= 1.0:
            raise ValueError("LLC accesses per instruction must be in [0, 1]")
        if self.mlp < 1.0:
            raise ValueError("memory-level parallelism must be >= 1")

    @property
    def footprint_bytes(self) -> float:
        """Largest working-set size the application touches."""
        return self.reuse.footprint_bytes

    def llc_accesses(self) -> float:
        """Total LLC accesses in one run (the TCA counter's final value)."""
        return self.instructions * self.accesses_per_instruction

    def solo_miss_ratio(self, llc_capacity_bytes: float) -> float:
        """Miss ratio when running alone with the whole LLC available."""
        occupancy = min(self.footprint_bytes, llc_capacity_bytes)
        return float(self.reuse.miss_ratio(occupancy))

    def solo_memory_intensity(self, llc_capacity_bytes: float) -> float:
        """Baseline memory intensity: LLC misses per instruction, solo.

        This is the metric the paper uses to place applications into memory
        intensity classes (Table III).
        """
        return self.accesses_per_instruction * self.solo_miss_ratio(llc_capacity_bytes)

    def scaled(self, instruction_factor: float) -> "ApplicationSpec":
        """A copy with the instruction count scaled (longer/shorter run)."""
        if instruction_factor <= 0.0:
            raise ValueError("scale factor must be positive")
        return replace(self, instructions=self.instructions * instruction_factor)


@dataclass(frozen=True)
class ApplicationPhase:
    """One execution phase of a phased application.

    ``fraction`` is the share of the application's total instructions spent
    in this phase; the behavioural fields override the aggregate ones.
    """

    fraction: float
    base_cpi: float
    accesses_per_instruction: float
    reuse: ReuseProfile
    mlp: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("phase fraction must be in (0, 1]")
        if self.base_cpi <= 0.0:
            raise ValueError("base CPI must be positive")
        if not 0.0 <= self.accesses_per_instruction <= 1.0:
            raise ValueError("LLC accesses per instruction must be in [0, 1]")
        if self.mlp < 1.0:
            raise ValueError("memory-level parallelism must be >= 1")


@dataclass(frozen=True)
class PhasedApplication:
    """An application with explicit memory-use phases.

    The paper argues phase-level detail is unnecessary for accurate
    prediction; this class exists so that claim can be *tested* — the
    engine can simulate each phase separately, and the methodology is fed
    only the aggregate.
    """

    name: str
    suite: str
    instructions: float
    phases: tuple[ApplicationPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a phased application needs at least one phase")
        total = sum(p.fraction for p in self.phases)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"phase fractions must sum to 1, got {total}")
        if self.instructions <= 0.0:
            raise ValueError("instruction count must be positive")

    def phase_specs(self) -> tuple[ApplicationSpec, ...]:
        """Each phase as a standalone spec (for phase-by-phase simulation)."""
        return tuple(
            ApplicationSpec(
                name=f"{self.name}#phase{i}",
                suite=self.suite,
                instructions=self.instructions * p.fraction,
                base_cpi=p.base_cpi,
                accesses_per_instruction=p.accesses_per_instruction,
                reuse=p.reuse,
                mlp=p.mlp,
            )
            for i, p in enumerate(self.phases)
        )

    def aggregate(self) -> ApplicationSpec:
        """Instruction-weighted aggregate spec.

        Models what time-averaged performance counters report: CPI and
        access rate are instruction-weighted means; the reuse profile is
        the access-weighted mixture of the phase profiles; MLP is
        access-weighted (it only matters while missing).
        """
        fracs = np.array([p.fraction for p in self.phases])
        cpis = np.array([p.base_cpi for p in self.phases])
        apis = np.array([p.accesses_per_instruction for p in self.phases])
        mlps = np.array([p.mlp for p in self.phases])
        agg_api = float(fracs @ apis)
        access_weights = fracs * apis
        if access_weights.sum() > 0.0:
            access_weights = access_weights / access_weights.sum()
            agg_mlp = float(access_weights @ mlps)
        else:
            agg_mlp = float(fracs @ mlps)
            access_weights = fracs
        # Mixture of the phase reuse profiles, weighted by access share.
        parts: list[tuple[float, float, float]] = []
        compulsory = 0.0
        for w, p in zip(access_weights, self.phases):
            compulsory += w * p.reuse.compulsory
            for comp in p.reuse.components:
                parts.append(
                    (comp.working_set_bytes,
                     w * comp.weight * (1.0 - p.reuse.compulsory),
                     comp.sharpness)
                )
        # Guard against an all-zero mixture (every phase fully compulsory).
        if not parts or sum(p[1] for p in parts) <= 0.0:
            parts = [(self.phases[0].reuse.footprint_bytes, 1.0, 3.0)]
        reuse = ReuseProfile.mixture(parts, compulsory=min(compulsory, 0.999))
        return ApplicationSpec(
            name=self.name,
            suite=self.suite,
            instructions=self.instructions,
            base_cpi=float(fracs @ cpis),
            accesses_per_instruction=agg_api,
            reuse=reuse,
            mlp=max(agg_mlp, 1.0),
        )
