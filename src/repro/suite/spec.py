"""Declarative experiment-suite specifications.

A suite spec is a JSON or TOML file naming the *cases* of an experiment
sweep — which machine, which targets and co-apps, which co-location
counts and P-states, which models to fit and evaluate, under which seed.
The file is data, not code: touching one case's parameters changes that
case's content-addressed input key (:mod:`repro.suite.dag`) and nothing
else, which is what makes suite runs incremental.

File shape (JSON shown; TOML is isomorphic with ``[[cases]]`` tables)::

    {
      "suite": "mpe-sweep",
      "defaults": {"machine": "e5649", "repetitions": 5},
      "cases": [
        {"name": "base", "targets": ["cg", "sp"], "counts": [1, 2]},
        {"name": "m-{machine}",
         "matrix": {"machine": ["e5649", "e5-2697v2"]}}
      ]
    }

``defaults`` seeds every case; a case's own fields override it.  A case
with a ``matrix`` mapping expands into the cross product of the listed
values (deterministic order: parameters sorted by name, values in listed
order), with ``{param}`` placeholders substituted into the case name.

Every expanded case is validated into a frozen :class:`CaseSpec` —
unknown machines, applications, feature sets, and model kinds are
rejected at load time with the offending case named, long before any
engine runs.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field, fields
from pathlib import Path

__all__ = ["CaseSpec", "SuiteSpec", "SuiteSpecError", "load_suite", "parse_suite"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._@-]*$")

#: Case fields a spec file may set (everything except the derived name).
_CASE_FIELDS = {
    "machine",
    "sampling",
    "budget",
    "targets",
    "co_apps",
    "counts",
    "frequencies_ghz",
    "seed",
    "model_kinds",
    "feature_sets",
    "repetitions",
}


class SuiteSpecError(ValueError):
    """A suite spec file is malformed or names unknown entities."""


@dataclass(frozen=True)
class CaseSpec:
    """One validated, fully-expanded experiment case.

    Empty ``targets`` / ``co_apps`` / ``counts`` / ``frequencies_ghz``
    mean "the collection defaults": all eleven Table III targets, the
    four training co-apps, the machine's Table V counts, and the full
    P-state ladder respectively.
    """

    name: str
    machine: str = "e5649"
    sampling: str = "grid"
    budget: int = 0
    targets: tuple[str, ...] = ()
    co_apps: tuple[str, ...] = ()
    counts: tuple[int, ...] = ()
    frequencies_ghz: tuple[float, ...] = ()
    seed: int = 2015
    model_kinds: tuple[str, ...] = ("linear", "neural")
    feature_sets: tuple[str, ...] = ("F",)
    repetitions: int = 10

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SuiteSpecError(
                f"bad case name {self.name!r}: use letters, digits, and "
                f"[._@-], starting with a letter or digit"
            )
        if self.sampling not in ("grid", "random"):
            raise SuiteSpecError(
                f"case {self.name!r}: sampling must be 'grid' (the Table V "
                f"loop nest) or 'random' ([DwF12]-style); got "
                f"{self.sampling!r}"
            )
        if self.sampling == "random" and self.budget < 1:
            raise SuiteSpecError(
                f"case {self.name!r}: random sampling needs a positive "
                f"'budget' (observations to draw)"
            )
        if self.sampling == "grid" and self.budget:
            raise SuiteSpecError(
                f"case {self.name!r}: 'budget' only applies to "
                f"sampling='random'"
            )
        if any(c < 1 for c in self.counts):
            raise SuiteSpecError(
                f"case {self.name!r}: co-location counts must be >= 1"
            )
        if self.repetitions < 1:
            raise SuiteSpecError(
                f"case {self.name!r}: repetitions must be >= 1"
            )
        if not self.model_kinds:
            raise SuiteSpecError(
                f"case {self.name!r}: need at least one model kind"
            )
        if not self.feature_sets:
            raise SuiteSpecError(
                f"case {self.name!r}: need at least one feature set"
            )

    def validate_catalog(self) -> None:
        """Check machine/app/model names against the live catalogs.

        Separate from ``__post_init__`` so the structural dataclass stays
        importable without dragging in the simulator; :func:`parse_suite`
        always calls it.
        """
        from ..core.feature_sets import FeatureSet
        from ..core.methodology import ModelKind
        from ..machine.processor import get_processor
        from ..workloads.suite import get_application

        try:
            get_processor(self.machine)
        except KeyError as exc:
            raise SuiteSpecError(
                f"case {self.name!r}: {exc.args[0]}"
            ) from None
        for app_name in (*self.targets, *self.co_apps):
            try:
                get_application(app_name)
            except KeyError as exc:
                raise SuiteSpecError(
                    f"case {self.name!r}: {exc.args[0]}"
                ) from None
        for kind in self.model_kinds:
            try:
                ModelKind(kind)
            except ValueError:
                raise SuiteSpecError(
                    f"case {self.name!r}: unknown model kind {kind!r}; "
                    f"choose from {[k.value for k in ModelKind]}"
                ) from None
        for fs in self.feature_sets:
            try:
                FeatureSet(fs)
            except ValueError:
                raise SuiteSpecError(
                    f"case {self.name!r}: unknown feature set {fs!r}; "
                    f"choose from {[f.value for f in FeatureSet]}"
                ) from None

    # --------------------------------------------------------- key material
    def collect_spec(self) -> dict:
        """The parameters that determine the collected dataset, canonical."""
        spec = {
            "machine": self.machine,
            "sampling": self.sampling,
            "targets": list(self.targets),
            "co_apps": list(self.co_apps),
            "counts": list(self.counts),
            "frequencies_ghz": [float(f) for f in self.frequencies_ghz],
            "seed": self.seed,
        }
        if self.sampling == "random":
            spec["budget"] = self.budget
        return spec

    def train_spec(self, kind: str, feature_set: str) -> dict:
        """The parameters that determine one fitted model artifact."""
        return {"kind": kind, "feature_set": feature_set, "seed": self.seed}

    def evaluate_spec(self) -> dict:
        """The parameters that determine the evaluation grid artifact."""
        return {
            "model_kinds": list(self.model_kinds),
            "feature_sets": list(self.feature_sets),
            "repetitions": self.repetitions,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class SuiteSpec:
    """A named, validated set of expanded cases."""

    name: str
    cases: tuple[CaseSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SuiteSpecError(f"bad suite name {self.name!r}")
        if not self.cases:
            raise SuiteSpecError(f"suite {self.name!r} declares no cases")
        seen: set[str] = set()
        for case in self.cases:
            if case.name in seen:
                raise SuiteSpecError(
                    f"suite {self.name!r} has two cases named "
                    f"{case.name!r}; matrix expansions need distinct "
                    f"{{param}} placeholders in the name"
                )
            seen.add(case.name)

    def case(self, name: str) -> CaseSpec:
        """Look one case up by name."""
        for case in self.cases:
            if case.name == name:
                return case
        raise SuiteSpecError(
            f"suite {self.name!r} has no case {name!r}; "
            f"cases: {[c.name for c in self.cases]}"
        )


def _coerce_case(name: str, raw: dict) -> CaseSpec:
    """Build one CaseSpec from a merged (defaults | case | matrix) dict."""
    unknown = set(raw) - _CASE_FIELDS
    if unknown:
        raise SuiteSpecError(
            f"case {name!r}: unknown field(s) {sorted(unknown)}; "
            f"valid fields: {sorted(_CASE_FIELDS)}"
        )
    kwargs: dict = {"name": name}
    try:
        for f in fields(CaseSpec):
            if f.name == "name" or f.name not in raw:
                continue
            value = raw[f.name]
            if f.name in ("targets", "co_apps", "model_kinds", "feature_sets"):
                kwargs[f.name] = tuple(str(v) for v in value)
            elif f.name == "counts":
                kwargs[f.name] = tuple(int(v) for v in value)
            elif f.name == "frequencies_ghz":
                kwargs[f.name] = tuple(float(v) for v in value)
            elif f.name in ("seed", "budget", "repetitions"):
                kwargs[f.name] = int(value)
            else:
                kwargs[f.name] = str(value)
    except (TypeError, ValueError) as exc:
        raise SuiteSpecError(f"case {name!r}: {exc}") from None
    return CaseSpec(**kwargs)


def _expand_case(raw: dict, defaults: dict, index: int) -> list[CaseSpec]:
    """Expand one spec-file case entry (matrix cross product included)."""
    if not isinstance(raw, dict):
        raise SuiteSpecError(f"case #{index} must be an object; got {raw!r}")
    raw = dict(raw)
    name_template = raw.pop("name", None)
    if not isinstance(name_template, str) or not name_template:
        raise SuiteSpecError(f"case #{index} needs a non-empty 'name'")
    matrix = raw.pop("matrix", None)
    if matrix is None:
        merged = {**defaults, **raw}
        return [_coerce_case(name_template, merged)]
    if not isinstance(matrix, dict) or not matrix:
        raise SuiteSpecError(
            f"case {name_template!r}: 'matrix' must be a non-empty object "
            f"mapping parameter -> list of values"
        )
    params = sorted(matrix)
    axes = []
    for param in params:
        if param not in _CASE_FIELDS:
            raise SuiteSpecError(
                f"case {name_template!r}: matrix parameter {param!r} is "
                f"not a case field; valid fields: {sorted(_CASE_FIELDS)}"
            )
        values = matrix[param]
        if not isinstance(values, (list, tuple)) or not values:
            raise SuiteSpecError(
                f"case {name_template!r}: matrix parameter {param!r} "
                f"needs a non-empty list of values"
            )
        axes.append(list(values))
    n_combos = 1
    for axis in axes:
        n_combos *= len(axis)
    expanded = []
    for combo in itertools.product(*axes):
        assignment = dict(zip(params, combo))
        merged = {**defaults, **raw, **assignment}
        try:
            name = name_template.format(**{
                # str() the values so e.g. float frequencies name cleanly.
                k: v if isinstance(v, str) else json.dumps(v)
                for k, v in assignment.items()
            })
        except (KeyError, IndexError, ValueError) as exc:
            raise SuiteSpecError(
                f"case {name_template!r}: cannot format name with matrix "
                f"assignment {assignment}: {exc}"
            ) from None
        if name == name_template and n_combos > 1:
            # No placeholder consumed: suffix deterministically so the
            # expansion still yields distinct names.
            suffix = "-".join(
                str(v).replace(" ", "") for v in assignment.values()
            )
            name = f"{name_template}-{suffix}"
        expanded.append(_coerce_case(name, merged))
    return expanded


def parse_suite(data: dict) -> SuiteSpec:
    """Validate a parsed spec document into a :class:`SuiteSpec`."""
    if not isinstance(data, dict):
        raise SuiteSpecError(f"suite spec must be an object; got {data!r}")
    name = data.get("suite")
    if not isinstance(name, str) or not name:
        raise SuiteSpecError("suite spec needs a non-empty 'suite' name")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise SuiteSpecError("'defaults' must be an object")
    bad_defaults = set(defaults) - _CASE_FIELDS
    if bad_defaults:
        raise SuiteSpecError(
            f"unknown default field(s) {sorted(bad_defaults)}; "
            f"valid fields: {sorted(_CASE_FIELDS)}"
        )
    raw_cases = data.get("cases")
    if not isinstance(raw_cases, list) or not raw_cases:
        raise SuiteSpecError("suite spec needs a non-empty 'cases' list")
    cases: list[CaseSpec] = []
    for index, raw in enumerate(raw_cases):
        cases.extend(_expand_case(raw, defaults, index))
    suite = SuiteSpec(name=name, cases=tuple(cases))
    for case in suite.cases:
        case.validate_catalog()
    return suite


def load_suite(path: str | Path) -> SuiteSpec:
    """Load and validate a suite spec file (``.toml`` or JSON)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SuiteSpecError(f"cannot read suite spec {path}: {exc}") from None
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode())
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise SuiteSpecError(
                f"suite spec {path} is not valid TOML: {exc}"
            ) from None
    else:
        try:
            data = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SuiteSpecError(
                f"suite spec {path} is not valid JSON: {exc}"
            ) from None
    return parse_suite(data)
