"""Declarative experiment suites with incremental, content-addressed runs.

``repro.suite`` turns the harness's one-shot drivers into a build
system for experiments:

* :mod:`~repro.suite.spec` — the declarative suite file (JSON/TOML):
  named cases with parameter-matrix expansion, validated into frozen
  :class:`CaseSpec` records;
* :mod:`~repro.suite.store` — a content-addressed
  :class:`ArtifactStore` where every artifact is keyed by the sha256 of
  its *inputs*, with a DAG of provenance manifests;
* :mod:`~repro.suite.dag` — the collect → train → eval node graph per
  case and the input-key computation;
* :mod:`~repro.suite.runner` — the incremental :class:`SuiteRunner`:
  skip nodes the store resolves, execute the rest, commit atomically
  after every node (killed runs resume for free), share the simulator's
  solve cache across runs and processes;
* :mod:`~repro.suite.stats` — ``repro_suite_*`` counters.

CLI: ``repro suite run | status | explain | gc``; see ``docs/suites.md``.
"""

from .dag import SuiteNode, build_nodes, key_material, node_input_key
from .runner import NodeResult, SuiteReport, SuiteRunner
from .spec import CaseSpec, SuiteSpec, SuiteSpecError, load_suite, parse_suite
from .stats import GLOBAL_SUITE_STATS, SuiteStats, render_suite_stats
from .store import ArtifactStore, GCReport, NodeManifest, StoreError

__all__ = [
    "ArtifactStore",
    "CaseSpec",
    "GCReport",
    "GLOBAL_SUITE_STATS",
    "NodeManifest",
    "NodeResult",
    "StoreError",
    "SuiteNode",
    "SuiteReport",
    "SuiteRunner",
    "SuiteSpec",
    "SuiteSpecError",
    "SuiteStats",
    "build_nodes",
    "key_material",
    "load_suite",
    "node_input_key",
    "parse_suite",
    "render_suite_stats",
]
