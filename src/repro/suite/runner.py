"""Incremental suite runner: walk the case DAG, skip what the store has.

The runner is deliberately dumb about scheduling and smart about
provenance.  :func:`~repro.suite.dag.build_nodes` yields nodes in
topological order; for each node the runner computes its content-
addressed input key (possible only once every upstream manifest is in
hand), asks the :class:`~repro.suite.store.ArtifactStore` whether that
key already resolves, and either skips (store hit) or executes the node
through the existing :mod:`repro.harness` / :mod:`repro.core` drivers
and commits the result.

Because every completed node is committed to the store *immediately*
(blob first, manifest second, both atomic), the store doubles as the
checkpoint log: a run killed mid-node leaves every finished node
resolvable and the half-finished node absent, so re-running the same
command resumes exactly where the dead run stopped — no journal, no
lock file, no recovery pass.

Steady-state solves are shared the same way: each collect node loads the
machine's persisted :class:`~repro.sim.solve_cache.SolveCache` snapshot
from the store before simulating and saves the merged cache after, so
later cases — and later *runs*, even in different processes — never
re-solve a scenario any earlier run has seen.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .dag import SuiteNode, build_nodes, key_material, node_input_key
from .spec import CaseSpec, SuiteSpec
from .stats import SuiteStats
from .store import ArtifactStore, NodeManifest
from .. import __version__

__all__ = ["NodeResult", "SuiteReport", "SuiteRunner"]

#: Default bound on per-machine solve caches the runner creates.  Large
#: enough that realistic suites never evict, small enough that a pickled
#: snapshot stays manageable.
DEFAULT_CACHE_ENTRIES = 100_000


@dataclass(frozen=True)
class NodeResult:
    """Outcome of one node during a run."""

    node_id: str
    status: str  # "run" | "cached" | "blocked" | "failed"
    input_key: str | None = None
    content_sha256: str | None = None
    detail: str = ""


@dataclass
class SuiteReport:
    """Everything one ``SuiteRunner.run()`` did."""

    suite: str
    results: list[NodeResult] = field(default_factory=list)

    def by_status(self, status: str) -> list[NodeResult]:
        return [r for r in self.results if r.status == status]

    @property
    def executed(self) -> int:
        return len(self.by_status("run"))

    @property
    def skipped(self) -> int:
        return len(self.by_status("cached"))

    @property
    def failed(self) -> int:
        return len(self.by_status("failed")) + len(self.by_status("blocked"))

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def summary(self) -> str:
        lines = [
            f"suite {self.suite}: {len(self.results)} node(s) — "
            f"{self.executed} executed, {self.skipped} cached"
            + (f", {self.failed} failed/blocked" if self.failed else "")
        ]
        for r in self.results:
            marker = {
                "run": "+",
                "cached": "=",
                "failed": "!",
                "blocked": "!",
            }[r.status]
            suffix = f"  [{r.detail}]" if r.detail else ""
            lines.append(f"  {marker} {r.node_id}: {r.status}{suffix}")
        return "\n".join(lines)


class SuiteRunner:
    """Execute (or resolve) every node of a suite against one store."""

    def __init__(
        self,
        suite: SuiteSpec,
        store: ArtifactStore,
        *,
        workers: int = 1,
        force: bool = False,
        batch_solve: bool = True,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        stats: SuiteStats | None = None,
    ) -> None:
        self.suite = suite
        self.store = store
        self.workers = max(1, int(workers))
        self.force = force
        self.batch_solve = batch_solve
        self.cache_entries = cache_entries
        self.stats = stats if stats is not None else SuiteStats()
        self.library_version = __version__

    # ------------------------------------------------------------- planning
    def plan(self) -> list[tuple[SuiteNode, str | None, bool]]:
        """(node, input_key-or-None, store_hit) per node, topo order.

        A key is ``None`` when an upstream has never run — the node's key
        cannot be known until that upstream's artifact digest exists.
        Pure read-only: nothing is executed.
        """
        upstream: dict[str, NodeManifest] = {}
        rows: list[tuple[SuiteNode, str | None, bool]] = []
        for node in build_nodes(self.suite):
            try:
                key = node_input_key(node, upstream, self.library_version)
            except KeyError:
                rows.append((node, None, False))
                continue
            manifest = self.store.node_manifest(key)
            if manifest is not None:
                upstream[node.node_id] = manifest
            rows.append((node, key, manifest is not None))
        return rows

    # ------------------------------------------------------------- running
    def run(self) -> SuiteReport:
        """Walk the DAG; skip store hits, execute misses, commit results."""
        from ..obs import get_tracer

        self.stats.record_run()
        report = SuiteReport(suite=self.suite.name)
        upstream: dict[str, NodeManifest] = {}
        # Keys present before we ran anything: hits on them are resumes
        # (or prior-run results), not artifacts of this run's own writes.
        preexisting = set(self.store.node_keys())
        with get_tracer().span(
            "suite.run", suite=self.suite.name, nodes=0
        ) as run_span:
            nodes = build_nodes(self.suite)
            run_span.set(nodes=len(nodes))
            for node in nodes:
                result = self._run_node(node, upstream, preexisting)
                report.results.append(result)
        return report

    def _run_node(
        self,
        node: SuiteNode,
        upstream: dict[str, NodeManifest],
        preexisting: set[str],
    ) -> NodeResult:
        from ..obs import get_tracer

        try:
            key = node_input_key(node, upstream, self.library_version)
        except KeyError as exc:
            # Upstream never produced a manifest (failed or blocked).
            return NodeResult(
                node_id=node.node_id,
                status="blocked",
                detail=f"upstream {exc.args[0]} has no artifact",
            )
        manifest = None if self.force else self.store.node_manifest(key)
        if manifest is not None:
            upstream[node.node_id] = manifest
            self.stats.record_node_skipped(resumed=key in preexisting)
            return NodeResult(
                node_id=node.node_id,
                status="cached",
                input_key=key,
                content_sha256=manifest.content_sha256,
            )
        with get_tracer().span(
            "suite.node", node=node.node_id, kind=node.kind, key=key[:12]
        ):
            try:
                payload, meta = self._execute(node, upstream)
            except Exception as exc:  # noqa: BLE001 - one node, not the run
                self.stats.record_node_failed()
                return NodeResult(
                    node_id=node.node_id,
                    status="failed",
                    input_key=key,
                    detail=f"{type(exc).__name__}: {exc}",
                )
        committed = self.store.put_node(
            node_id=node.node_id,
            kind=node.kind,
            input_key=key,
            payload=payload,
            library_version=self.library_version,
            spec=node.key_spec,
            inputs=key_material(node, upstream, self.library_version)[
                "inputs"
            ],
            meta=meta,
        )
        upstream[node.node_id] = committed
        self.stats.record_node_run()
        return NodeResult(
            node_id=node.node_id,
            status="run",
            input_key=key,
            content_sha256=committed.content_sha256,
        )

    # ------------------------------------------------------------ executors
    def _execute(
        self, node: SuiteNode, upstream: dict[str, NodeManifest]
    ) -> tuple[bytes, dict]:
        if node.kind == "collect":
            return self._execute_collect(node.case)
        if node.kind == "train":
            return self._execute_train(node, upstream)
        if node.kind == "eval":
            return self._execute_eval(node, upstream)
        raise ValueError(f"unknown node kind {node.kind!r}")

    def _load_dataset(self, node: SuiteNode, upstream: dict[str, NodeManifest]):
        from ..harness.datasets import ObservationDataset

        collect_manifest = upstream[node.inputs[0]]
        payload = self.store.read_blob(collect_manifest.content_sha256)
        return ObservationDataset.from_csv_string(payload.decode())

    def _execute_collect(self, case: CaseSpec) -> tuple[bytes, dict]:
        import numpy as np

        from ..harness.collection import (
            collect_random_training_data,
            collect_training_data,
        )
        from ..harness.manifest import DatasetManifest
        from ..machine.processor import get_processor
        from ..sim.engine import SimulationEngine
        from ..sim.solve_cache import SolveCache
        from ..workloads.suite import get_application

        cache = SolveCache(max_entries=self.cache_entries)
        loaded = self.store.load_solve_cache(case.machine, cache)
        self.stats.record_solve_cache(loaded=loaded)
        engine = SimulationEngine(get_processor(case.machine), cache=cache)
        rng = np.random.default_rng(case.seed)
        targets = (
            [get_application(n) for n in case.targets]
            if case.targets
            else None
        )
        co_apps = (
            [get_application(n) for n in case.co_apps]
            if case.co_apps
            else None
        )
        if case.sampling == "random":
            dataset = collect_random_training_data(
                engine,
                case.budget,
                targets=targets,
                co_apps=co_apps,
                rng=rng,
                workers=self.workers,
                batch_solve=self.batch_solve,
            )
        else:
            dataset = collect_training_data(
                engine,
                targets=targets,
                co_apps=co_apps,
                counts=case.counts or None,
                frequencies_ghz=case.frequencies_ghz or None,
                rng=rng,
                workers=self.workers,
                batch_solve=self.batch_solve,
            )
        saved = self.store.save_solve_cache(case.machine, cache)
        self.stats.record_solve_cache(saved=saved)
        manifest = DatasetManifest.describe(dataset, seed=case.seed)
        meta = {
            "dataset_manifest": json.loads(manifest.to_json()),
            "solve_cache_entries": saved,
        }
        return dataset.to_csv_string().encode(), meta

    def _execute_train(
        self, node: SuiteNode, upstream: dict[str, NodeManifest]
    ) -> tuple[bytes, dict]:
        from ..core.feature_sets import FeatureSet
        from ..core.methodology import ModelKind, PerformancePredictor
        from ..core.persistence import artifact_to_dict

        dataset = self._load_dataset(node, upstream)
        predictor = PerformancePredictor(
            ModelKind(node.key_spec["kind"]),
            FeatureSet(node.key_spec["feature_set"]),
            seed=node.case.seed,
        )
        predictor.fit(list(dataset))
        payload = json.dumps(
            artifact_to_dict(predictor), indent=2, sort_keys=True
        ).encode()
        meta = {"observations": len(dataset)}
        return payload, meta

    def _execute_eval(
        self, node: SuiteNode, upstream: dict[str, NodeManifest]
    ) -> tuple[bytes, dict]:
        from ..core.feature_sets import FeatureSet
        from ..core.methodology import ModelKind, evaluate_models

        dataset = self._load_dataset(node, upstream)
        evaluations = evaluate_models(
            list(dataset),
            kinds=tuple(ModelKind(k) for k in node.case.model_kinds),
            feature_sets=tuple(
                FeatureSet(f) for f in node.case.feature_sets
            ),
            repetitions=node.case.repetitions,
            seed=node.case.seed,
            workers=self.workers,
        )
        rows = [
            {
                "kind": ev.kind.value,
                "feature_set": ev.feature_set.value,
                "mean_train_mpe": ev.result.mean_train_mpe,
                "mean_test_mpe": ev.result.mean_test_mpe,
                "mean_train_nrmse": ev.result.mean_train_nrmse,
                "mean_test_nrmse": ev.result.mean_test_nrmse,
            }
            for ev in evaluations
        ]
        payload = json.dumps(
            {"case": node.case.name, "rows": rows},
            indent=2,
            sort_keys=True,
        ).encode()
        meta = {"evaluations": len(rows)}
        return payload, meta

    # ------------------------------------------------------------ explain
    def explain(self, node_id: str | None = None) -> str:
        """Human-readable account of keys and store state, no execution.

        Walks the same plan as :meth:`run` would; for each node (or just
        ``node_id``) shows status, input key, and — for pending nodes —
        which ingredient is missing.
        """
        rows = self.plan()
        if node_id is not None:
            rows = [r for r in rows if r[0].node_id == node_id]
            if not rows:
                known = [n.node_id for n, _, _ in self.plan()]
                raise ValueError(
                    f"suite {self.suite.name!r} has no node {node_id!r}; "
                    f"nodes: {known}"
                )
        lines = [f"suite {self.suite.name} against store {self.store.describe()}"]
        for node, key, hit in rows:
            if key is None:
                status = "pending (upstream has never run)"
                shown = "-"
            elif hit:
                status = "cached"
                shown = key[:16]
            else:
                status = "will run"
                shown = key[:16]
            lines.append(f"  {node.node_id}: {status}  key={shown}")
            if node_id is not None and key is not None:
                manifest = self.store.node_manifest(key)
                lines.append(f"    kind: {node.kind}")
                lines.append(
                    "    spec: "
                    + json.dumps(node.key_spec, sort_keys=True)
                )
                for upstream_id in node.inputs:
                    lines.append(f"    input: {upstream_id}")
                if manifest is not None:
                    lines.append(
                        f"    artifact: {manifest.content_sha256[:16]} "
                        f"(created {manifest.created_at})"
                    )
        return "\n".join(lines)

    def keep_keys(self) -> set[str]:
        """Input keys the current spec resolves to (for ``suite gc``).

        Only keys computable from existing store state are returned; a
        suite that has never run keeps nothing, and a partially-run suite
        keeps exactly the manifests it has produced so far.
        """
        return {key for _, key, hit in self.plan() if key is not None and hit}
