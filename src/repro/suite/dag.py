"""Suite DAG construction and content-addressed input keys.

Each :class:`~repro.suite.spec.CaseSpec` becomes a small chain of nodes:

* ``collect:<case>`` — run the simulator, produce the dataset CSV;
* ``train:<case>:<kind>-<featureset>`` — one per (model kind, feature
  set) pair, fit a predictor on the dataset;
* ``eval:<case>`` — the repeated train/test-split evaluation grid.

A node's **input key** is the sha256 of canonical JSON covering
everything that can change its output: the node kind, the library
version, the node's own parameter spec (from the case), and — for
downstream nodes — the input key *and* content digest of every upstream
artifact.  Upstream digests are only known once the upstream node has
run (or resolved from the store), so keys are computed lazily during the
topological walk, not up front.

Identical keys ⇒ identical outputs, which is the entire contract the
incremental runner (:mod:`repro.suite.runner`) relies on: edit one
case's spec and only that case's chain gets new keys; everything else
resolves from the store untouched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .spec import CaseSpec, SuiteSpec
from .store import NodeManifest, canonical_json

__all__ = [
    "SuiteNode",
    "build_nodes",
    "key_material",
    "node_input_key",
]


@dataclass(frozen=True)
class SuiteNode:
    """One unit of suite work, before keys are known.

    ``inputs`` names upstream node ids in a fixed order; ``key_spec`` is
    the node's own parameter material (a plain JSON-able dict).
    """

    node_id: str
    kind: str
    case: CaseSpec
    inputs: tuple[str, ...]
    key_spec: dict


def build_nodes(suite: SuiteSpec) -> list[SuiteNode]:
    """Expand a suite into nodes, topologically ordered.

    Per-case order is collect → train* → eval, so a simple in-order walk
    always sees a node's upstreams first.
    """
    nodes: list[SuiteNode] = []
    for case in suite.cases:
        collect_id = f"collect:{case.name}"
        nodes.append(
            SuiteNode(
                node_id=collect_id,
                kind="collect",
                case=case,
                inputs=(),
                key_spec=case.collect_spec(),
            )
        )
        for kind in case.model_kinds:
            for feature_set in case.feature_sets:
                nodes.append(
                    SuiteNode(
                        node_id=f"train:{case.name}:{kind}-{feature_set}",
                        kind="train",
                        case=case,
                        inputs=(collect_id,),
                        key_spec=case.train_spec(kind, feature_set),
                    )
                )
        nodes.append(
            SuiteNode(
                node_id=f"eval:{case.name}",
                kind="eval",
                case=case,
                inputs=(collect_id,),
                key_spec=case.evaluate_spec(),
            )
        )
    return nodes


def key_material(
    node: SuiteNode,
    upstream: dict[str, NodeManifest],
    library_version: str,
) -> dict:
    """The exact dict whose canonical JSON is hashed into the input key.

    Exposed separately so ``repro suite explain`` can show users *why*
    a node's key is what it is.
    """
    inputs = {}
    for upstream_id in node.inputs:
        manifest = upstream[upstream_id]
        inputs[upstream_id] = {
            "input_key": manifest.input_key,
            "content_sha256": manifest.content_sha256,
        }
    return {
        "kind": node.kind,
        "library_version": library_version,
        "spec": node.key_spec,
        "inputs": inputs,
    }


def node_input_key(
    node: SuiteNode,
    upstream: dict[str, NodeManifest],
    library_version: str,
) -> str:
    """sha256 over the node's canonical key material.

    ``upstream`` must hold a resolved :class:`NodeManifest` for every id
    in ``node.inputs`` — raises ``KeyError`` otherwise, which the runner
    treats as "blocked".
    """
    material = key_material(node, upstream, library_version)
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()
