"""Content-addressed artifact store with a DAG of provenance manifests.

The store is the suite runner's memory.  Every produced artifact —
dataset CSV, fitted model JSON, evaluation table — is stored twice over:

* the **payload** lands under ``blobs/<sha256-of-content>`` (the same
  content-addressed discipline as the model registry's blob store and
  the :class:`~repro.registry.client.HttpBackend` cache), and
* a **node manifest** lands under ``nodes/<input-key>.json``, keyed by
  the sha256 of the node's *inputs*: its case spec, the library version,
  and the input keys + content digests of every upstream artifact.

The input key is the whole incremental-recompute mechanism: a node whose
inputs have not changed hashes to the same key, the manifest resolves,
and the node is skipped.  Touching one case's spec changes that case's
keys (and, through the recorded upstream digests, its downstream keys)
and nothing else.  Manifests link to their upstreams by key, extending
the flat :class:`~repro.harness.manifest.DatasetManifest` sidecar into a
DAG — ``repro suite explain`` walks it.

Writes are atomic (``mkstemp`` + ``os.replace``, the discipline the
registry cache established), so a killed run never leaves a torn blob or
manifest: either a node completed and will be skipped on resume, or it
left nothing behind and re-runs.

The store also holds one serialized
:class:`~repro.sim.solve_cache.SolveCache` per machine under
``solvecache/``, which is how steady-state solves outlive a single
process and a single run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["ArtifactStore", "GCReport", "NodeManifest", "StoreError"]


class StoreError(ValueError):
    """The artifact store refused an operation."""


def sha256_hex(payload: bytes) -> str:
    """Plain sha256 hex digest (the store's only hash)."""
    return hashlib.sha256(payload).hexdigest()


def canonical_json(data: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _atomic_write(path: Path, payload: bytes) -> None:
    """Publish ``path`` all-or-nothing, safe under concurrent writers."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class NodeManifest:
    """Provenance record for one completed suite node.

    ``inputs`` maps each upstream node id to its ``{"input_key": ...,
    "content_sha256": ...}`` pair — the DAG edge.  ``meta`` carries
    node-kind extras (a collect node embeds its dataset's
    :class:`~repro.harness.manifest.DatasetManifest` fields here).
    """

    node_id: str
    kind: str
    input_key: str
    content_sha256: str
    library_version: str
    spec: dict = field(default_factory=dict)
    inputs: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    created_at: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "node_id": self.node_id,
                "kind": self.kind,
                "input_key": self.input_key,
                "content_sha256": self.content_sha256,
                "library_version": self.library_version,
                "spec": self.spec,
                "inputs": self.inputs,
                "meta": self.meta,
                "created_at": self.created_at,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "NodeManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(f"node manifest is not valid JSON: {exc}") from None
        try:
            return cls(
                node_id=str(data["node_id"]),
                kind=str(data["kind"]),
                input_key=str(data["input_key"]),
                content_sha256=str(data["content_sha256"]),
                library_version=str(data.get("library_version", "")),
                spec=dict(data.get("spec", {})),
                inputs=dict(data.get("inputs", {})),
                meta=dict(data.get("meta", {})),
                created_at=str(data.get("created_at", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed node manifest: {exc}") from None


@dataclass(frozen=True)
class GCReport:
    """What :meth:`ArtifactStore.gc` removed (or would remove)."""

    kept_nodes: int
    removed_nodes: tuple[str, ...]
    removed_blobs: tuple[str, ...]
    dry_run: bool

    def summary(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"suite store gc: kept {self.kept_nodes} node(s), {verb} "
            f"{len(self.removed_nodes)} node manifest(s) and "
            f"{len(self.removed_blobs)} unreferenced blob(s)"
        )


class ArtifactStore:
    """One directory of blobs, node manifests, and solve-cache snapshots."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.blob_dir = self.root / "blobs"
        self.node_dir = self.root / "nodes"
        self.solve_cache_dir = self.root / "solvecache"

    def describe(self) -> str:
        return str(self.root)

    # -------------------------------------------------------------- blobs
    def blob_path(self, content_hash: str) -> Path:
        return self.blob_dir / content_hash

    def put_blob(self, payload: bytes) -> str:
        """Store bytes by content hash; returns the hash.  Idempotent."""
        digest = sha256_hex(payload)
        path = self.blob_path(digest)
        if not path.is_file():
            _atomic_write(path, payload)
        return digest

    def read_blob(self, content_hash: str) -> bytes:
        """Load and re-verify one blob."""
        path = self.blob_path(content_hash)
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise StoreError(
                f"store at {self.root} has no blob "
                f"{content_hash[:12]}...: {exc}"
            ) from None
        digest = sha256_hex(payload)
        if digest != content_hash:
            raise StoreError(
                f"blob {content_hash[:12]}... hashes to {digest[:12]}...; "
                f"the stored payload was modified after it was produced"
            )
        return payload

    # -------------------------------------------------------------- nodes
    def _node_path(self, input_key: str) -> Path:
        return self.node_dir / f"{input_key}.json"

    def has_node(self, input_key: str) -> bool:
        return self._node_path(input_key).is_file()

    def node_manifest(self, input_key: str) -> NodeManifest | None:
        """The manifest stored under ``input_key``, or ``None``."""
        path = self._node_path(input_key)
        try:
            text = path.read_text()
        except OSError:
            return None
        return NodeManifest.from_json(text)

    def node_keys(self) -> list[str]:
        """Every stored node input key, sorted."""
        if not self.node_dir.is_dir():
            return []
        return sorted(p.stem for p in self.node_dir.glob("*.json"))

    def put_node(
        self,
        *,
        node_id: str,
        kind: str,
        input_key: str,
        payload: bytes,
        library_version: str,
        spec: dict | None = None,
        inputs: dict | None = None,
        meta: dict | None = None,
    ) -> NodeManifest:
        """Store one completed node: blob first, then its manifest.

        Ordering is the crash-safety contract — the manifest is the
        commit record, written only after the payload it points at is
        durable, so a resume never finds a manifest with a missing blob.
        """
        content_hash = self.put_blob(payload)
        manifest = NodeManifest(
            node_id=node_id,
            kind=kind,
            input_key=input_key,
            content_sha256=content_hash,
            library_version=library_version,
            spec=spec or {},
            inputs=inputs or {},
            meta=meta or {},
            created_at=datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        )
        _atomic_write(self._node_path(input_key), manifest.to_json().encode())
        return manifest

    def read_node_payload(self, input_key: str) -> tuple[bytes, NodeManifest]:
        """One node's artifact bytes plus its manifest."""
        manifest = self.node_manifest(input_key)
        if manifest is None:
            raise StoreError(
                f"store at {self.root} has no node for key "
                f"{input_key[:12]}..."
            )
        return self.read_blob(manifest.content_sha256), manifest

    # ----------------------------------------------------------------- gc
    def gc(self, keep_keys, *, dry_run: bool = False) -> GCReport:
        """Drop node manifests outside ``keep_keys`` and orphaned blobs.

        ``keep_keys`` is the set of input keys reachable from the current
        suite spec(s); everything else is debris from edited specs and
        old library versions.  Blobs still referenced by a surviving
        manifest are kept (two nodes may share identical content).
        """
        keep = set(keep_keys)
        removed_nodes = []
        kept_manifests = []
        for key in self.node_keys():
            if key in keep:
                manifest = self.node_manifest(key)
                if manifest is not None:
                    kept_manifests.append(manifest)
                continue
            removed_nodes.append(key)
        referenced = {m.content_sha256 for m in kept_manifests}
        removed_blobs = []
        if self.blob_dir.is_dir():
            for path in sorted(self.blob_dir.iterdir()):
                if path.name in referenced or path.suffix == ".tmp":
                    continue
                # A blob is also kept while any *non-collected* manifest
                # references it; only survivors count, so everything else
                # referenced solely by removed manifests goes too.
                removed_blobs.append(path.name)
        if not dry_run:
            for key in removed_nodes:
                self._node_path(key).unlink(missing_ok=True)
            for name in removed_blobs:
                (self.blob_dir / name).unlink(missing_ok=True)
        return GCReport(
            kept_nodes=len(kept_manifests),
            removed_nodes=tuple(removed_nodes),
            removed_blobs=tuple(removed_blobs),
            dry_run=dry_run,
        )

    # ------------------------------------------------------- solve caches
    def solve_cache_path(self, machine_key: str) -> Path:
        safe = machine_key.replace("/", "_")
        return self.solve_cache_dir / f"{safe}.pkl"

    def load_solve_cache(self, machine_key: str, cache) -> int:
        """Merge a persisted solve cache for ``machine_key`` into ``cache``.

        Returns how many entries were loaded (0 when none persisted).  A
        corrupt snapshot is discarded rather than fatal — it is only a
        cache.
        """
        path = self.solve_cache_path(machine_key)
        if not path.is_file():
            return 0
        try:
            return cache.load(path)
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            return 0

    def save_solve_cache(self, machine_key: str, cache) -> int:
        """Persist ``cache`` for ``machine_key``; returns entries written."""
        path = self.solve_cache_path(machine_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = cache.dump_bytes()
        _atomic_write(path, payload)
        return len(cache)
