"""Suite-run counters and their Prometheus exposition.

Mirrors the pattern set by :class:`repro.sim.engine.EngineStats` /
``GLOBAL_ENGINE_STATS``: every :class:`~repro.suite.runner.SuiteRunner`
carries its own :class:`SuiteStats`, and each recording call also bumps
the process-wide :data:`GLOBAL_SUITE_STATS` aggregate, which is what the
``/metrics`` endpoint and ``--stats`` flag read.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GLOBAL_SUITE_STATS",
    "SuiteStats",
    "render_suite_stats",
    "suite_stats_exposition",
]


@dataclass
class SuiteStats:
    """Counters for suite runs.

    ``nodes_skipped`` counts store hits during a run (the incremental
    win); ``nodes_resumed`` is the subset of skips attributable to a
    *prior* run of the same suite — i.e. manifests that already existed
    when the run started.
    """

    runs: int = 0
    nodes_run: int = 0
    nodes_skipped: int = 0
    nodes_failed: int = 0
    nodes_resumed: int = 0
    store_hits: int = 0
    store_misses: int = 0
    solve_cache_entries_loaded: int = 0
    solve_cache_entries_saved: int = 0

    def record_run(self) -> None:
        self.runs += 1
        if self is not GLOBAL_SUITE_STATS:
            GLOBAL_SUITE_STATS.runs += 1

    def record_node_run(self) -> None:
        self.nodes_run += 1
        self.store_misses += 1
        if self is not GLOBAL_SUITE_STATS:
            GLOBAL_SUITE_STATS.nodes_run += 1
            GLOBAL_SUITE_STATS.store_misses += 1

    def record_node_skipped(self, *, resumed: bool) -> None:
        self.nodes_skipped += 1
        self.store_hits += 1
        self.nodes_resumed += resumed
        if self is not GLOBAL_SUITE_STATS:
            GLOBAL_SUITE_STATS.nodes_skipped += 1
            GLOBAL_SUITE_STATS.store_hits += 1
            GLOBAL_SUITE_STATS.nodes_resumed += resumed

    def record_node_failed(self) -> None:
        self.nodes_failed += 1
        if self is not GLOBAL_SUITE_STATS:
            GLOBAL_SUITE_STATS.nodes_failed += 1

    def record_solve_cache(self, *, loaded: int = 0, saved: int = 0) -> None:
        self.solve_cache_entries_loaded += loaded
        self.solve_cache_entries_saved += saved
        if self is not GLOBAL_SUITE_STATS:
            GLOBAL_SUITE_STATS.solve_cache_entries_loaded += loaded
            GLOBAL_SUITE_STATS.solve_cache_entries_saved += saved

    def reset(self) -> None:
        self.runs = 0
        self.nodes_run = 0
        self.nodes_skipped = 0
        self.nodes_failed = 0
        self.nodes_resumed = 0
        self.store_hits = 0
        self.store_misses = 0
        self.solve_cache_entries_loaded = 0
        self.solve_cache_entries_saved = 0

    def summary(self) -> str:
        lines = [
            f"suite runs: {self.runs}",
            f"nodes executed: {self.nodes_run}",
            f"nodes skipped (store hits): {self.nodes_skipped}",
        ]
        if self.nodes_resumed:
            lines.append(f"nodes resumed from a prior run: {self.nodes_resumed}")
        if self.nodes_failed:
            lines.append(f"nodes failed: {self.nodes_failed}")
        if self.solve_cache_entries_loaded or self.solve_cache_entries_saved:
            lines.append(
                f"solve cache: {self.solve_cache_entries_loaded} entries "
                f"loaded, {self.solve_cache_entries_saved} saved"
            )
        return "\n".join(lines)


#: Process-wide aggregate across every runner in this process.
GLOBAL_SUITE_STATS = SuiteStats()


def render_suite_stats(stats: SuiteStats) -> str:
    """Prometheus text exposition for one :class:`SuiteStats`."""
    lines = [
        "# HELP repro_suite_runs_total Suite runs started.",
        "# TYPE repro_suite_runs_total counter",
        f"repro_suite_runs_total {stats.runs}",
        "# HELP repro_suite_nodes_run_total Suite nodes executed.",
        "# TYPE repro_suite_nodes_run_total counter",
        f"repro_suite_nodes_run_total {stats.nodes_run}",
        "# HELP repro_suite_nodes_skipped_total Suite nodes resolved from the store.",
        "# TYPE repro_suite_nodes_skipped_total counter",
        f"repro_suite_nodes_skipped_total {stats.nodes_skipped}",
        "# HELP repro_suite_nodes_failed_total Suite nodes that raised.",
        "# TYPE repro_suite_nodes_failed_total counter",
        f"repro_suite_nodes_failed_total {stats.nodes_failed}",
        "# HELP repro_suite_nodes_resumed_total Store hits left by a prior run.",
        "# TYPE repro_suite_nodes_resumed_total counter",
        f"repro_suite_nodes_resumed_total {stats.nodes_resumed}",
        "# HELP repro_suite_store_hits_total Artifact-store node manifest hits.",
        "# TYPE repro_suite_store_hits_total counter",
        f"repro_suite_store_hits_total {stats.store_hits}",
        "# HELP repro_suite_store_misses_total Artifact-store node manifest misses.",
        "# TYPE repro_suite_store_misses_total counter",
        f"repro_suite_store_misses_total {stats.store_misses}",
        "# HELP repro_suite_solve_cache_loaded_total Solve-cache entries loaded from the store.",
        "# TYPE repro_suite_solve_cache_loaded_total counter",
        f"repro_suite_solve_cache_loaded_total {stats.solve_cache_entries_loaded}",
        "# HELP repro_suite_solve_cache_saved_total Solve-cache entries persisted to the store.",
        "# TYPE repro_suite_solve_cache_saved_total counter",
        f"repro_suite_solve_cache_saved_total {stats.solve_cache_entries_saved}",
    ]
    return "\n".join(lines) + "\n"


def suite_stats_exposition() -> str:
    """Exposition for the process-wide aggregate (metrics-source hook)."""
    return render_suite_stats(GLOBAL_SUITE_STATS)
