"""The model registry subsystem: local store, HTTP service, cached client.

Layout:

* :mod:`repro.registry.local` — the versioned on-disk store
  (:class:`ModelRegistry` / :data:`LocalBackend`) with integrity
  hashing, tombstones, and GC;
* :mod:`repro.registry.backend` — the :class:`RegistryBackend` protocol
  every backend implements;
* :mod:`repro.registry.server` — :class:`RegistryServer`, the HTTP
  artifact service (manifests, content-addressed blobs, authenticated
  push);
* :mod:`repro.registry.client` — :class:`HttpBackend`, the remote
  backend with a local content-addressed cache and outage fallback.

``repro.serve.registry`` remains as a compatibility shim re-exporting
the local store's names.
"""

from .backend import RegistryBackend
from .client import HttpBackend
from .local import (
    GCReport,
    LocalBackend,
    ModelManifest,
    ModelRegistry,
    RegistryError,
    TombstoneError,
    decode_payload,
    parse_ref,
    tombstone_message,
    verify_payload,
)
from .server import RegistryServer, RegistryServerThread

__all__ = [
    "GCReport",
    "HttpBackend",
    "LocalBackend",
    "ModelManifest",
    "ModelRegistry",
    "RegistryBackend",
    "RegistryError",
    "RegistryServer",
    "RegistryServerThread",
    "TombstoneError",
    "decode_payload",
    "parse_ref",
    "tombstone_message",
    "verify_payload",
]
