"""The registry backend protocol.

``repro`` started with one registry: a directory of ``name@version``
artifact dirs (:class:`~repro.registry.local.ModelRegistry`).  Growing a
training box into a fleet means the *consumers* of that registry — the
prediction server's resident-model cache, the CLI, benches — must not
care whether artifacts come from a local directory or a remote artifact
service.  :class:`RegistryBackend` is the seam: the read/resolve/push
surface both :data:`~repro.registry.local.LocalBackend` and
:class:`~repro.registry.client.HttpBackend` implement.

The protocol is structural (:func:`typing.runtime_checkable`), so any
object with these methods serves; new backends (an object store, a
database) slot in without touching the serving layer.

Semantics every backend must preserve:

* references are ``name`` (floats to the newest *live* version) or
  ``name@version`` (pinned);
* ``get`` verifies the payload's SHA-256 against the manifest and raises
  :class:`~repro.registry.local.RegistryError` on any mismatch or
  corruption, with the shared descriptive messages from
  :func:`~repro.registry.local.decode_payload`;
* tombstoned versions are refused by ``resolve``/``get`` with a
  :class:`~repro.registry.local.TombstoneError` and skipped by bare-name
  resolution — blocking never deletes bytes.

One surface is *optional*: ``changed_models(cursor) -> (names, cursor)``,
the incremental change feed both stock backends implement (the HTTP
backend additionally returns ``None`` when its server predates the
feature).  Consumers discover it with ``getattr``/``hasattr`` and fall
back to ``names()``/``list()`` full scans — it is deliberately absent
from the protocol so minimal third-party backends stay conformant.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .local import Artifact, ModelManifest

__all__ = ["RegistryBackend"]


@runtime_checkable
class RegistryBackend(Protocol):
    """What the serving layer needs from any model registry."""

    def describe(self) -> str:
        """Human-readable backend location (a path or URL), for logs."""
        ...

    def names(self) -> list[str]:
        """Distinct model names with at least one version, sorted."""
        ...

    def list(self) -> list[ModelManifest]:
        """Every stored manifest (tombstoned included), sorted."""
        ...

    def resolve(self, ref: str) -> ModelManifest:
        """``name``/``name@version`` -> manifest; raises ``RegistryError``."""
        ...

    def latest(self, name: str) -> ModelManifest:
        """Manifest of the newest live version of ``name``."""
        ...

    def latest_version(self, name: str) -> int:
        """Newest live version number (may be cached by the backend)."""
        ...

    def get(self, ref: str) -> tuple[Artifact, ModelManifest]:
        """Load and hash-verify an artifact by reference."""
        ...

    def push(
        self, name: str, artifact: Artifact, *, created_at: str | None = None
    ) -> ModelManifest:
        """Store ``artifact`` as the next version of ``name``."""
        ...

    def tombstone_reason(self, name: str, version: int) -> str | None:
        """Tombstone reason for one version, or ``None`` if live."""
        ...
