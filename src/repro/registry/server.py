"""HTTP artifact service: a registry served over the wire.

Wraps a local :class:`~repro.registry.local.ModelRegistry` (or any
:class:`~repro.registry.backend.RegistryBackend`) in the shared asyncio
HTTP plumbing (:mod:`repro.serve.http`), so training boxes push artifacts
to one place and every prediction server pulls from it.  Endpoints:

* ``GET /v1/models`` — every stored manifest (tombstone status included);
  with ``?since=<cursor>`` only the manifests of names changed since the
  cursor come back, plus ``changed`` (names, including removed ones) and
  a fresh ``cursor`` — hot-reload pollers sync in O(changes).  An
  unknown or stale cursor (including the conventional initial ``0``)
  degrades to a full sync;
* ``GET /v1/models/{name}`` — one name's versions with tombstone reasons;
* ``GET /v1/models/{ref}/manifest`` — resolve ``name`` or
  ``name@version`` to its manifest (``410 Gone`` for tombstoned pins);
* ``GET /v1/models/{name}@{version}/tombstone`` — tombstone status of one
  version (``{"reason": null}`` when live);
* ``GET /v1/blobs/{sha256}`` — content-addressed artifact bytes, served
  exactly as stored (clients re-verify the hash before decoding, so a
  corrupted payload fails with the same error as a local load);
* ``POST /v1/push`` — store an artifact as the next version of a name;
  requires a bearer token (pushes are disabled when the server was
  started without one);
* ``GET /healthz``, ``GET /metrics`` — the usual liveness and merged
  Prometheus exposition (``repro_registry_*`` namespace plus the
  process-wide engine/fit sources and store inventory gauges).

Error mapping mirrors the backend exceptions so
:class:`~repro.registry.client.HttpBackend` can reconstruct them:
:class:`~repro.registry.local.TombstoneError` becomes ``410 Gone`` (the
reason travels in the body), every other
:class:`~repro.registry.local.RegistryError` becomes ``404`` (``400`` on
push).  Responses carry the backend's exact message text, so a client
sees the same descriptive errors whether it reads the store directly or
over HTTP.
"""

from __future__ import annotations

import hmac
import json

from ..core.persistence import PersistenceError, artifact_from_dict
from ..obs.adapters import install_default_sources, render_registry_backend
from ..obs.registry import MetricsRegistry
from ..serve.http import HTTPError, HttpServerBase, Request, ServerThreadBase
from ..serve.metrics import ServingMetrics
from .local import ModelRegistry, RegistryError, TombstoneError, parse_ref

__all__ = ["RegistryServer", "RegistryServerThread"]


class RegistryServer(HttpServerBase):
    """Serve one registry backend over HTTP.

    Parameters
    ----------
    backend:
        The store to expose — normally a local
        :class:`~repro.registry.local.ModelRegistry`; pass an
        :class:`~repro.registry.client.HttpBackend` to run a **read
        replica** that pulls manifests and blobs through from an upstream
        registry on cache miss (``repro registry serve --mirror URL``),
        so suite fleets fan reads across mirrors instead of hammering
        one registry.
    host, port:
        Bind address; port ``0`` picks an ephemeral port.
    token:
        Bearer token required by ``POST /v1/push``.  ``None`` (default)
        disables pushing entirely: a read-only mirror.
    metrics:
        Optional shared :class:`~repro.serve.metrics.ServingMetrics`;
        constructed with the ``repro_registry`` prefix by default.
    """

    known_endpoints = (
        "/v1/models",
        "/v1/models/*",
        "/v1/blobs/*",
        "/v1/push",
        "/healthz",
        "/metrics",
    )
    request_span_name = "registry.request"

    def __init__(
        self,
        backend: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        super().__init__(host=host, port=port)
        self.backend = backend
        self.token = token
        self.metrics = (
            metrics
            if metrics is not None
            else ServingMetrics(prefix="repro_registry")
        )
        self.obs_registry = install_default_sources(
            MetricsRegistry(), serving=self.metrics.render_prometheus
        )
        self.obs_registry.register_source(
            "registry_backend", lambda: render_registry_backend(self.backend)
        )

    # ------------------------------------------------------------- hooks
    def _record_request(self, endpoint: str, status: int, seconds: float) -> None:
        self.metrics.record_request(endpoint, status, seconds)

    def _record_error(self, reason: str) -> None:
        self.metrics.record_error(reason)

    def _endpoint_label(self, path: str) -> str:
        if path.startswith("/v1/models/"):
            return "/v1/models/*"
        if path.startswith("/v1/blobs/"):
            return "/v1/blobs/*"
        return super()._endpoint_label(path)

    # ------------------------------------------------------------ routes
    async def _route(self, request: Request):
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            body = {"status": "ok", "models": len(self.backend.names())}
            return 200, "application/json", json.dumps(body).encode()
        if path == "/metrics":
            self._require(method, "GET")
            text = self.obs_registry.render()
            return 200, "text/plain; version=0.0.4", text.encode()
        if path == "/v1/models":
            self._require(method, "GET")
            return self._list_models(request)
        if path.startswith("/v1/models/"):
            self._require(method, "GET")
            return self._model_route(path[len("/v1/models/"):])
        if path.startswith("/v1/blobs/"):
            self._require(method, "GET")
            return self._blob(path[len("/v1/blobs/"):])
        if path == "/v1/push":
            self._require(method, "POST")
            return self._push(request)
        raise HTTPError(404, "not_found", f"no route for {path}")

    # ------------------------------------------------------------- reads
    def _manifest_dict(self, manifest) -> dict:
        """Manifest payload with its tombstone status attached."""
        data = manifest.to_dict()
        data["tombstone"] = self.backend.tombstone_reason(
            manifest.name, manifest.version
        )
        return data

    def _list_models(self, request: Request):
        since = request.query.get("since")
        if since is None or not hasattr(self.backend, "changed_models"):
            # Full listing: the original contract, also the answer old
            # clients (no ``since``) and cursor-less backends get.  No
            # ``cursor`` key in the body is the downgrade signal clients
            # key their fallback on.
            body = {
                "models": [self._manifest_dict(m) for m in self.backend.list()]
            }
            return 200, "application/json", json.dumps(body).encode()
        feed = self.backend.changed_models(since[0] or None)
        if feed is None:
            # Mirror whose *upstream* predates change cursors: downgrade
            # to the full listing, exactly as a cursor-less backend would.
            body = {
                "models": [self._manifest_dict(m) for m in self.backend.list()]
            }
            return 200, "application/json", json.dumps(body).encode()
        changed, cursor = feed
        names = set(changed)
        manifests = (
            [
                self._manifest_dict(m)
                for m in self.backend.list()
                if m.name in names
            ]
            if names
            else []
        )
        body = {"models": manifests, "changed": changed, "cursor": cursor}
        return 200, "application/json", json.dumps(body).encode()

    def _model_route(self, rest: str):
        """Dispatch ``/v1/models/{...}`` sub-paths."""
        if rest.endswith("/manifest"):
            return self._manifest(rest[: -len("/manifest")])
        if rest.endswith("/tombstone"):
            return self._tombstone_status(rest[: -len("/tombstone")])
        if "/" in rest:
            raise HTTPError(404, "not_found", f"no route for /v1/models/{rest}")
        return self._model_info(rest)

    def _manifest(self, ref: str):
        """Resolve a reference exactly as the local backend would."""
        try:
            manifest = self.backend.resolve(ref)
        except TombstoneError as exc:
            raise HTTPError(
                410, "tombstoned", str(exc),
            ) from None
        except RegistryError as exc:
            raise HTTPError(404, "unknown_model", str(exc)) from None
        return (
            200,
            "application/json",
            json.dumps(self._manifest_dict(manifest)).encode(),
        )

    def _model_info(self, name: str):
        try:
            parsed, version = parse_ref(name)
        except RegistryError as exc:
            raise HTTPError(404, "unknown_model", str(exc)) from None
        if version is not None:
            raise HTTPError(
                404, "not_found",
                f"use /v1/models/{parsed}@{version}/manifest for one version",
            )
        manifests = [m for m in self.backend.list() if m.name == parsed]
        if not manifests:
            try:
                self.backend.resolve(parsed)  # raises with the canonical text
            except RegistryError as exc:
                raise HTTPError(404, "unknown_model", str(exc)) from None
        body = {
            "name": parsed,
            "versions": [self._manifest_dict(m) for m in manifests],
        }
        return 200, "application/json", json.dumps(body).encode()

    def _tombstone_status(self, ref: str):
        try:
            name, version = parse_ref(ref)
        except RegistryError as exc:
            raise HTTPError(404, "unknown_model", str(exc)) from None
        if version is None:
            raise HTTPError(
                404, "not_found",
                "tombstone status takes an explicit name@version",
            )
        if version not in [m.version for m in self.backend.list()
                           if m.name == name]:
            raise HTTPError(
                404, "unknown_model",
                f"unknown version {version} of {name!r}",
            )
        body = {
            "ref": f"{name}@{version}",
            "reason": self.backend.tombstone_reason(name, version),
        }
        return 200, "application/json", json.dumps(body).encode()

    def _blob(self, content_hash: str):
        # Bytes travel exactly as stored — no server-side re-hash.  Every
        # client verifies by content hash before decoding, so a corrupted
        # payload is refused client-side with the same wording as a local
        # load (error parity); a server-side refusal would hide the bytes
        # behind a different message.
        try:
            path = self.backend.blob_path(content_hash)
            payload = path.read_bytes()
        except RegistryError as exc:
            raise HTTPError(404, "unknown_blob", str(exc)) from None
        except OSError as exc:
            raise HTTPError(
                404, "unknown_blob",
                f"cannot read blob {content_hash[:12]}...: {exc}",
            ) from None
        return 200, "application/json", payload

    # ------------------------------------------------------------- push
    def _push(self, request: Request):
        self._authorize(request)
        try:
            body = json.loads(request.body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HTTPError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise HTTPError(400, "bad_request", "body must be a JSON object")
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise HTTPError(400, "bad_request", "body needs a model 'name'")
        data = body.get("artifact")
        if not isinstance(data, dict):
            raise HTTPError(
                400, "bad_request",
                "body needs an 'artifact' object (the persistence-format "
                "model payload)",
            )
        try:
            artifact = artifact_from_dict(data)
        except PersistenceError as exc:
            raise HTTPError(
                400, "bad_request", f"artifact payload rejected: {exc}"
            ) from None
        created_at = body.get("created_at")
        if created_at is not None and not isinstance(created_at, str):
            raise HTTPError(400, "bad_request", "'created_at' must be a string")
        try:
            manifest = self.backend.push(name, artifact, created_at=created_at)
        except RegistryError as exc:
            raise HTTPError(400, "bad_request", str(exc)) from None
        return (
            200,
            "application/json",
            json.dumps(self._manifest_dict(manifest)).encode(),
        )

    def _authorize(self, request: Request) -> None:
        if self.token is None:
            raise HTTPError(
                403, "push_disabled",
                "push is disabled: this registry server was started "
                "without a push token (read-only mirror)",
            )
        supplied = request.headers.get("authorization", "")
        scheme, _sep, value = supplied.partition(" ")
        if scheme.lower() != "bearer" or not hmac.compare_digest(
            value.strip(), self.token
        ):
            raise HTTPError(
                401, "unauthorized",
                "push requires 'Authorization: Bearer <token>' with the "
                "registry's push token",
            )


class RegistryServerThread(ServerThreadBase):
    """Run a :class:`RegistryServer` on a background event loop.

    Mirrors :class:`~repro.serve.server.ServerThread` for synchronous
    callers (tests, benches, the CLI)::

        with RegistryServerThread(backend, token="s3cret") as handle:
            remote = HttpBackend(f"http://127.0.0.1:{handle.port}", ...)
    """

    thread_name = "repro-registry"

    def __init__(self, backend: ModelRegistry, **server_kwargs) -> None:
        super().__init__(RegistryServer(backend, **server_kwargs))
