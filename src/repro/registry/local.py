"""Versioned on-disk model registry — the local registry backend.

A resource manager retrains as new co-location observations arrive; the
serving layer must be able to roll forward (and back) between model
versions without ambiguity about *which* artifact produced a prediction.
The registry stores each pushed artifact under ``<root>/<name>/<version>/``
as two files:

* ``model.json`` — the artifact, in the
  :mod:`~repro.core.persistence` JSON format (version-2: single
  predictors and bootstrap ensembles);
* ``manifest.json`` — provenance: the SHA-256 of the model bytes,
  artifact/model kind, feature set, processor, training-set size, and
  creation time.

Versions are integers assigned by ``push`` (1, 2, ...); ``name@version``
references are resolved by ``get``; a bare ``name`` means the latest
version.  Every load re-hashes the payload and rejects tampered or
corrupted artifacts with a descriptive :class:`RegistryError` — the
registry may live on shared storage, and a scheduler acting on a silently
corrupted model is worse than one that fails loudly.

Two retention mechanisms complete the lifecycle:

* **Tombstones** (:meth:`ModelRegistry.tombstone`) mark a version as bad
  without deleting its bytes: ``resolve``/``get`` refuse it with a
  :class:`TombstoneError`, and a bare name floats to the newest version
  that is *not* tombstoned.  A rollback is ``untombstone``.
* **GC** (:meth:`ModelRegistry.gc`) prunes old versions, keeping the
  newest ``keep`` live versions per name.  Versions newer than the oldest
  kept one are never removed (so tombstoned-but-recent versions keep
  their bytes, and version numbers are never reused).

For pollers (hot-reloading prediction servers), the registry exposes a
**change cursor** (:meth:`ModelRegistry.change_cursor` /
:meth:`ModelRegistry.changed_models`): an opaque token capturing every
name's cheap directory signature, so one call reports exactly which
names changed since the last poll — O(changes) wire traffic instead of a
full listing per tick.

:class:`ModelRegistry` is also the reference implementation of the
:class:`~repro.registry.backend.RegistryBackend` protocol (aliased as
:data:`LocalBackend`); :class:`~repro.registry.client.HttpBackend` speaks
the same protocol against a remote :class:`~repro.registry.server.RegistryServer`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from ..core.ensemble import EnsemblePredictor
from ..core.methodology import PerformancePredictor
from ..core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    artifact_from_dict,
    artifact_to_dict,
)

__all__ = [
    "GCReport",
    "LocalBackend",
    "ModelManifest",
    "ModelRegistry",
    "RegistryError",
    "TombstoneError",
    "parse_ref",
    "decode_payload",
    "decode_change_cursor",
    "encode_change_cursor",
    "tombstone_message",
    "verify_payload",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_TOMBSTONE_FILE = "tombstone.json"

Artifact = PerformancePredictor | EnsemblePredictor


class RegistryError(ValueError):
    """Raised for unknown references, tampered or corrupted artifacts."""


class TombstoneError(RegistryError):
    """Raised when a reference resolves to a tombstoned version.

    The bytes are still on disk (tombstones block, they don't delete);
    ``reason`` carries the operator-supplied explanation.
    """

    def __init__(self, message: str, *, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


def parse_ref(ref: str) -> tuple[str, int | None]:
    """Split ``name`` or ``name@version`` into its parts."""
    name, sep, version = ref.partition("@")
    if not _NAME_RE.match(name):
        raise RegistryError(
            f"invalid model name {name!r}; use letters, digits, '.', "
            f"'_', '-' (must start alphanumeric)"
        )
    if not sep:
        return name, None
    try:
        number = int(version)
    except ValueError:
        raise RegistryError(
            f"invalid version {version!r} in reference {ref!r}; "
            f"expected an integer"
        ) from None
    if number < 1:
        raise RegistryError(f"versions start at 1; got {number}")
    return name, number


def tombstone_message(ref: str, reason: str) -> str:
    """The canonical refusal message for a tombstoned reference.

    Shared by the local backend, the registry server, and the HTTP
    backend so a tombstoned version is refused with identical wording
    whichever path the reference takes.
    """
    detail = f": {reason}" if reason else ""
    return (
        f"{ref} is tombstoned{detail} (bytes retained; resolve another "
        f"version or untombstone it)"
    )


def encode_change_cursor(signatures: dict[str, str]) -> str:
    """Encode a ``name -> signature`` map as an opaque change cursor.

    URL-safe base64 (padding stripped) over canonical JSON, so the
    cursor travels unescaped in a ``?since=`` query parameter and two
    registries with identical contents produce identical cursors.
    """
    raw = json.dumps(signatures, sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(raw.encode()).decode().rstrip("=")


def decode_change_cursor(cursor: str) -> dict[str, str] | None:
    """Decode a change cursor back to its signature map.

    Returns ``None`` for anything that does not decode to a string
    map — an unknown, truncated, or foreign cursor means the caller's
    view is unusable and every model must be treated as changed.
    """
    padded = cursor + "=" * (-len(cursor) % 4)
    try:
        data = json.loads(base64.urlsafe_b64decode(padded.encode()))
    except (ValueError, TypeError):
        return None
    if not isinstance(data, dict):
        return None
    return {str(name): str(sig) for name, sig in data.items()}


@dataclass(frozen=True)
class ModelManifest:
    """Provenance record stored next to each registered artifact."""

    name: str
    version: int
    artifact: str            # "predictor" | "ensemble"
    kind: str                # "linear" | "neural"
    feature_set: str         # "A".."F"
    processor_name: str | None
    content_hash: str        # sha256 hex of model.json bytes
    format_version: int
    train_size: int | None
    created_at: str          # ISO-8601 UTC

    @property
    def ref(self) -> str:
        """The canonical ``name@version`` reference."""
        return f"{self.name}@{self.version}"

    def to_dict(self) -> dict:
        """JSON-ready manifest payload."""
        return {
            "name": self.name,
            "version": self.version,
            "artifact": self.artifact,
            "kind": self.kind,
            "feature_set": self.feature_set,
            "processor_name": self.processor_name,
            "content_hash": self.content_hash,
            "format_version": self.format_version,
            "train_size": self.train_size,
            "created_at": self.created_at,
        }

    @staticmethod
    def from_dict(data: dict) -> "ModelManifest":
        """Rebuild a manifest, rejecting malformed payloads."""
        try:
            return ModelManifest(
                name=str(data["name"]),
                version=int(data["version"]),
                artifact=str(data["artifact"]),
                kind=str(data["kind"]),
                feature_set=str(data["feature_set"]),
                processor_name=(
                    str(data["processor_name"])
                    if data.get("processor_name") is not None
                    else None
                ),
                content_hash=str(data["content_hash"]),
                format_version=int(data["format_version"]),
                train_size=(
                    int(data["train_size"])
                    if data.get("train_size") is not None
                    else None
                ),
                created_at=str(data["created_at"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed manifest: {exc}") from None


@dataclass(frozen=True)
class GCReport:
    """What one :meth:`ModelRegistry.gc` pass removed (or would remove)."""

    keep: int
    removed: tuple[str, ...] = ()    # refs whose bytes were deleted
    kept: tuple[str, ...] = ()       # refs retained
    bytes_freed: int = 0
    dry_run: bool = False

    def summary(self) -> str:
        """One-line human-readable report."""
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"gc(keep={self.keep}): {verb} {len(self.removed)} version(s), "
            f"{self.bytes_freed} bytes; {len(self.kept)} kept"
        )


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def verify_payload(payload: bytes, manifest: ModelManifest) -> None:
    """Check payload bytes against the manifest's content hash.

    Shared by the local and HTTP backends so a tampered artifact is
    refused with identical wording wherever it is loaded from.
    """
    digest = _sha256(payload)
    if digest != manifest.content_hash:
        raise RegistryError(
            f"content hash mismatch for {manifest.ref}: manifest "
            f"records {manifest.content_hash[:12]}... but model.json "
            f"hashes to {digest[:12]}...; the artifact was modified "
            f"after push"
        )


def decode_payload(payload: bytes, manifest: ModelManifest) -> Artifact:
    """Verified payload bytes -> artifact, with descriptive failures.

    Performs the hash check (:func:`verify_payload`) and then decodes,
    so both backends reject tampering and corruption identically.
    """
    verify_payload(payload, manifest)
    try:
        return artifact_from_dict(json.loads(payload.decode()))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RegistryError(
            f"corrupted payload for {manifest.ref}: not valid JSON "
            f"({exc})"
        ) from None
    except PersistenceError as exc:
        raise RegistryError(
            f"corrupted payload for {manifest.ref}: {exc}"
        ) from None


class ModelRegistry:
    """Push, list, and integrity-checked retrieval of trained artifacts.

    The registry directory is created lazily on the first ``push``; a
    missing or empty directory reads as an empty registry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        # Bare-name -> (signature, version) latest cache; see
        # latest_version() for what goes into the signature.
        self._latest_cache: dict[str, tuple[tuple[int, int, int], int]] = {}
        # content hash -> (name, version) for blob lookups.
        self._blob_index: dict[str, tuple[str, int]] = {}

    def describe(self) -> str:
        """Human-readable backend location (for logs and errors)."""
        return str(self.root)

    # ------------------------------------------------------------ refs
    @staticmethod
    def parse_ref(ref: str) -> tuple[str, int | None]:
        """Split ``name`` or ``name@version`` into its parts."""
        return parse_ref(ref)

    def _dir(self, name: str, version: int) -> Path:
        return self.root / name / str(version)

    def _versions(self, name: str) -> list[int]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return sorted(
            int(p.name)
            for p in model_dir.iterdir()
            if p.is_dir() and p.name.isdigit()
        )

    def _live_versions(self, name: str) -> list[int]:
        """Versions of ``name`` that are not tombstoned, sorted."""
        return [
            v
            for v in self._versions(name)
            if self.tombstone_reason(name, v) is None
        ]

    def names(self) -> list[str]:
        """Distinct model names with at least one version, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and self._versions(p.name)
        )

    # ------------------------------------------------------------ push
    def push(
        self,
        name: str,
        artifact: Artifact,
        *,
        created_at: str | None = None,
    ) -> ModelManifest:
        """Store a fitted artifact as the next version of ``name``.

        Returns the written manifest.  The artifact's JSON bytes are
        hashed at push time; every later load re-verifies that hash.
        """
        parsed, version = self.parse_ref(name)
        if version is not None:
            raise RegistryError(
                f"push takes a bare name; versions are assigned by the "
                f"registry (got {name!r})"
            )
        try:
            data = artifact_to_dict(artifact)
        except PersistenceError as exc:
            raise RegistryError(f"cannot push {parsed!r}: {exc}") from None
        payload = json.dumps(data, indent=2).encode()
        versions = self._versions(parsed)
        next_version = (versions[-1] + 1) if versions else 1
        manifest = ModelManifest(
            name=parsed,
            version=next_version,
            artifact=data["artifact"],
            kind=data["kind"],
            feature_set=data["feature_set"],
            processor_name=data.get("processor_name"),
            content_hash=_sha256(payload),
            format_version=FORMAT_VERSION,
            train_size=data.get("train_size"),
            created_at=created_at
            or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
        target = self._dir(parsed, next_version)
        target.mkdir(parents=True)
        (target / "model.json").write_bytes(payload)
        (target / "manifest.json").write_text(
            json.dumps(manifest.to_dict(), indent=2)
        )
        return manifest

    # ------------------------------------------------------------- get
    def resolve(self, ref: str) -> ModelManifest:
        """Resolve ``name`` / ``name@version`` to a stored manifest.

        Bare names float to the newest version that is not tombstoned;
        a pinned tombstoned version raises :class:`TombstoneError`.
        """
        name, version = self.parse_ref(ref)
        versions = self._versions(name)
        if not versions:
            known = self.names()
            detail = (
                f"registry at {self.root} has models {known}"
                if known
                else f"registry at {self.root} is empty"
            )
            raise RegistryError(f"unknown model {name!r}: {detail}")
        if version is None:
            live = self._live_versions(name)
            if not live:
                raise TombstoneError(
                    f"every version of {name!r} is tombstoned; "
                    f"available (blocked): {versions}",
                )
            version = live[-1]
        elif version not in versions:
            raise RegistryError(
                f"unknown version {version} of {name!r}; available: "
                f"{versions}"
            )
        else:
            reason = self.tombstone_reason(name, version)
            if reason is not None:
                raise TombstoneError(
                    tombstone_message(f"{name}@{version}", reason),
                    reason=reason,
                )
        return self.manifest(name, version)

    def manifest(self, name: str, version: int) -> ModelManifest:
        """Read one stored manifest (no payload verification)."""
        path = self._dir(name, version) / "manifest.json"
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise RegistryError(
                f"missing manifest for {name}@{version} under {self.root}"
            ) from None
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"manifest for {name}@{version} is not valid JSON: {exc}"
            ) from None
        manifest = ModelManifest.from_dict(data)
        if manifest.name != name or manifest.version != version:
            raise RegistryError(
                f"manifest under {name}@{version} claims to be "
                f"{manifest.ref}; registry layout was tampered with"
            )
        return manifest

    def latest(self, name: str) -> ModelManifest:
        """Manifest of the newest (non-tombstoned) version of ``name``."""
        return self.resolve(name)

    def _signature(self, name: str) -> tuple[int, int, int] | None:
        """Cheap change signature for one name directory.

        ``(dir mtime_ns, version count, tombstone count)``: a push adds a
        version dir (bumps mtime *and* count — the count catches pushes
        landing within the filesystem's mtime granularity), and a
        tombstone/untombstone changes the marker count without touching
        the name dir at all.
        """
        model_dir = self.root / name
        try:
            mtime_ns = os.stat(model_dir).st_mtime_ns
        except OSError:
            return None
        versions = self._versions(name)
        tombstones = sum(
            1
            for v in versions
            if (self._dir(name, v) / _TOMBSTONE_FILE).exists()
        )
        return (mtime_ns, len(versions), tombstones)

    def latest_version(self, name: str) -> int:
        """Latest live version of ``name``, cached against a directory
        signature so repeated per-request resolution skips manifest reads.

        The cache is keyed on ``(mtime_ns, version count, tombstone
        count)`` — comparing the counts as well as the mtime means a push
        from another process is seen even when two pushes land within the
        directory mtime granularity (coarse-mtime filesystems).
        """
        signature = self._signature(name)
        if signature is None:
            self._latest_cache.pop(name, None)
            return self.resolve(name).version  # raises RegistryError
        cached = self._latest_cache.get(name)
        if cached is not None and cached[0] == signature:
            return cached[1]
        version = self.resolve(name).version
        self._latest_cache[name] = (signature, version)
        return version

    # ---------------------------------------------------- change cursor
    def _signature_map(self) -> dict[str, str]:
        """Compact ``name -> signature`` map over every stored name."""
        signatures: dict[str, str] = {}
        for name in self.names():
            signature = self._signature(name)
            if signature is not None:
                signatures[name] = ":".join(str(part) for part in signature)
        return signatures

    def change_cursor(self) -> str:
        """Opaque cursor capturing the store's current change state.

        Feed it back to :meth:`changed_models` to learn which names have
        changed since — a push, tombstone, untombstone, GC, or removal
        all bump a name's signature (see :meth:`_signature`).
        """
        return encode_change_cursor(self._signature_map())

    def changed_models(self, cursor: str | None) -> tuple[list[str], str]:
        """Names changed since ``cursor``, plus a fresh cursor.

        ``None`` (or an undecodable cursor, e.g. from a different store
        generation) means "no prior view": every stored name is reported
        as changed, which makes the first call a full sync.  Names that
        disappeared since the cursor (GC removed the last version) are
        reported as changed too, so consumers can drop stale state.
        """
        signatures = self._signature_map()
        new_cursor = encode_change_cursor(signatures)
        old = decode_change_cursor(cursor) if cursor else None
        if old is None:
            return sorted(signatures), new_cursor
        changed = {
            name
            for name, signature in signatures.items()
            if old.get(name) != signature
        }
        changed |= set(old) - set(signatures)
        return sorted(changed), new_cursor

    def get(self, ref: str) -> tuple[Artifact, ModelManifest]:
        """Load an artifact by reference, verifying its content hash.

        Returns ``(artifact, manifest)``.  Raises :class:`RegistryError`
        for unknown references, hash mismatches (tampering), and
        corrupted payloads; :class:`TombstoneError` for blocked versions.
        """
        manifest = self.resolve(ref)
        path = self._dir(manifest.name, manifest.version) / "model.json"
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise RegistryError(
                f"missing model payload for {manifest.ref} under {self.root}"
            ) from None
        return decode_payload(payload, manifest), manifest

    # ------------------------------------------------------------ blobs
    def blob_path(self, content_hash: str) -> Path:
        """Path of the payload whose sha256 is ``content_hash``.

        The content-addressed view of the registry: the HTTP server
        serves ``GET /v1/blobs/{sha256}`` through this.  The index is
        rebuilt lazily from manifests when a hash is unknown or stale.
        """
        located = self._blob_index.get(content_hash)
        if located is not None:
            path = self._dir(*located) / "model.json"
            if path.is_file():
                return path
            self._blob_index.pop(content_hash, None)
        for name in self.names():
            for version in self._versions(name):
                try:
                    manifest = self.manifest(name, version)
                except RegistryError:
                    continue
                self._blob_index[manifest.content_hash] = (name, version)
        located = self._blob_index.get(content_hash)
        if located is None:
            raise RegistryError(
                f"unknown blob {content_hash[:12]}...: no registered "
                f"version has that content hash"
            )
        return self._dir(*located) / "model.json"

    def open_blob(self, content_hash: str) -> bytes:
        """Payload bytes by content hash, re-verified on read."""
        path = self.blob_path(content_hash)
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise RegistryError(
                f"cannot read blob {content_hash[:12]}...: {exc}"
            ) from None
        digest = _sha256(payload)
        if digest != content_hash:
            raise RegistryError(
                f"blob {content_hash[:12]}... hashes to {digest[:12]}...; "
                f"the stored payload was modified after push"
            )
        return payload

    # ------------------------------------------------------- tombstones
    def tombstone_reason(self, name: str, version: int) -> str | None:
        """The tombstone reason for ``name@version``, or ``None`` if live."""
        path = self._dir(name, version) / _TOMBSTONE_FILE
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # An unreadable marker still blocks: fail safe.
            return "unreadable tombstone marker"
        return str(data.get("reason", ""))

    def tombstone(
        self,
        ref: str,
        *,
        reason: str = "",
        created_at: str | None = None,
    ) -> None:
        """Block ``name@version`` everywhere without deleting its bytes.

        ``resolve``/``get`` refuse the version afterwards and bare names
        float past it.  Requires an explicit version (tombstoning "the
        latest" silently would invite racing a concurrent push).
        """
        name, version = self.parse_ref(ref)
        if version is None:
            raise RegistryError(
                f"tombstone takes an explicit name@version (got {ref!r})"
            )
        if version not in self._versions(name):
            raise RegistryError(
                f"cannot tombstone unknown version {version} of {name!r}; "
                f"available: {self._versions(name)}"
            )
        marker = {
            "ref": f"{name}@{version}",
            "reason": reason,
            "created_at": created_at
            or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        (self._dir(name, version) / _TOMBSTONE_FILE).write_text(
            json.dumps(marker, indent=2)
        )

    def untombstone(self, ref: str) -> bool:
        """Lift a tombstone; returns whether a marker was removed."""
        name, version = self.parse_ref(ref)
        if version is None:
            raise RegistryError(
                f"untombstone takes an explicit name@version (got {ref!r})"
            )
        path = self._dir(name, version) / _TOMBSTONE_FILE
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    # --------------------------------------------------------------- gc
    def gc(self, keep: int, *, dry_run: bool = False) -> GCReport:
        """Prune old versions, keeping the newest ``keep`` live versions.

        Per name, the cutoff is the ``keep``-th newest non-tombstoned
        version; every version strictly older is deleted (tombstoned or
        not).  Versions at or above the cutoff are never touched, so the
        highest version number always survives and numbers are never
        reused by a later push.  Names with no live versions are left
        alone (everything is blocked; deleting would destroy the only
        rollback evidence).
        """
        if keep < 1:
            raise RegistryError(f"gc keeps at least 1 version; got {keep}")
        removed: list[str] = []
        kept: list[str] = []
        bytes_freed = 0
        for name in self.names():
            versions = self._versions(name)
            live = self._live_versions(name)
            if not live:
                kept.extend(f"{name}@{v}" for v in versions)
                continue
            cutoff = live[-keep] if len(live) >= keep else live[0]
            for version in versions:
                ref = f"{name}@{version}"
                if version >= cutoff:
                    kept.append(ref)
                    continue
                target = self._dir(name, version)
                size = sum(
                    p.stat().st_size for p in target.iterdir() if p.is_file()
                )
                bytes_freed += size
                removed.append(ref)
                if not dry_run:
                    for p in target.iterdir():
                        p.unlink()
                    target.rmdir()
        if removed and not dry_run:
            self._blob_index.clear()
            self._latest_cache.clear()
        return GCReport(
            keep=keep,
            removed=tuple(removed),
            kept=tuple(kept),
            bytes_freed=bytes_freed,
            dry_run=dry_run,
        )

    # ------------------------------------------------------------ list
    def list(self) -> list[ModelManifest]:
        """Every stored manifest, sorted by (name, version).

        Includes tombstoned versions — listing is inventory, not
        resolution; check :meth:`tombstone_reason` for status.
        """
        return [
            self.manifest(name, version)
            for name in self.names()
            for version in self._versions(name)
        ]


#: The on-disk registry under its backend-protocol name.
LocalBackend = ModelRegistry
