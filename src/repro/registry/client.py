"""HTTP registry backend with a content-addressed local cache.

:class:`HttpBackend` speaks the :class:`~repro.registry.backend.RegistryBackend`
protocol against a remote :class:`~repro.registry.server.RegistryServer`,
so the prediction server and the CLI use a remote registry exactly like a
local directory.  Two properties make it fit for a serving fleet:

* **Content-addressed cache.**  Every downloaded payload is verified
  against its manifest's SHA-256 and stored under
  ``<cache_dir>/blobs/<sha256>``; manifests land under
  ``<cache_dir>/manifests/<name>/<version>.json``.  A repeat ``get()`` of
  a pinned, cached, live version touches the cache only — zero HTTP
  requests (the bench pins this via :attr:`http_requests`).
* **Outage survival.**  When the registry is unreachable, references that
  resolve within the cache keep working: a pinned version loads straight
  from cache, a bare name floats to the newest cached live version.  Only
  uncached versions fail, with an error naming the unreachable registry.
* **Incremental sync.**  :meth:`HttpBackend.changed_models` speaks the
  server's ``?since=<cursor>`` change feed so pollers (the prediction
  server's hot-reload loop) learn which names changed in one request
  instead of re-listing the store; against servers that predate the
  cursor it returns ``None`` and callers fall back to full listings.

Error parity: tampered, truncated, and corrupted payloads raise the same
descriptive :class:`~repro.registry.local.RegistryError` messages as the
local backend — both decode through
:func:`~repro.registry.local.decode_payload` — and a tombstoned version
raises :class:`~repro.registry.local.TombstoneError` with the shared
:func:`~repro.registry.local.tombstone_message` wording (the server's 410
body carries the exact text).
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
from pathlib import Path
from urllib.parse import urlsplit

from ..core.persistence import PersistenceError, artifact_to_dict
from .local import (
    Artifact,
    ModelManifest,
    RegistryError,
    TombstoneError,
    decode_payload,
    parse_ref,
    tombstone_message,
)

__all__ = ["HttpBackend"]


class HttpBackend:
    """A remote registry, cached locally by content hash.

    Parameters
    ----------
    base_url:
        Registry server address, e.g. ``http://127.0.0.1:8100``.
    cache_dir:
        Directory for the blob/manifest cache (created on demand).
    token:
        Bearer token sent by :meth:`push` (pushes fail without one unless
        the server allows anonymous pushes — the stock server never does).
    timeout_s:
        Socket timeout per HTTP request.
    """

    def __init__(
        self,
        base_url: str,
        cache_dir: str | Path,
        *,
        token: str | None = None,
        timeout_s: float = 10.0,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise RegistryError(
                f"registry URL must be http://host:port; got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self._host = split.hostname
        self._port = split.port or 80
        self.cache_dir = Path(cache_dir)
        self.token = token
        self.timeout_s = timeout_s
        #: HTTP requests attempted (the round-trip bench asserts a cached
        #: ``get()`` leaves this untouched).
        self.http_requests = 0
        #: Full ``GET /v1/models`` listings attempted (``names``/``list``).
        #: Cursor-polling consumers assert this stays flat: after the
        #: initial sync, :meth:`changed_models` alone keeps them current.
        self.full_list_requests = 0

    # ------------------------------------------------------------- wire
    def describe(self) -> str:
        """Human-readable backend location (for logs and errors)."""
        return self.base_url

    @staticmethod
    def parse_ref(ref: str) -> tuple[str, int | None]:
        """Split ``name`` or ``name@version`` into its parts."""
        return parse_ref(ref)

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """One HTTP round-trip; raises ``OSError`` when unreachable."""
        self.http_requests += 1
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    @staticmethod
    def _error_text(payload: bytes, fallback: str) -> str:
        try:
            return str(json.loads(payload.decode())["error"])
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
            return fallback

    # ------------------------------------------------------------- cache
    def _manifest_path(self, name: str, version: int) -> Path:
        return self.cache_dir / "manifests" / name / f"{version}.json"

    def _blob_cache_path(self, content_hash: str) -> Path:
        return self.cache_dir / "blobs" / content_hash

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        """Write ``payload`` so concurrent writers can never tear ``path``.

        The temp file name must be unique *per writer*: with a fixed
        ``<path>.tmp``, two processes pulling the same version interleave
        — A's ``os.replace`` publishes the tmp inode while B is still
        writing into it, leaving a torn final file.  ``mkstemp`` in the
        destination directory gives each writer its own inode on the
        same filesystem, so every ``os.replace`` publishes a complete
        payload; last writer wins, which is fine for content-addressed
        entries (both wrote identical bytes).
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _cache_manifest(self, data: dict) -> None:
        """Store one server manifest dict (with its tombstone field)."""
        try:
            name, version = str(data["name"]), int(data["version"])
        except (KeyError, TypeError, ValueError):
            return  # malformed server response; nothing worth caching
        self._atomic_write(
            self._manifest_path(name, version),
            json.dumps(data, indent=2).encode(),
        )

    def _cached_manifest(self, name: str, version: int) -> dict | None:
        """The cached manifest dict for one version, or ``None``."""
        try:
            return json.loads(self._manifest_path(name, version).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _mark_tombstoned(self, name: str, version: int, reason: str) -> None:
        """Record a learned tombstone so the cache also refuses it."""
        cached = self._cached_manifest(name, version)
        if cached is not None and cached.get("tombstone") != reason:
            cached["tombstone"] = reason
            self._cache_manifest(cached)

    def _cached_versions(self, name: str) -> list[int]:
        manifest_dir = self.cache_dir / "manifests" / name
        if not manifest_dir.is_dir():
            return []
        return sorted(
            int(p.stem)
            for p in manifest_dir.glob("*.json")
            if p.stem.isdigit()
        )

    # ----------------------------------------------------------- resolve
    def resolve(self, ref: str) -> ModelManifest:
        """Resolve a reference against the server (cache on outage)."""
        name, version = parse_ref(ref)  # local validation: identical errors
        try:
            status, payload = self._request(
                "GET", f"/v1/models/{ref}/manifest"
            )
        except OSError:
            return self._resolve_cached(name, version)
        if status == 200:
            data = json.loads(payload.decode())
            self._cache_manifest(data)
            return ModelManifest.from_dict(data)
        message = self._error_text(
            payload, f"registry at {self.base_url} refused {ref!r} ({status})"
        )
        if status == 410:
            if version is not None:
                # Remember the block so offline lookups refuse it too.
                reason = self._reason_from_message(ref, message)
                self._mark_tombstoned(name, version, reason)
                raise TombstoneError(message, reason=reason)
            raise TombstoneError(message)
        raise RegistryError(message)

    @staticmethod
    def _reason_from_message(ref: str, message: str) -> str:
        """Recover the operator reason from the shared tombstone text."""
        prefix = f"{ref} is tombstoned"
        suffix = (
            " (bytes retained; resolve another version or untombstone it)"
        )
        if not (message.startswith(prefix) and message.endswith(suffix)):
            return ""
        core = message[len(prefix):-len(suffix)]
        return core[2:] if core.startswith(": ") else ""

    def _resolve_cached(self, name: str, version: int | None) -> ModelManifest:
        """Offline resolution from cached manifests only."""
        versions = self._cached_versions(name)
        if version is None:
            live = [
                v
                for v in versions
                if (self._cached_manifest(name, v) or {}).get("tombstone")
                is None
                and self._cached_manifest(name, v) is not None
            ]
            if not live:
                raise RegistryError(
                    f"registry at {self.base_url} is unreachable and the "
                    f"cache has no live version of {name!r} "
                    f"(cached: {versions})"
                )
            version = live[-1]
        data = self._cached_manifest(name, version)
        if data is None:
            raise RegistryError(
                f"registry at {self.base_url} is unreachable and "
                f"{name}@{version} is not cached (cached: {versions})"
            )
        reason = data.get("tombstone")
        if reason is not None:
            raise TombstoneError(
                tombstone_message(f"{name}@{version}", str(reason)),
                reason=str(reason),
            )
        return ModelManifest.from_dict(data)

    def latest(self, name: str) -> ModelManifest:
        """Manifest of the newest live version of ``name``."""
        parsed, version = parse_ref(name)
        if version is not None:
            raise RegistryError(f"latest takes a bare name; got {name!r}")
        return self.resolve(parsed)

    def latest_version(self, name: str) -> int:
        """Newest live version number of ``name``."""
        return self.latest(name).version

    # --------------------------------------------------------------- get
    def get(self, ref: str) -> tuple[Artifact, ModelManifest]:
        """Load and hash-verify an artifact, cache-first for pinned refs.

        A pinned reference whose manifest and payload are both cached
        (and not known-tombstoned) is served without any HTTP request;
        everything else resolves against the server, downloading (and
        caching) the payload by content hash.
        """
        name, version = parse_ref(ref)
        manifest: ModelManifest | None = None
        if version is not None:
            cached = self._cached_manifest(name, version)
            if cached is not None:
                reason = cached.get("tombstone")
                if reason is not None:
                    raise TombstoneError(
                        tombstone_message(f"{name}@{version}", str(reason)),
                        reason=str(reason),
                    )
                manifest = ModelManifest.from_dict(cached)
        if manifest is None:
            manifest = self.resolve(ref)
        blob_path = self._blob_cache_path(manifest.content_hash)
        if blob_path.is_file():
            payload = blob_path.read_bytes()
            try:
                return decode_payload(payload, manifest), manifest
            except RegistryError:
                # Cache corruption (not a server problem): drop the entry
                # and fall through to a fresh download.
                blob_path.unlink(missing_ok=True)
        payload = self._download_blob(manifest)
        artifact = decode_payload(payload, manifest)  # canonical errors
        self._atomic_write(blob_path, payload)
        return artifact, manifest

    def blob_path(self, content_hash: str) -> Path:
        """Local path of a blob, pulled through from the upstream on miss.

        The content-addressed read path that makes an :class:`HttpBackend`
        servable by a :class:`~repro.registry.server.RegistryServer` as a
        **read replica**: ``repro registry serve --mirror URL`` wraps an
        ``HttpBackend`` and answers ``GET /v1/blobs/{sha256}`` through
        this.  A cached blob is returned without touching the network;
        a miss downloads from the upstream, verifies the payload hashes
        to ``content_hash``, caches it, and returns the cached path — so
        a fleet of suite runners hits the upstream once per artifact, not
        once per runner.
        """
        import hashlib

        path = self._blob_cache_path(content_hash)
        if path.is_file():
            return path
        try:
            status, payload = self._request("GET", f"/v1/blobs/{content_hash}")
        except OSError as exc:
            raise RegistryError(
                f"registry at {self.base_url} is unreachable and blob "
                f"{content_hash[:12]}... is not cached: {exc}"
            ) from None
        if status != 200:
            raise RegistryError(
                self._error_text(
                    payload,
                    f"registry at {self.base_url} refused blob "
                    f"{content_hash[:12]}... ({status})",
                )
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != content_hash:
            raise RegistryError(
                f"blob {content_hash[:12]}... from {self.base_url} hashes "
                f"to {digest[:12]}...; refusing to cache the corrupt payload"
            )
        self._atomic_write(path, payload)
        return path

    def _download_blob(self, manifest: ModelManifest) -> bytes:
        try:
            status, payload = self._request(
                "GET", f"/v1/blobs/{manifest.content_hash}"
            )
        except OSError as exc:
            raise RegistryError(
                f"registry at {self.base_url} is unreachable and "
                f"{manifest.ref} is not cached: {exc}"
            ) from None
        if status != 200:
            raise RegistryError(
                self._error_text(
                    payload,
                    f"registry at {self.base_url} refused blob "
                    f"{manifest.content_hash[:12]}... ({status})",
                )
            )
        return payload

    # ------------------------------------------------------------- lists
    def names(self) -> list[str]:
        """Distinct model names, from the server (cache on outage)."""
        self.full_list_requests += 1
        try:
            status, payload = self._request("GET", "/v1/models")
        except OSError:
            manifest_root = self.cache_dir / "manifests"
            if not manifest_root.is_dir():
                return []
            return sorted(
                p.name
                for p in manifest_root.iterdir()
                if p.is_dir() and self._cached_versions(p.name)
            )
        if status != 200:
            raise RegistryError(
                self._error_text(
                    payload, f"registry at {self.base_url} refused the "
                    f"model listing ({status})"
                )
            )
        data = json.loads(payload.decode())
        for entry in data.get("models", []):
            self._cache_manifest(entry)
        return sorted({str(m["name"]) for m in data.get("models", [])})

    def list(self) -> list[ModelManifest]:
        """Every stored manifest (cache on outage), sorted."""
        self.full_list_requests += 1
        try:
            status, payload = self._request("GET", "/v1/models")
        except OSError:
            manifests = [
                self._cached_manifest(name, version)
                for name in self.names()  # offline branch: reads the cache
                for version in self._cached_versions(name)
            ]
            return [
                ModelManifest.from_dict(m) for m in manifests if m is not None
            ]
        if status != 200:
            raise RegistryError(
                self._error_text(
                    payload, f"registry at {self.base_url} refused the "
                    f"model listing ({status})"
                )
            )
        entries = json.loads(payload.decode()).get("models", [])
        for entry in entries:
            self._cache_manifest(entry)
        return [ModelManifest.from_dict(m) for m in entries]

    def changed_models(self, cursor: str | None) -> tuple[list[str], str] | None:
        """Names changed since ``cursor`` plus a fresh cursor, or ``None``.

        Speaks ``GET /v1/models?since=...`` — the server answers with
        only the changed names' manifests (cached here as they arrive),
        the changed-name list (removed names included), and a new
        cursor.  ``cursor=None`` sends the conventional ``0``, which no
        cursor decodes to, so the first call is a full sync.

        ``None`` (the return value) means the server predates change
        cursors — its listing carries no ``cursor`` field — and callers
        should fall back to full listings.  Unreachable servers raise
        ``OSError`` untouched: a change feed has no meaningful cache
        fallback, and pollers just retry next tick.
        """
        since = cursor if cursor else "0"
        status, payload = self._request("GET", f"/v1/models?since={since}")
        if status != 200:
            raise RegistryError(
                self._error_text(
                    payload, f"registry at {self.base_url} refused the "
                    f"change listing ({status})"
                )
            )
        data = json.loads(payload.decode())
        if "cursor" not in data:
            return None
        for entry in data.get("models", []):
            self._cache_manifest(entry)
        changed = [str(name) for name in data.get("changed", [])]
        return changed, str(data["cursor"])

    # -------------------------------------------------------- tombstones
    def tombstone_reason(self, name: str, version: int) -> str | None:
        """Tombstone status of one version (cache on outage)."""
        try:
            status, payload = self._request(
                "GET", f"/v1/models/{name}@{version}/tombstone"
            )
        except OSError:
            cached = self._cached_manifest(name, version)
            if cached is None or cached.get("tombstone") is None:
                return None
            return str(cached["tombstone"])
        if status != 200:
            return None  # unknown version reads as "no tombstone", as local
        reason = json.loads(payload.decode()).get("reason")
        if reason is not None:
            self._mark_tombstoned(name, version, str(reason))
            return str(reason)
        return None

    # -------------------------------------------------------------- push
    def push(
        self, name: str, artifact: Artifact, *, created_at: str | None = None
    ) -> ModelManifest:
        """Upload an artifact as the next version of ``name``."""
        parsed, version = parse_ref(name)
        if version is not None:
            raise RegistryError(
                f"push takes a bare name; versions are assigned by the "
                f"registry (got {name!r})"
            )
        try:
            data = artifact_to_dict(artifact)
        except PersistenceError as exc:
            raise RegistryError(f"cannot push {parsed!r}: {exc}") from None
        body: dict = {"name": parsed, "artifact": data}
        if created_at is not None:
            body["created_at"] = created_at
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        try:
            status, payload = self._request(
                "POST", "/v1/push",
                body=json.dumps(body).encode(), headers=headers,
            )
        except OSError as exc:
            raise RegistryError(
                f"cannot push {parsed!r}: registry at {self.base_url} is "
                f"unreachable: {exc}"
            ) from None
        if status != 200:
            raise RegistryError(
                self._error_text(
                    payload,
                    f"registry at {self.base_url} refused the push "
                    f"({status})",
                )
            )
        manifest_data = json.loads(payload.decode())
        self._cache_manifest(manifest_data)
        return ModelManifest.from_dict(manifest_data)
