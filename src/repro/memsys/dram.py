"""DRAM bandwidth/latency contention model.

The second contention mechanism of the reproduction (after shared-cache
capacity): LLC misses from all co-located applications share a finite DRAM
interface.  As the aggregate miss bandwidth approaches the peak, memory
requests queue at the controller and the *effective* miss latency grows.

We use the standard open-queueing approximation

    latency(rho) = idle_latency * (1 + shape * rho / (1 - rho))

with utilization ``rho`` clamped below 1.  The ``shape`` parameter absorbs
bank-level parallelism, row-buffer locality, and scheduling quality; it is a
per-machine calibration constant (:class:`repro.machine.DRAMConfig`).  The
latency curve is convex in load — the nonlinearity that, together with
cache-capacity competition, defeats the paper's linear models while the
neural networks keep up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.processor import DRAMConfig

__all__ = ["DRAMModel", "MAX_UTILIZATION"]

#: Utilization ceiling: queueing models diverge at rho = 1, while a real
#: memory controller saturates and throttles requestors instead.  Demand
#: beyond the ceiling is treated as operating at the ceiling (the throttling
#: itself shows up as longer latency, hence longer execution time).
MAX_UTILIZATION = 0.96


@dataclass(frozen=True)
class DRAMModel:
    """Latency-versus-load model for one machine's DRAM interface."""

    config: DRAMConfig

    def utilization(self, demand_bytes_per_s: np.ndarray | float) -> np.ndarray | float:
        """Fraction of peak bandwidth consumed, clamped to the ceiling."""
        d = np.asarray(demand_bytes_per_s, dtype=float)
        if np.any(d < 0.0):
            raise ValueError("bandwidth demand must be non-negative")
        peak = self.config.peak_bandwidth_gbs * 1e9
        out = np.minimum(d / peak, MAX_UTILIZATION)
        return out if out.ndim else float(out)

    def effective_latency_ns(
        self, demand_bytes_per_s: np.ndarray | float
    ) -> np.ndarray | float:
        """Loaded miss latency given aggregate bandwidth demand.

        Monotonically non-decreasing and convex in demand; equals the idle
        latency at zero load.
        """
        rho = np.asarray(self.utilization(demand_bytes_per_s), dtype=float)
        lat = self.config.idle_latency_ns * (
            1.0 + self.config.queue_shape * rho / (1.0 - rho)
        )
        return lat if lat.ndim else float(lat)

    def latency_at_utilization(self, rho: float) -> float:
        """Loaded latency at an explicit utilization (for reporting)."""
        if not 0.0 <= rho <= MAX_UTILIZATION:
            raise ValueError(
                f"utilization must be in [0, {MAX_UTILIZATION}], got {rho}"
            )
        return self.config.idle_latency_ns * (
            1.0 + self.config.queue_shape * rho / (1.0 - rho)
        )

    def saturation_demand_bytes_per_s(self) -> float:
        """Demand at which the model hits the utilization ceiling."""
        return MAX_UTILIZATION * self.config.peak_bandwidth_gbs * 1e9
