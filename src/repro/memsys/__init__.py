"""Memory system substrate: DRAM contention and the composed hierarchy."""

from .dram import MAX_UTILIZATION, DRAMModel
from .hierarchy import MemoryHierarchy, MemorySystemState

__all__ = [
    "DRAMModel",
    "MAX_UTILIZATION",
    "MemoryHierarchy",
    "MemorySystemState",
]
