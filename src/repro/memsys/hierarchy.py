"""Composed memory hierarchy: shared LLC in front of contended DRAM.

:class:`MemoryHierarchy` wires the analytic cache-sharing model
(:mod:`repro.cache.sharing`) to the DRAM contention model
(:mod:`repro.memsys.dram`) and exposes the quantity the execution engine
needs: the average memory stall time an application pays per LLC access,
given everyone's occupancies and the aggregate miss traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.sharing import CacheCompetitor, SharingSolution, solve_shared_cache
from ..machine.processor import MulticoreProcessor
from .dram import DRAMModel

__all__ = ["MemoryHierarchy", "MemorySystemState"]


@dataclass(frozen=True)
class MemorySystemState:
    """Steady-state snapshot of the memory system under one co-location.

    Attributes
    ----------
    sharing:
        Shared-LLC occupancy solution for all competitors.
    miss_bandwidth_bytes_per_s:
        Aggregate LLC-miss traffic reaching DRAM.
    dram_utilization:
        Fraction of peak DRAM bandwidth in use (clamped).
    dram_latency_ns:
        Loaded per-miss latency implied by the utilization.
    """

    sharing: SharingSolution
    miss_bandwidth_bytes_per_s: float
    dram_utilization: float
    dram_latency_ns: float


class MemoryHierarchy:
    """The shared-memory substrate of one multicore processor."""

    def __init__(self, processor: MulticoreProcessor) -> None:
        self.processor = processor
        self.dram = DRAMModel(processor.dram)

    def solve(
        self,
        competitors: list[CacheCompetitor],
    ) -> MemorySystemState:
        """Solve cache occupancies and DRAM load for one set of co-runners.

        ``competitors`` carry the access rates from the *current* engine
        iterate; the engine re-solves as rates converge.
        """
        sharing = solve_shared_cache(competitors, self.processor.llc.size_bytes)
        rates = np.array([c.access_rate for c in competitors])
        miss_rates = rates * sharing.miss_ratios
        bandwidth = float(miss_rates.sum()) * self.processor.llc.line_bytes
        rho = float(self.dram.utilization(bandwidth))
        latency = float(self.dram.effective_latency_ns(bandwidth))
        return MemorySystemState(
            sharing=sharing,
            miss_bandwidth_bytes_per_s=bandwidth,
            dram_utilization=rho,
            dram_latency_ns=latency,
        )

    def stall_ns_per_access(
        self,
        miss_ratio: np.ndarray | float,
        dram_latency_ns: float,
        *,
        mlp: np.ndarray | float = 1.0,
        hit_exposure: float = 0.3,
    ) -> np.ndarray | float:
        """Average memory stall per LLC access.

        A hit costs an exposed fraction of the LLC hit latency (out-of-order
        cores hide most of it); a miss costs the loaded DRAM latency divided
        by the application's memory-level parallelism ``mlp``.
        """
        m = np.asarray(miss_ratio, dtype=float)
        if np.any(m < 0.0) or np.any(m > 1.0):
            raise ValueError("miss ratio must be within [0, 1]")
        mlp_arr = np.asarray(mlp, dtype=float)
        if np.any(mlp_arr < 1.0):
            raise ValueError("memory-level parallelism must be >= 1")
        hit_ns = self.processor.llc.hit_latency_ns * hit_exposure
        out = (1.0 - m) * hit_ns + m * (dram_latency_ns / mlp_arr)
        return out if out.ndim else float(out)
