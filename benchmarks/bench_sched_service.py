"""Microbenchmark — the online scheduler service, throughput and regret.

Not a paper artifact; guards the two properties the scheduler tier
exists for.  ``test_placement_throughput``: with the *real* prediction
tier in the loop (HTTP server, micro-batched), the service must sustain
hundreds of placement decisions per second across a 1000-node fleet —
the vectorized occupancy arrays, candidate pruning, and one-batched-
predict-per-round design are what make that possible.
``test_model_policy_beats_baselines``: on a pinned-seed job stream at
partial load, the model-driven policy must realize a lower mean
degradation than BOTH first-fit consolidation and least-loaded
spreading — the paper's Section VI claim, measured on the service
itself rather than the offline simulator.

Both tests append their numbers to ``results/BENCH_sched.json``.

Set ``REPRO_SMOKE=1`` for the reduced configuration used by
``make bench-smoke`` (fewer throughput jobs; same fleet size and the
same floors — the decision rate barely depends on job count, and the
quality comparison is already cheap).
"""

import json
import os
import tempfile
import time

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.machine import XEON_E5649
from repro.sched.fleet import FleetState, MachineConfig
from repro.sched.queue import JobStatus, job_stream
from repro.sched.service import (
    LocalScorer,
    RemoteScorer,
    SchedulerClient,
    SchedulerThread,
)
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServerThread
from repro.workloads.suite import all_applications

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

FLEET_NODES = 1000               # the acceptance floor asks for >= 1000
THROUGHPUT_JOBS = 256 if _SMOKE else 1024
ROUND_SIZE = 64
MIN_DECISIONS_PER_S = 200.0

STREAM_SEED = 12

# Quality comparison: a partial-load burst, where placement choice is
# real.  At saturation every policy is forced into the same slots; at
# trivial load every policy runs everything solo.  28 jobs on 48 cores
# with small rounds keeps the model's scores fresh enough to pick
# mixes, which is the regime the paper's Section VI argues for.
QUALITY_NODES = 8
QUALITY_JOBS = 28
QUALITY_ROUND = 8
QUALITY_SEED = 7


def _record(results_dir, **values):
    """Merge a measurement into the BENCH_sched.json trajectory."""
    path = results_dir / "BENCH_sched.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _wait_until(predicate, timeout_s=300.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _fit_predictor(ctx):
    """A linear predictor: fits in milliseconds, scores in microseconds."""
    return PerformancePredictor(ModelKind.LINEAR, FeatureSet.F, seed=3).fit(
        list(ctx.dataset("e5649"))
    )


def test_placement_throughput(ctx, results_dir, benchmark):
    baselines = ctx.baselines("e5649")
    predictor = _fit_predictor(ctx)
    fleet = FleetState(
        [MachineConfig(XEON_E5649, count=FLEET_NODES, name_prefix="node")]
    )
    stream = job_stream(
        list(all_applications()), THROUGHPUT_JOBS, seed=STREAM_SEED
    )
    apps = [app.name for app, _arrival in stream]

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.push("colo", predictor)
        with ServerThread(
            registry, max_batch=1024, max_wait_ms=1.0
        ) as predict_handle:
            scorer = RemoteScorer(
                "127.0.0.1", predict_handle.port, model="colo"
            )
            with SchedulerThread(
                fleet,
                baselines,
                scorer=scorer,
                policy="model",
                round_size=ROUND_SIZE,
            ) as handle:
                with SchedulerClient("127.0.0.1", handle.port) as client:

                    def place_all():
                        start = time.perf_counter()
                        client.submit(apps)
                        assert _wait_until(
                            lambda: client.cluster()["placements"]
                            >= THROUGHPUT_JOBS
                        ), "jobs were not all placed in time"
                        return time.perf_counter() - start

                    elapsed = benchmark.pedantic(
                        place_all, rounds=1, iterations=1
                    )
                    metrics = client.metrics()
                    body = client.cluster()
            scorer.close()

    decisions_per_s = THROUGHPUT_JOBS / elapsed
    batches = metrics["repro_sched_predict_batches_total"]
    rows = metrics["repro_sched_predict_rows_total"]
    rounds = metrics["repro_sched_decision_latency_seconds_count"]
    print(
        f"\nfleet    {FLEET_NODES} nodes / {fleet.total_cores} cores\n"
        f"placed   {THROUGHPUT_JOBS} jobs in {elapsed:.3f}s "
        f"({decisions_per_s:.0f} decisions/s)\n"
        f"batched  {batches:.0f} predict batches, {rows:.0f} rows "
        f"({rows / max(batches, 1):.0f} rows/batch) over "
        f"{rounds:.0f} scheduling rounds"
    )
    # One batched predict per scheduling round, not one per job: the
    # whole point of the candidate x job scoring matrix.
    assert batches <= rounds + 1
    assert batches < THROUGHPUT_JOBS / 4
    assert body["placements"] >= THROUGHPUT_JOBS
    assert decisions_per_s >= MIN_DECISIONS_PER_S, (
        f"{decisions_per_s:.0f} placement decisions/s below the "
        f"{MIN_DECISIONS_PER_S:.0f}/s floor on a {FLEET_NODES}-node fleet"
    )
    _record(
        results_dir,
        fleet_nodes=FLEET_NODES,
        throughput_jobs=THROUGHPUT_JOBS,
        decisions_per_s=decisions_per_s,
        predict_batches=batches,
        predict_rows=rows,
    )


def _run_policy(policy, apps, baselines, scorer=None):
    """Run one policy over the same stream; mean realized degradation."""
    fleet = FleetState(
        [MachineConfig(XEON_E5649, count=QUALITY_NODES, name_prefix="node")]
    )
    with SchedulerThread(
        fleet,
        baselines,
        scorer=scorer,
        policy=policy,
        round_size=QUALITY_ROUND,
    ) as handle:
        with SchedulerClient("127.0.0.1", handle.port) as client:
            client.submit(apps)
            assert _wait_until(
                lambda: client.jobs()["counts"]["completed"] == len(apps)
            ), f"{policy}: stream did not complete"
            mean_regret = client.cluster()["mean_regret"]
        jobs = [
            j for j in handle.server.queue.jobs()
            if j.status is JobStatus.COMPLETED
        ]
    slowdowns = [j.realized_slowdown for j in jobs]
    return sum(slowdowns) / len(slowdowns), mean_regret


def test_model_policy_beats_baselines(ctx, results_dir, benchmark):
    baselines = ctx.baselines("e5649")
    scorer = LocalScorer(_fit_predictor(ctx))
    stream = job_stream(
        list(all_applications()), QUALITY_JOBS, seed=QUALITY_SEED
    )
    apps = [app.name for app, _arrival in stream]

    def sweep():
        results = {}
        results["model"] = _run_policy("model", apps, baselines, scorer)
        results["first-fit"] = _run_policy("first-fit", apps, baselines)
        results["least-loaded"] = _run_policy(
            "least-loaded", apps, baselines
        )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    model_mean, model_regret = results["model"]
    first_fit_mean, _ = results["first-fit"]
    least_loaded_mean, _ = results["least-loaded"]
    print(
        f"\nmean realized degradation over {QUALITY_JOBS} jobs on "
        f"{QUALITY_NODES} nodes (seed {QUALITY_SEED}):\n"
        f"  model-driven  {model_mean:.4f}  "
        f"(mean regret {model_regret:+.4f})\n"
        f"  first-fit     {first_fit_mean:.4f}\n"
        f"  least-loaded  {least_loaded_mean:.4f}"
    )
    assert model_mean < first_fit_mean, (
        f"model policy ({model_mean:.4f}) did not beat first-fit "
        f"({first_fit_mean:.4f})"
    )
    assert model_mean < least_loaded_mean, (
        f"model policy ({model_mean:.4f}) did not beat least-loaded "
        f"({least_loaded_mean:.4f})"
    )
    _record(
        results_dir,
        quality_jobs=QUALITY_JOBS,
        quality_nodes=QUALITY_NODES,
        mean_degradation_model=model_mean,
        mean_degradation_first_fit=first_fit_mean,
        mean_degradation_least_loaded=least_loaded_mean,
        model_mean_regret=model_regret,
    )
