"""Figure 1 — MPE vs feature set, linear + neural, 6-core Xeon E5649."""

from _figures import run_figure


def test_fig1_mpe_6core(benchmark, ctx, emit):
    run_figure(
        benchmark,
        emit,
        ctx,
        name="fig1_mpe_6core",
        machine_key="e5649",
        metric="mpe",
        title="Figure 1: MPE, Xeon E5649 (6-core)",
    )
