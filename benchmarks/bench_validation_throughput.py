"""Microbenchmark — the model-fitting pipeline's fast paths.

Not a paper artifact; guards the three properties the fast-fit engine
exists for:

* ``workers=N`` repeated random sub-sampling returns **bit-identical**
  :class:`~repro.core.validation.ValidationResult` arrays and is at least
  3x faster than serial on a multi-core runner (the floor drops to 1.5x
  under ``REPRO_SMOKE=1``, and the speedup assertion is skipped outright
  on runners with fewer than four cores, where no fan-out can pay off);
* ``batched_restarts=True`` advances all SCG restarts as one stacked
  optimization with bit-identical per-restart losses and restart
  selection (its speedup is reported, not asserted — it depends on the
  restart count and problem size);
* the serial loss keeps allocation out of the hot loop: a warmed
  workspace call must allocate well under half of a cold call's peak;
* the :mod:`repro.obs` instrumentation is effectively free while tracing
  is disabled: the null-tracer per-call cost, scaled by the number of
  spans a traced sweep actually records, must stay under 2% of the
  disabled sweep's wall time.

Each run appends a point to ``results/BENCH_validation.json`` so the
numbers form a trajectory across sessions; the overhead guard also
leaves its captured trace at ``results/TRACE_validation.json`` (a
Perfetto-loadable Chrome trace, uploaded as a CI artifact).
"""

import json
import os
import time
import tracemalloc
from functools import partial

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.features import feature_matrix
from repro.core.fitstats import FitStats
from repro.core.methodology import ModelKind, make_model
from repro.core.neural import NeuralNetworkModel
from repro.core.validation import repeated_random_subsampling

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

REPETITIONS = 10 if _SMOKE else 30
WORKERS = min(os.cpu_count() or 1, 8)
MIN_SPEEDUP = 1.5 if _SMOKE else 3.0
MULTI_CORE = WORKERS >= 4


def _feature_data(ctx):
    return feature_matrix(list(ctx.dataset("e5649")), FeatureSet.F.features)


def _record(results_dir, **values):
    """Merge a measurement into the BENCH_validation.json trajectory."""
    path = results_dir / "BENCH_validation.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_parallel_validation_speedup(benchmark, ctx, results_dir):
    """workers=N must match workers=1 bitwise and beat it on wall time."""
    X, y = _feature_data(ctx)
    factory = partial(
        make_model, ModelKind.NEURAL, FeatureSet.F, batched_restarts=True
    )

    def sweep(workers):
        stats = FitStats()
        start = time.perf_counter()
        result = repeated_random_subsampling(
            factory,
            X,
            y,
            repetitions=REPETITIONS,
            rng=np.random.default_rng(2015),
            workers=workers,
            stats=stats,
        )
        return result, time.perf_counter() - start, stats

    serial, serial_s, serial_stats = sweep(1)
    parallel, parallel_s, parallel_stats = benchmark.pedantic(
        lambda: sweep(WORKERS), rounds=1, iterations=1
    )

    for name in ("train_mpe", "test_mpe", "train_nrmse", "test_nrmse"):
        assert np.array_equal(getattr(serial, name), getattr(parallel, name)), (
            f"workers={WORKERS} diverged from serial on {name}"
        )
    # Counters are repetition-keyed, so they match exactly too (wall time
    # is per-process and legitimately differs).
    assert parallel_stats.fits == serial_stats.fits == REPETITIONS
    assert parallel_stats.scg_iterations == serial_stats.scg_iterations
    assert parallel_stats.gradient_evals == serial_stats.gradient_evals

    speedup = serial_s / parallel_s
    print(
        f"\nserial   {serial_s:6.2f} s   parallel ({WORKERS} workers) "
        f"{parallel_s:6.2f} s   speedup {speedup:.2f}x\n"
        + serial_stats.summary()
    )
    _record(
        results_dir,
        repetitions=REPETITIONS,
        workers=WORKERS,
        serial_s=serial_s,
        parallel_s=parallel_s,
        parallel_speedup=speedup,
        fits=serial_stats.fits,
        scg_iterations=serial_stats.scg_iterations,
    )
    if MULTI_CORE:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel validation speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x floor on {WORKERS} workers"
        )
    else:
        print(
            f"only {os.cpu_count()} cpu(s): speedup floor not asserted "
            f"(bit-identity still checked)"
        )


def test_batched_restart_speedup(benchmark, ctx, results_dir):
    """Stacked restarts must match the serial loop bitwise; speedup reported."""
    X, y = _feature_data(ctx)
    n_restarts = 4 if _SMOKE else 8

    def fit(batched):
        model = NeuralNetworkModel(
            hidden_units=20, n_restarts=n_restarts, batched_restarts=batched
        )
        return model.fit(X, y, rng=np.random.default_rng(7))

    start = time.perf_counter()
    serial_model = fit(False)
    serial_s = time.perf_counter() - start
    batched_model = benchmark.pedantic(lambda: fit(True), rounds=1, iterations=1)
    batched_s = batched_model.fit_stats_.wall_time_s

    # The contract is 1e-9 relative on per-restart losses; the matched
    # accumulation forms actually deliver bitwise equality.
    rel = np.max(
        np.abs(serial_model.restart_losses_ - batched_model.restart_losses_)
        / np.abs(serial_model.restart_losses_)
    )
    assert rel <= 1e-9, f"batched restart losses off by {rel:.3e} relative"
    assert int(np.argmin(serial_model.restart_losses_)) == int(
        np.argmin(batched_model.restart_losses_)
    ), "restart selection differs between serial and batched modes"
    assert np.array_equal(serial_model.predict(X), batched_model.predict(X))

    speedup = serial_s / batched_s
    print(
        f"\nserial restarts {serial_s * 1e3:7.1f} ms   "
        f"batched {batched_s * 1e3:7.1f} ms   speedup {speedup:.2f}x "
        f"({n_restarts} restarts, max rel loss diff {rel:.1e})"
    )
    _record(
        results_dir,
        batched_restarts=n_restarts,
        batched_serial_s=serial_s,
        batched_s=batched_s,
        batched_speedup=speedup,
    )


def test_tracer_overhead_guard(ctx, results_dir):
    """Disabled tracing must cost <2% of sweep wall time; traced run exported."""
    from repro.obs.trace import disable, enable, get_tracer

    X, y = _feature_data(ctx)
    factory = partial(
        make_model, ModelKind.NEURAL, FeatureSet.F, batched_restarts=True
    )

    def sweep():
        start = time.perf_counter()
        result = repeated_random_subsampling(
            factory,
            X,
            y,
            repetitions=REPETITIONS,
            rng=np.random.default_rng(2015),
            workers=1,
        )
        return result, time.perf_counter() - start

    disable()
    baseline, disabled_s = sweep()

    tracer = enable(service="bench-validation")
    try:
        traced, _traced_s = sweep()
        span_count = len(tracer)
        exported = tracer.export_chrome(results_dir / "TRACE_validation.json")
    finally:
        disable()

    # Tracing must observe the sweep, never perturb it.
    for name in ("train_mpe", "test_mpe", "train_nrmse", "test_nrmse"):
        assert np.array_equal(getattr(baseline, name), getattr(traced, name)), (
            f"tracing changed {name}"
        )
    assert span_count > 0, "traced sweep recorded no spans"
    assert exported == span_count

    # A direct A/B wall-time diff drowns in run-to-run noise at the 2%
    # level, so measure the disabled per-call cost directly and scale it
    # by the spans the sweep actually hits.
    null_tracer = get_tracer()
    assert not null_tracer.enabled
    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        with null_tracer.span("bench.noop"):
            pass
    per_call_s = (time.perf_counter() - start) / calls
    overhead_fraction = per_call_s * span_count / disabled_s

    print(
        f"\ndisabled sweep {disabled_s:6.2f} s   {span_count} spans when "
        f"traced   null span {per_call_s * 1e9:.0f} ns/call   "
        f"disabled-path overhead {100.0 * overhead_fraction:.4f}%"
    )
    _record(
        results_dir,
        trace_spans=span_count,
        tracer_noop_ns=per_call_s * 1e9,
        tracer_overhead_fraction=overhead_fraction,
    )
    assert overhead_fraction < 0.02, (
        f"disabled-tracer instrumentation overhead "
        f"{100.0 * overhead_fraction:.2f}% exceeds the 2% budget"
    )


def test_loss_workspace_allocation(ctx, results_dir):
    """A warmed workspace call must allocate far less than a cold call."""
    X, y = _feature_data(ctx)
    model = NeuralNetworkModel(hidden_units=20, n_restarts=1)
    model.fit(X, y, rng=np.random.default_rng(0))
    Z = (X - model._x_mean) / model._x_scale
    t = (y - model._y_mean) / model._y_scale
    params = model._params

    work: dict = {}
    model._loss_and_grad(params, Z, t, work)  # warm the buffers

    tracemalloc.start()
    model._loss_and_grad(params, Z, t, None)  # cold: allocates workspace
    _, cold_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    model._loss_and_grad(params, Z, t, work)  # warm: reuses buffers
    _, warm_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\nloss+grad allocation: cold {cold_peak / 1e3:.1f} kB, "
        f"warm {warm_peak / 1e3:.1f} kB per call"
    )
    _record(results_dir, loss_cold_bytes=cold_peak, loss_warm_bytes=warm_peak)
    assert warm_peak < 0.5 * cold_peak, (
        f"workspace reuse ineffective: warm call allocated {warm_peak} of "
        f"a cold call's {cold_peak} bytes"
    )
