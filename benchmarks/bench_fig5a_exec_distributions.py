"""Figure 5(a) — per-application execution time distributions, 6-core."""

import numpy as np

from repro.harness.experiments import figure5a_distributions
from repro.reporting.figures import render_distributions, summarize


def test_fig5a_exec_distributions(benchmark, ctx, emit):
    ctx.dataset("e5649")  # warm the collection cache outside the timed region
    dists = benchmark.pedantic(
        lambda: figure5a_distributions(ctx), rounds=1, iterations=1
    )
    summaries = [summarize(name, values) for name, values in dists.items()]
    emit(
        "fig5a_exec_distributions",
        render_distributions(
            summaries,
            title="Figure 5(a): Execution Time Distributions, Xeon E5649",
            unit="s",
        ),
    )
    assert len(dists) == 11
    pooled = np.concatenate(list(dists.values()))
    # The paper's spread: from ~150 s up past 1000 s across co-locations.
    assert pooled.min() > 100.0
    assert pooled.max() / pooled.min() > 2.0
